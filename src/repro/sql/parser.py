"""Recursive-descent parser for the mini SQL dialect."""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .lexer import SqlSyntaxError, Token, tokenize


class _Cursor:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.next()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            got = self.peek()
            want = value if value is not None else kind
            raise SqlSyntaxError(
                f"expected {want!r} at position {got.pos}, got "
                f"{got.value or got.kind!r}"
            )
        return token


def parse(text: str) -> ast.Select:
    """Parse one SELECT statement."""
    cursor = _Cursor(tokenize(text))
    select = _parse_select(cursor)
    if cursor.peek().kind != "eof":
        token = cursor.peek()
        raise SqlSyntaxError(
            f"trailing input at position {token.pos}: {token.value!r}"
        )
    return select


def _parse_select(c: _Cursor) -> ast.Select:
    c.expect("keyword", "select")
    distinct = c.accept("keyword", "distinct") is not None
    items = [_parse_select_item(c)]
    while c.accept("punct", ","):
        items.append(_parse_select_item(c))

    c.expect("keyword", "from")
    tables = [_parse_table_ref(c)]
    joins: List[Tuple[ast.TableRef, ast.Node]] = []
    while True:
        if c.accept("punct", ","):
            tables.append(_parse_table_ref(c))
            continue
        if c.peek().kind == "keyword" and c.peek().value in ("join", "inner"):
            if c.accept("keyword", "inner"):
                c.expect("keyword", "join")
            else:
                c.expect("keyword", "join")
            table = _parse_table_ref(c)
            c.expect("keyword", "on")
            joins.append((table, _parse_expr(c)))
            continue
        break

    where = None
    if c.accept("keyword", "where"):
        where = _parse_expr(c)

    group_by: List[ast.Node] = []
    if c.accept("keyword", "group"):
        c.expect("keyword", "by")
        group_by.append(_parse_expr(c))
        while c.accept("punct", ","):
            group_by.append(_parse_expr(c))

    having = None
    if c.accept("keyword", "having"):
        if not group_by:
            raise SqlSyntaxError("HAVING requires GROUP BY")
        having = _parse_expr(c)

    order_by: List[ast.OrderItem] = []
    if c.accept("keyword", "order"):
        c.expect("keyword", "by")
        order_by.append(_parse_order_item(c))
        while c.accept("punct", ","):
            order_by.append(_parse_order_item(c))

    limit = None
    if c.accept("keyword", "limit"):
        token = c.expect("number")
        if "." in token.value or "e" in token.value.lower():
            raise SqlSyntaxError("LIMIT takes an integer")
        limit = int(token.value)

    return ast.Select(
        items=tuple(items),
        tables=tuple(tables),
        joins=tuple(joins),
        where=where,
        group_by=tuple(group_by),
        having=having,
        order_by=tuple(order_by),
        limit=limit,
        distinct=distinct,
    )


def _parse_select_item(c: _Cursor) -> ast.SelectItem:
    if c.accept("op", "*"):
        return ast.SelectItem(expr=ast.Star())
    expr = _parse_expr(c)
    alias = None
    if c.accept("keyword", "as"):
        alias = c.expect("ident").value
    elif c.peek().kind == "ident":
        alias = c.next().value
    return ast.SelectItem(expr=expr, alias=alias)


def _parse_table_ref(c: _Cursor) -> ast.TableRef:
    name = c.expect("ident").value
    alias = None
    if c.accept("keyword", "as"):
        alias = c.expect("ident").value
    elif c.peek().kind == "ident":
        alias = c.next().value
    return ast.TableRef(name=name, alias=alias)


def _parse_order_item(c: _Cursor) -> ast.OrderItem:
    expr = _parse_expr(c)
    descending = False
    if c.accept("keyword", "desc"):
        descending = True
    else:
        c.accept("keyword", "asc")
    return ast.OrderItem(expr=expr, descending=descending)


# -- expressions (precedence climbing) ------------------------------------------


def _parse_expr(c: _Cursor) -> ast.Node:
    return _parse_or(c)


def _parse_or(c: _Cursor) -> ast.Node:
    node = _parse_and(c)
    while c.accept("keyword", "or"):
        node = ast.BinOp("or", node, _parse_and(c))
    return node


def _parse_and(c: _Cursor) -> ast.Node:
    node = _parse_not(c)
    while c.accept("keyword", "and"):
        node = ast.BinOp("and", node, _parse_not(c))
    return node


def _parse_not(c: _Cursor) -> ast.Node:
    if c.accept("keyword", "not"):
        return ast.UnaryOp("not", _parse_not(c))
    return _parse_comparison(c)


_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


def _parse_comparison(c: _Cursor) -> ast.Node:
    node = _parse_additive(c)
    token = c.peek()
    if token.kind == "op" and token.value in _COMPARISONS:
        c.next()
        op = "!=" if token.value == "<>" else token.value
        return ast.BinOp(op, node, _parse_additive(c))
    negated = False
    if c.peek().kind == "keyword" and c.peek().value == "not":
        # Look ahead for NOT BETWEEN / NOT IN.
        following = c.tokens[c.pos + 1]
        if following.kind == "keyword" and following.value in ("between", "in"):
            c.next()
            negated = True
    if c.accept("keyword", "between"):
        low = _parse_additive(c)
        c.expect("keyword", "and")
        high = _parse_additive(c)
        return ast.Between(node, low, high, negated=negated)
    if c.accept("keyword", "in"):
        c.expect("punct", "(")
        options = [_parse_expr(c)]
        while c.accept("punct", ","):
            options.append(_parse_expr(c))
        c.expect("punct", ")")
        return ast.InList(node, tuple(options), negated=negated)
    if negated:
        raise SqlSyntaxError("dangling NOT")
    return node


def _parse_additive(c: _Cursor) -> ast.Node:
    node = _parse_multiplicative(c)
    while True:
        token = c.peek()
        if token.kind == "op" and token.value in ("+", "-"):
            c.next()
            node = ast.BinOp(token.value, node, _parse_multiplicative(c))
        else:
            return node


def _parse_multiplicative(c: _Cursor) -> ast.Node:
    node = _parse_unary(c)
    while True:
        token = c.peek()
        if token.kind == "op" and token.value in ("*", "/", "%"):
            c.next()
            node = ast.BinOp(token.value, node, _parse_unary(c))
        else:
            return node


def _parse_unary(c: _Cursor) -> ast.Node:
    if c.accept("op", "-"):
        return ast.UnaryOp("-", _parse_unary(c))
    if c.accept("op", "+"):
        return _parse_unary(c)
    return _parse_primary(c)


def _parse_primary(c: _Cursor) -> ast.Node:
    token = c.peek()
    if token.kind == "number":
        c.next()
        text = token.value
        if "." in text or "e" in text.lower():
            return ast.Literal(float(text))
        return ast.Literal(int(text))
    if token.kind == "string":
        c.next()
        return ast.Literal(token.value)
    if token.kind == "keyword" and token.value in ("true", "false"):
        c.next()
        return ast.Literal(token.value == "true")
    if token.kind == "ident":
        c.next()
        name = token.value
        if c.accept("punct", "("):
            args: List[ast.Node] = []
            if c.accept("op", "*"):
                args.append(ast.Star())
            elif not (c.peek().kind == "punct" and c.peek().value == ")"):
                args.append(_parse_expr(c))
                while c.accept("punct", ","):
                    args.append(_parse_expr(c))
            c.expect("punct", ")")
            return ast.FuncCall(name.lower(), tuple(args))
        if c.accept("punct", "."):
            column = c.expect("ident").value
            return ast.ColumnRef(name=column, table=name)
        return ast.ColumnRef(name=name)
    if c.accept("punct", "("):
        node = _parse_expr(c)
        c.expect("punct", ")")
        return node
    raise SqlSyntaxError(
        f"unexpected token at position {token.pos}: {token.value or token.kind!r}"
    )
