"""Tokeniser for the mini SQL dialect."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List


class SqlSyntaxError(ValueError):
    """Raised on unlexable or unparsable SQL text."""


KEYWORDS = {
    "select",
    "from",
    "where",
    "group",
    "order",
    "by",
    "limit",
    "as",
    "and",
    "or",
    "not",
    "between",
    "in",
    "join",
    "inner",
    "on",
    "asc",
    "desc",
    "true",
    "false",
    "distinct",
    "having",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+(?:[eE][-+]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><=|>=|<>|!=|=|<|>|\+|-|\*|/|%)
  | (?P<punct>[(),.])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # keyword | ident | number | string | op | punct | eof
    value: str
    pos: int


def tokenize(text: str) -> List[Token]:
    """Lex SQL text into tokens (keywords lower-cased, strings unquoted)."""
    if not isinstance(text, str):
        raise SqlSyntaxError("SQL input must be a string")
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SqlSyntaxError(
                f"cannot lex SQL at position {pos}: {text[pos:pos + 20]!r}"
            )
        kind = match.lastgroup
        value = match.group()
        if kind == "ws":
            pos = match.end()
            continue
        if kind == "ident":
            lowered = value.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, pos))
            else:
                tokens.append(Token("ident", value, pos))
        elif kind == "string":
            # Strip quotes, collapse doubled quotes.
            tokens.append(Token("string", value[1:-1].replace("''", "'"), pos))
        else:
            tokens.append(Token(kind, value, pos))
        pos = match.end()
    tokens.append(Token("eof", "", pos))
    return tokens
