"""SQL function registry: the OGC ST_* surface plus numeric helpers.

MonetDB exposes "an SQL interface to the Simple Features Access standard
... with support for the objects and functions defined in the
specification" (Section 3.3).  These are the functions the demo's
pre-defined and user-defined queries use.  Implementations are
vector-aware: array arguments broadcast elementwise; geometry-object
arguments use numpy object arrays.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..gis import predicates, wkt
from ..gis.geometry import Point


class SqlFunctionError(ValueError):
    """Raised on unknown functions or bad argument types/counts."""


def _is_array(value) -> bool:
    return isinstance(value, np.ndarray)


def _broadcast(args):
    """Lengths of array args (all must agree); None for all-scalar."""
    lengths = {a.shape[0] for a in args if _is_array(a)}
    if not lengths:
        return None
    if len(lengths) > 1:
        raise SqlFunctionError(f"mismatched argument lengths {sorted(lengths)}")
    return lengths.pop()


def _elementwise(fn: Callable, *args):
    """Apply a python-level function over broadcast scalars/arrays."""
    n = _broadcast(args)
    if n is None:
        return fn(*args)
    rows = []
    for i in range(n):
        rows.append(fn(*[a[i] if _is_array(a) else a for a in args]))
    first = rows[0] if rows else None
    if isinstance(first, (bool, np.bool_)):
        return np.array(rows, dtype=bool)
    if isinstance(first, (int, float, np.number)):
        return np.array(rows, dtype=np.float64)
    out = np.empty(n, dtype=object)
    out[:] = rows
    return out


# -- geometry constructors --------------------------------------------------------


def st_geomfromtext(text):
    """Parse WKT; vectorises over string arrays."""
    return _elementwise(wkt.loads, text)


def st_astext(geom):
    return _elementwise(lambda g: g.wkt(), geom)


def st_point(x, y):
    """Construct POINT(x, y); the demo uses it to lift the flat table's
    x/y columns into geometry space."""
    return _elementwise(lambda a, b: Point(float(a), float(b)), x, y)


def st_makeenvelope(xmin, ymin, xmax, ymax):
    from ..gis.envelope import Box
    from ..gis.geometry import Polygon

    return _elementwise(
        lambda a, b, c, d: Polygon.from_box(Box(float(a), float(b), float(c), float(d))),
        xmin,
        ymin,
        xmax,
        ymax,
    )


# -- accessors / measures -----------------------------------------------------------


def st_x(geom):
    return _elementwise(lambda g: _point_of(g).x, geom)


def st_y(geom):
    return _elementwise(lambda g: _point_of(g).y, geom)


def _point_of(g) -> Point:
    if not isinstance(g, Point):
        raise SqlFunctionError(f"ST_X/ST_Y need a POINT, got {type(g).__name__}")
    return g


def st_area(geom):
    return _elementwise(lambda g: float(getattr(g, "area", 0.0)), geom)


def st_length(geom):
    return _elementwise(lambda g: float(getattr(g, "length", 0.0)), geom)


def st_distance(a, b):
    from ..gis.algorithms import dist_points_to_geometry

    def one(ga, gb):
        if isinstance(ga, Point):
            ga, gb = gb, ga
        if not isinstance(gb, Point):
            raise SqlFunctionError(
                "ST_Distance supports (geometry, point) pairs"
            )
        return float(
            dist_points_to_geometry(np.array([gb.x]), np.array([gb.y]), ga)[0]
        )

    return _elementwise(one, a, b)


# -- predicates -----------------------------------------------------------------------


def st_contains(container, contained):
    def one(a, b):
        if not isinstance(b, Point):
            raise SqlFunctionError("ST_Contains supports point containment")
        return predicates.contains(a, b)

    return _elementwise(one, container, contained)


def st_within(contained, container):
    return st_contains(container, contained)


def st_intersects(a, b):
    return _elementwise(predicates.intersects, a, b)


def st_dwithin(a, b, distance):
    def one(ga, gb, d):
        if isinstance(ga, Point) and not isinstance(gb, Point):
            ga, gb = gb, ga
        if isinstance(gb, Point):
            return predicates.dwithin(ga, gb, float(d))
        raise SqlFunctionError("ST_DWithin supports (geometry, point) pairs")

    return _elementwise(one, a, b, distance)


# -- plain scalar helpers ----------------------------------------------------------------


def _numeric(fn: Callable) -> Callable:
    def wrapped(value):
        return fn(np.asarray(value, dtype=np.float64)) if _is_array(value) else fn(
            float(value)
        )

    return wrapped


SCALAR_FUNCTIONS: Dict[str, Callable] = {
    "st_geomfromtext": st_geomfromtext,
    "st_astext": st_astext,
    "st_point": st_point,
    "st_makepoint": st_point,
    "st_makeenvelope": st_makeenvelope,
    "st_x": st_x,
    "st_y": st_y,
    "st_area": st_area,
    "st_length": st_length,
    "st_distance": st_distance,
    "st_contains": st_contains,
    "st_within": st_within,
    "st_intersects": st_intersects,
    "st_dwithin": st_dwithin,
    "abs": _numeric(np.abs),
    "sqrt": _numeric(np.sqrt),
    "floor": _numeric(np.floor),
    "ceil": _numeric(np.ceil),
    "round": _numeric(np.round),
}

#: Aggregates handled by the executor, not this registry.
AGGREGATES = {"count", "sum", "avg", "min", "max"}


def call(name: str, args) -> object:
    """Invoke a scalar function by (lower-case) name."""
    try:
        fn = SCALAR_FUNCTIONS[name]
    except KeyError:
        raise SqlFunctionError(f"unknown function {name!r}") from None
    return fn(*args)
