"""Session registration helpers for the demo datasets.

Scenario 2 needs the OSM and Urban Atlas bundles as SQL relations; the
column layout is boilerplate, so it lives here once instead of in every
example and benchmark.
"""

from __future__ import annotations

import numpy as np

from ..datasets.osm import OsmData
from ..datasets.urbanatlas import UrbanAtlasData
from .executor import Relation, Session


def register_osm(session: Session, osm: OsmData, prefix: str = "") -> None:
    """Register ``roads``, ``rivers`` and ``pois`` relations.

    ``prefix`` prepends to the relation names (e.g. ``"osm_"``).
    """
    session.register_columns(
        f"{prefix}roads",
        {
            "road_id": np.array([r.road_id for r in osm.roads]),
            "class": np.array([r.class_code for r in osm.roads]),
            "name": [r.name for r in osm.roads],
            "geom": [r.geometry for r in osm.roads],
        },
    )
    session.register_columns(
        f"{prefix}rivers",
        {
            "river_id": np.array([r.river_id for r in osm.rivers]),
            "name": [r.name for r in osm.rivers],
            "geom": [r.geometry for r in osm.rivers],
        },
    )
    session.register_columns(
        f"{prefix}pois",
        {
            "poi_id": np.array([p.poi_id for p in osm.pois]),
            "kind": np.array([p.kind_code for p in osm.pois]),
            "name": [p.name for p in osm.pois],
            "geom": [p.geometry for p in osm.pois],
        },
    )


def register_urban_atlas(
    session: Session, ua: UrbanAtlasData, name: str = "ua_zones"
) -> Relation:
    """Register the land-use zones relation."""
    return session.register_columns(
        name,
        {
            "zone_id": np.array([z.zone_id for z in ua.zones]),
            "code": np.array([z.code for z in ua.zones]),
            "label": [z.label for z in ua.zones],
            "geom": [z.geometry for z in ua.zones],
        },
    )
