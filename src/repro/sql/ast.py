"""Abstract syntax tree for the mini SQL dialect.

The demo's thesis (Section 2.2) is that file-based tools cannot express
ad-hoc multi-source queries, while "a declarative query language like SQL
allows the user to easily express queries that combine numerous data
sources".  This AST covers the slice of SQL the demo exercises: SELECT
with expressions and aggregates, FROM with aliases and inner joins, WHERE
with boolean/comparison/arithmetic operators and (spatial) function calls,
GROUP BY, ORDER BY, LIMIT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


class Node:
    """Base class for AST nodes (dataclass equality drives the tests)."""


@dataclass(frozen=True)
class Literal(Node):
    """A number or string constant."""

    value: object


@dataclass(frozen=True)
class Star(Node):
    """The ``*`` select item / ``count(*)`` argument."""


@dataclass(frozen=True)
class ColumnRef(Node):
    """A possibly table-qualified column reference."""

    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class FuncCall(Node):
    """A function or aggregate call; names are stored lower-case."""

    name: str
    args: Tuple[Node, ...] = ()


@dataclass(frozen=True)
class UnaryOp(Node):
    op: str  # '-' | 'not'
    operand: Node


@dataclass(frozen=True)
class BinOp(Node):
    op: str  # arithmetic, comparison, 'and', 'or'
    left: Node
    right: Node


@dataclass(frozen=True)
class Between(Node):
    expr: Node
    low: Node
    high: Node
    negated: bool = False


@dataclass(frozen=True)
class InList(Node):
    expr: Node
    options: Tuple[Node, ...]
    negated: bool = False


@dataclass(frozen=True)
class SelectItem(Node):
    expr: Node
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef(Node):
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name expressions may qualify columns with."""
        return self.alias if self.alias else self.name


@dataclass(frozen=True)
class OrderItem(Node):
    expr: Node
    descending: bool = False


@dataclass(frozen=True)
class Select(Node):
    """A full SELECT statement."""

    items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]
    joins: Tuple[Tuple[TableRef, Node], ...] = ()  # (table, ON condition)
    where: Optional[Node] = None
    group_by: Tuple[Node, ...] = ()
    having: Optional[Node] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False


def walk(node: Node):
    """Yield ``node`` and all nested AST nodes (pre-order)."""
    yield node
    if isinstance(node, FuncCall):
        for arg in node.args:
            yield from walk(arg)
    elif isinstance(node, UnaryOp):
        yield from walk(node.operand)
    elif isinstance(node, BinOp):
        yield from walk(node.left)
        yield from walk(node.right)
    elif isinstance(node, Between):
        yield from walk(node.expr)
        yield from walk(node.low)
        yield from walk(node.high)
    elif isinstance(node, InList):
        yield from walk(node.expr)
        for option in node.options:
            yield from walk(option)


def column_refs(node: Node) -> List[ColumnRef]:
    """All column references below a node."""
    return [n for n in walk(node) if isinstance(n, ColumnRef)]
