"""Query execution: vectorised evaluation with an imprints fast path.

The executor mirrors the paper's architecture instead of being a toy
interpreter:

* **Spatial predicate push-down** — a WHERE conjunct of the form
  ``ST_Contains(<const geometry>, ST_Point(t.x, t.y))`` (or
  ``ST_DWithin(..., d)`` / ``ST_Intersects``) against a relation that was
  registered as a point table is routed through
  :class:`repro.core.query.SpatialSelect` — i.e. through the column
  imprints filter and grid refinement.  Everything else evaluates as
  vectorised numpy expressions.
* **Joins** — inner/cross joins materialise the smaller relations and
  probe the point table per outer row, which is exactly how the Scenario-2
  queries ("LIDAR points near a fast transit road") want to run: one
  imprints-backed spatial probe per zone.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.imprints import ImprintsManager
from ..core.query import SpatialSelect
from ..engine.select import range_select as engine_range_select
from ..engine.table import Table
from ..gis.geometry import Geometry
from ..obs.context import ObsContext, default_context
from ..obs.queries import get_queries
from ..obs.resources import ResourceTracker, ResourceUsage
from ..obs.timing import now
from ..obs.trace import format_tree, maybe_span
from . import ast
from .functions import AGGREGATES, call
from .parser import parse

#: ``EXPLAIN [ANALYZE] <select>`` prefix, handled before the SELECT parser.
_EXPLAIN_RE = re.compile(r"^\s*explain(\s+analyze)?\s+", re.IGNORECASE)


class SqlExecutionError(ValueError):
    """Raised on semantic errors: unknown tables/columns, bad aggregates."""


@dataclass
class Relation:
    """A queryable relation: named columns plus optional index access.

    ``spatial`` enables the two-step pipeline for spatial conjuncts;
    ``table``/``manager`` enable imprints on *any* column for plain range
    conjuncts (MonetDB builds imprints for whatever column a range query
    first touches, not just coordinates).
    """

    name: str
    columns: Dict[str, np.ndarray]
    spatial: Optional[SpatialSelect] = None
    table: Optional[Table] = None
    manager: Optional[ImprintsManager] = None

    def __post_init__(self) -> None:
        lengths = {arr.shape[0] for arr in self.columns.values()}
        if len(lengths) > 1:
            raise SqlExecutionError(
                f"relation {self.name!r} has ragged columns {sorted(lengths)}"
            )
        self.n_rows = lengths.pop() if lengths else 0

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise SqlExecutionError(
                f"relation {self.name!r} has no column {name!r}"
            ) from None

    def refresh(self) -> None:
        """Re-snapshot from the backing table if it grew since
        registration (keeps long-lived sessions append-consistent)."""
        if self.table is None or len(self.table) == self.n_rows:
            return
        self.columns = {
            name: np.asarray(self.table.column(name).values)
            for name in self.table.column_names
        }
        self.n_rows = len(self.table)


@dataclass
class Result:
    """A query result: column names and row tuples."""

    columns: List[str]
    rows: List[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list:
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(f"result has no column {name!r}") from None
        return [row[idx] for row in self.rows]

    def scalar(self):
        """The single value of a 1x1 result (aggregates)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlExecutionError(
                f"scalar() needs a 1x1 result, have "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]


class Session:
    """A SQL session over registered relations.

    Parameters
    ----------
    manager:
        Shared imprints manager for point tables (created when omitted).
    obs:
        The observability context queries run under (tracer, metrics,
        query registry); the process default when omitted, so existing
        callers keep the singleton behaviour.
    """

    def __init__(
        self,
        manager: Optional[ImprintsManager] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.manager = manager if manager is not None else ImprintsManager()
        self.obs = obs if obs is not None else default_context()
        self._relations: Dict[str, Relation] = {}
        #: Per-phase wall-clock seconds of the most recent execute() —
        #: the demo's "execution time spent in each operator" view.
        self.last_profile: Dict[str, float] = {}
        #: Resource attribution (CPU, allocations, data touched) of the
        #: most recent execute(); None before the first query.
        self.last_resources: Optional[ResourceUsage] = None
        #: Registry identity of the most recent execute() (None before
        #: the first query and after EXPLAIN, which is not tracked).
        self.last_query_id: Optional[str] = None

    # -- registration ---------------------------------------------------------------

    def register_table(
        self,
        table: Table,
        point_columns: Optional[Tuple[str, str]] = ("x", "y"),
    ) -> Relation:
        """Register an engine flat table.

        With ``point_columns`` the relation gets a :class:`SpatialSelect`
        and spatial WHERE conjuncts on those columns use the imprints
        pipeline.
        """
        columns = {
            name: np.asarray(table.column(name).values)
            for name in table.column_names
        }
        spatial = None
        if point_columns is not None:
            x_col, y_col = point_columns
            if x_col in table and y_col in table:
                spatial = SpatialSelect(
                    table,
                    x_column=x_col,
                    y_column=y_col,
                    manager=self.manager,
                    threads=self.manager.threads,
                )
        relation = Relation(
            name=table.name,
            columns=columns,
            spatial=spatial,
            table=table,
            manager=self.manager,
        )
        self._relations[table.name] = relation
        return relation

    def register_columns(self, name: str, columns: Dict[str, Sequence]) -> Relation:
        """Register an ad-hoc relation (object columns allowed: strings,
        geometries)."""
        arrays: Dict[str, np.ndarray] = {}
        for col_name, values in columns.items():
            arr = np.asarray(values)
            if arr.dtype.kind in "OU" or (
                arr.dtype == object
            ):
                out = np.empty(len(values), dtype=object)
                out[:] = list(values)
                arr = out
            arrays[col_name] = arr
        relation = Relation(name=name, columns=arrays)
        self._relations[name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SqlExecutionError(f"unknown table {name!r}") from None

    # -- execution ---------------------------------------------------------------------

    def execute(self, sql: str, timeout_s: Optional[float] = None) -> Result:
        """Parse and run one SELECT statement.

        ``EXPLAIN <select>`` returns the plan text as a one-column result;
        ``EXPLAIN ANALYZE <select>`` runs the query under the tracer and
        returns the per-operator span tree (timings + cardinalities).

        ``last_profile`` afterwards holds per-phase seconds:
        ``parse``, ``join_filter`` (scans, index probes, joins),
        ``project`` (projection/aggregation/order/limit) and ``total``.

        ``timeout_s`` arms a cooperative deadline checked at morsel and
        segment boundaries; exceeding it raises
        :class:`~repro.obs.queries.QueryCancelled` (a spatial sub-query
        inherits the tighter of its own and this deadline).
        """
        prefix = _EXPLAIN_RE.match(sql)
        if prefix is not None:
            body = sql[prefix.end():]
            text = (
                self.explain_analyze(body)
                if prefix.group(1)
                else self.explain(body)
            )
            return Result(
                columns=["plan"], rows=[(line,) for line in text.splitlines()]
            )

        # The tracker nests inside any caller's tracker (the spatial
        # sub-query's own tracker nests inside this one in turn), so the
        # SQL statement's attribution includes its index probes.
        tracker = ResourceTracker()
        with self.obs.activate(), get_queries().track(
            "sql",
            detail={"sql": sql.strip()},
            timeout_s=timeout_s,
            tracker=tracker,
        ) as active, tracker, maybe_span(
            "sql.query", sql=sql.strip()
        ) as query_span:
            query_span.set(query_id=active.query_id)
            trace_id = getattr(query_span, "trace_id", 0)
            if trace_id:
                active.set_trace(int(trace_id))
            t0 = now()
            active.set_phase("parse")
            with maybe_span("sql.parse"):
                select = parse(sql)
            t1 = now()
            active.set_phase("execute")
            result, t_join = self._run_profiled(select)
            t2 = now()
            query_span.set(rows_out=len(result.rows))
        self.last_resources = tracker.usage
        self.last_query_id = active.query_id
        self.last_profile = {
            "parse": t1 - t0,
            "join_filter": t_join,
            "project": (t2 - t1) - t_join,
            "total": t2 - t0,
        }
        registry = self.obs.registry
        registry.counter("sql.queries").inc()
        registry.histogram("sql.seconds").observe(t2 - t0)
        return result

    def _run_profiled(self, select: ast.Select):
        refs: List[ast.TableRef] = list(select.tables)
        conjuncts: List[ast.Node] = []
        for table_ref, condition in select.joins:
            refs.append(table_ref)
            conjuncts.extend(_conjuncts_of(condition))
        conjuncts.extend(_conjuncts_of(select.where))

        bindings = []
        seen = set()
        for ref in refs:
            if ref.binding in seen:
                raise SqlExecutionError(
                    f"duplicate table binding {ref.binding!r}"
                )
            seen.add(ref.binding)
            relation = self.relation(ref.name)
            relation.refresh()
            bindings.append((ref.binding, relation))

        t0 = now()
        frame = _join(bindings, conjuncts)
        t_join = now() - t0
        return _project(select, frame), t_join

    def explain(self, sql: str) -> str:
        """The query plan as text (the demo lets users "see the plans of
        the queries", Section 4.2).

        Shows the join strategy, which conjuncts push down through which
        index (spatial pipeline / column imprint), and what remains as
        residual vectorised filters.
        """
        select = parse(sql)
        refs: List[ast.TableRef] = list(select.tables)
        conjuncts: List[ast.Node] = []
        for table_ref, condition in select.joins:
            refs.append(table_ref)
            conjuncts.extend(_conjuncts_of(condition))
        conjuncts.extend(_conjuncts_of(select.where))
        bindings = [(ref.binding, self.relation(ref.name)) for ref in refs]
        return _explain_plan(select, bindings, conjuncts)

    def explain_analyze(self, sql: str) -> str:
        """Run the query under the tracer and render the operator tree.

        Each line is one span: operator name, wall-clock milliseconds and
        the attributes the operator recorded (rows in/out, segments
        skipped/probed, ...).  Works whether or not tracing is enabled
        globally — the capture context force-enables it for this query.
        """
        tracer = self.obs.tracer
        with tracer.capture() as spans:
            result = self.execute(sql)
        roots = [s for s in spans if s.name == "sql.query"]
        if roots:
            trace_id = roots[-1].trace_id
            spans = [s for s in spans if s.trace_id == trace_id]
        tree = format_tree(spans)
        footer = ""
        usage = self.last_resources
        if usage is not None:
            footer = (
                f"cpu: {usage.cpu_seconds * 1e3:.3f} ms"
                f" (workers {usage.worker_cpu_seconds * 1e3:.3f} ms)"
                f"; touched: {usage.rows_touched} rows"
                f" / {usage.bytes_touched} bytes"
            )
            if usage.peak_alloc_bytes is not None:
                footer += f"; peak alloc: {usage.peak_alloc_bytes} bytes"
            footer += "\n"
        footer += f"rows returned: {len(result.rows)}"
        return tree + ("\n" if tree else "") + footer



# -- the evaluation frame -----------------------------------------------------------


class _Frame:
    """Aligned columns addressable as ``binding.column`` or bare name."""

    def __init__(self, columns: Dict[str, np.ndarray], n_rows: int) -> None:
        self.columns = columns
        self.n_rows = n_rows
        # Bare-name resolution: unique suffixes only.
        suffix_count: Dict[str, int] = {}
        for key in columns:
            bare = key.split(".", 1)[1] if "." in key else key
            suffix_count[bare] = suffix_count.get(bare, 0) + 1
        self._bare = {
            key.split(".", 1)[1] if "." in key else key: key
            for key in columns
            if suffix_count[key.split(".", 1)[1] if "." in key else key] == 1
        }
        self._ambiguous = {k for k, v in suffix_count.items() if v > 1}

    def lookup(self, ref: ast.ColumnRef) -> np.ndarray:
        if ref.table is not None:
            key = f"{ref.table}.{ref.name}"
            if key in self.columns:
                return self.columns[key]
            raise SqlExecutionError(f"unknown column {key!r}")
        if ref.name in self.columns:
            return self.columns[ref.name]
        if ref.name in self._ambiguous:
            raise SqlExecutionError(f"ambiguous column {ref.name!r}")
        if ref.name in self._bare:
            return self.columns[self._bare[ref.name]]
        raise SqlExecutionError(f"unknown column {ref.name!r}")


def _evaluate(node: ast.Node, frame: _Frame):
    """Evaluate an expression to a scalar or an array of frame length."""
    if isinstance(node, ast.Literal):
        return node.value
    if isinstance(node, ast.ColumnRef):
        return frame.lookup(node)
    if isinstance(node, ast.UnaryOp):
        value = _evaluate(node.operand, frame)
        if node.op == "-":
            return -value if not isinstance(value, np.ndarray) else -value
        if node.op == "not":
            return ~_as_bool(value) if isinstance(value, np.ndarray) else not value
        raise SqlExecutionError(f"unknown unary op {node.op!r}")
    if isinstance(node, ast.BinOp):
        return _eval_binop(node, frame)
    if isinstance(node, ast.Between):
        value = _evaluate(node.expr, frame)
        low = _evaluate(node.low, frame)
        high = _evaluate(node.high, frame)
        result = (value >= low) & (value <= high)
        return ~result if node.negated else result
    if isinstance(node, ast.InList):
        value = _evaluate(node.expr, frame)
        options = [_evaluate(opt, frame) for opt in node.options]
        if isinstance(value, np.ndarray):
            result = np.zeros(value.shape[0], dtype=bool)
            for opt in options:
                result |= value == opt
            return ~result if node.negated else result
        result = any(value == opt for opt in options)
        return (not result) if node.negated else result
    if isinstance(node, ast.FuncCall):
        if node.name in AGGREGATES:
            raise SqlExecutionError(
                f"aggregate {node.name}() is not allowed here"
            )
        args = [_evaluate(arg, frame) for arg in node.args]
        return call(node.name, args)
    if isinstance(node, ast.Star):
        raise SqlExecutionError("* is only valid as a select item or in count(*)")
    raise SqlExecutionError(f"cannot evaluate {type(node).__name__}")


def _eval_binop(node: ast.BinOp, frame: _Frame):
    op = node.op
    left = _evaluate(node.left, frame)
    right = _evaluate(node.right, frame)
    if op == "and":
        return _as_bool(left) & _as_bool(right)
    if op == "or":
        return _as_bool(left) | _as_bool(right)
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    if op == "%":
        return left % right
    raise SqlExecutionError(f"unknown operator {op!r}")


def _as_bool(value):
    if isinstance(value, np.ndarray):
        return value.astype(bool)
    return bool(value)


# -- spatial push-down ----------------------------------------------------------------


_SPATIAL_FUNCS = {"st_contains", "st_within", "st_intersects", "st_dwithin"}


def _conjuncts_of(node: Optional[ast.Node]) -> List[ast.Node]:
    if node is None:
        return []
    if isinstance(node, ast.BinOp) and node.op == "and":
        return _conjuncts_of(node.left) + _conjuncts_of(node.right)
    return [node]


def _refs_binding(node: ast.Node, binding: str, bare_ok: set) -> bool:
    """Does the expression reference columns of the given binding?"""
    for ref in ast.column_refs(node):
        if ref.table == binding:
            return True
        if ref.table is None and ref.name in bare_ok:
            return True
    return False


def _match_spatial(
    conjunct: ast.Node, binding: str, relation: Relation
) -> Optional[Tuple[ast.Node, str, Optional[ast.Node]]]:
    """Recognise a pushable spatial conjunct against the point relation.

    Returns ``(geometry_expr, predicate, distance_expr)`` when the
    conjunct is ``ST_Contains(G, ST_Point(x, y))`` (or within/intersects/
    dwithin variants) with G free of this relation's columns and (x, y)
    the relation's registered point columns.
    """
    if relation.spatial is None or not isinstance(conjunct, ast.FuncCall):
        return None
    name = conjunct.name
    if name not in _SPATIAL_FUNCS:
        return None
    args = list(conjunct.args)
    distance = None
    if name == "st_dwithin":
        if len(args) != 3:
            return None
        distance = args.pop()
    elif len(args) != 2:
        return None

    x_col = relation.spatial.x_column
    y_col = relation.spatial.y_column

    def is_point_of_relation(node: ast.Node) -> bool:
        if not (isinstance(node, ast.FuncCall) and node.name in ("st_point", "st_makepoint")):
            return False
        if len(node.args) != 2:
            return False
        ax, ay = node.args
        return (
            isinstance(ax, ast.ColumnRef)
            and isinstance(ay, ast.ColumnRef)
            and ax.name == x_col
            and ay.name == y_col
            and (ax.table in (None, binding))
            and (ay.table in (None, binding))
        )

    bare = set(relation.columns)
    for i, arg in enumerate(args):
        other = args[1 - i]
        if is_point_of_relation(arg) and not _refs_binding(other, binding, bare):
            if distance is not None and _refs_binding(distance, binding, bare):
                return None
            predicate = "dwithin" if name == "st_dwithin" else "contains"
            if name == "st_within" and i == 1:
                # ST_Within(G, point): the point must contain G -> not pushable.
                return None
            if name == "st_contains" and i == 0:
                # ST_Contains(point, G): only true for point == G -> skip.
                return None
            return other, predicate, distance
    return None


_RANGE_OPS = {"<", "<=", ">", ">=", "="}


def _match_range(
    conjunct: ast.Node, binding: str, relation: Relation
) -> Optional[Tuple[str, ast.Node, ast.Node, bool, bool]]:
    """Recognise an imprint-pushable range conjunct on this relation.

    Returns ``(column, lo_expr, hi_expr, lo_inclusive, hi_inclusive)``
    (either bound may be None) for patterns like ``t.z > c``,
    ``c >= t.z``, ``t.z = c`` and ``t.z BETWEEN a AND b``.  Pushable
    means the relation can serve the range from an index-shaped access
    path: an imprints manager, or a compressed execution mirror whose
    packed segments the select kernels scan directly.
    """
    if relation.table is None:
        return None

    def own_column(node: ast.Node) -> Optional[str]:
        if not isinstance(node, ast.ColumnRef):
            return None
        if node.table not in (None, binding):
            return None
        if node.name not in relation.columns:
            return None
        # Imprints only make sense on numeric columns.
        if relation.columns[node.name].dtype == object:
            return None
        if relation.manager is None and (
            relation.table is None
            or node.name not in relation.table
            or relation.table.column(node.name).packed is None
        ):
            return None
        return node.name

    bare = set(relation.columns)
    if isinstance(conjunct, ast.Between) and not conjunct.negated:
        name = own_column(conjunct.expr)
        if name is None:
            return None
        if _refs_binding(conjunct.low, binding, bare) or _refs_binding(
            conjunct.high, binding, bare
        ):
            return None
        return (name, conjunct.low, conjunct.high, True, True)
    if isinstance(conjunct, ast.BinOp) and conjunct.op in _RANGE_OPS:
        for col_side, const_side, flip in (
            (conjunct.left, conjunct.right, False),
            (conjunct.right, conjunct.left, True),
        ):
            name = own_column(col_side)
            if name is None or _refs_binding(const_side, binding, bare):
                continue
            op = conjunct.op
            if flip:  # c OP column  ->  column OP' c
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}[op]
            if op == "=":
                return (name, const_side, const_side, True, True)
            if op in ("<", "<="):
                return (name, None, const_side, True, op == "<=")
            return (name, const_side, None, op == ">=", True)
    return None


class _ProbeStats:
    """Zone-map accounting sink for a SQL-pushed imprint probe."""

    __slots__ = ("n_segments_skipped", "n_segments_probed", "imprint_build_seconds")

    def __init__(self) -> None:
        self.n_segments_skipped = 0
        self.n_segments_probed = 0
        self.imprint_build_seconds = 0.0


def _range_via_packed(relation: Relation, name: str) -> bool:
    """Serve a pushed range from the column's packed segments?

    A *built* imprint still wins (bit-level filtering beats zone maps on
    straddling segments); otherwise an existing compressed mirror is
    used as-is instead of paying a lazy imprint build — its encode-time
    zone maps already prune segments, and the packed kernels evaluate
    the rest without decoding.
    """
    if relation.table is None or name not in relation.table:
        return False
    if relation.table.column(name).packed is None:
        return False
    if relation.manager is None:
        return True
    return relation.manager.get(relation.table, name) is None


def _filter_relation(
    binding: str,
    relation: Relation,
    conjuncts: List[ast.Node],
    outer: Dict[str, object],
) -> np.ndarray:
    """Row indices of ``relation`` satisfying the conjuncts.

    Spatial conjuncts route through the imprints pipeline; the rest
    evaluate vectorised over the surviving candidates.  ``outer`` supplies
    scalar bindings from enclosing join loops.
    """
    with maybe_span(
        "scan", table=relation.name, binding=binding, rows_in=relation.n_rows
    ) as scan_span:
        result = _filter_relation_inner(binding, relation, conjuncts, outer)
        scan_span.set(rows_out=int(result.shape[0]))
    return result


def _filter_relation_inner(
    binding: str,
    relation: Relation,
    conjuncts: List[ast.Node],
    outer: Dict[str, object],
) -> np.ndarray:
    scalar_frame = _Frame(dict(outer), n_rows=0)
    candidates: Optional[np.ndarray] = None
    residual: List[ast.Node] = []

    for conjunct in conjuncts:
        matched = _match_spatial(conjunct, binding, relation)
        if matched is None:
            residual.append(conjunct)
            continue
        geom_expr, predicate, distance_expr = matched
        geometry = _evaluate(geom_expr, scalar_frame)
        if not isinstance(geometry, Geometry):
            raise SqlExecutionError(
                "spatial predicate needs a geometry argument"
            )
        distance = (
            float(_evaluate(distance_expr, scalar_frame))
            if distance_expr is not None
            else 0.0
        )
        with maybe_span(
            "filter.spatial",
            predicate=predicate,
            expr=_describe_expr(conjunct),
        ) as spatial_span:
            query_result = relation.spatial.query(geometry, predicate, distance)
            oids = query_result.oids
            spatial_span.set(
                rows_out=int(oids.shape[0]),
                segments_skipped=query_result.stats.n_segments_skipped,
                segments_probed=query_result.stats.n_segments_probed,
            )
        candidates = (
            oids
            if candidates is None
            else np.intersect1d(candidates, oids, assume_unique=True)
        )

    if candidates is None:
        # No spatial index hit: push one plain range conjunct through its
        # column's imprint (built lazily, exactly MonetDB's trigger).
        for position, conjunct in enumerate(residual):
            matched = _match_range(conjunct, binding, relation)
            if matched is None:
                continue
            name, lo_expr, hi_expr, lo_inc, hi_inc = matched
            lo = (
                _evaluate(lo_expr, scalar_frame) if lo_expr is not None else None
            )
            hi = (
                _evaluate(hi_expr, scalar_frame) if hi_expr is not None else None
            )
            with maybe_span(
                "filter.range", column=name, expr=_describe_expr(conjunct)
            ) as range_span:
                if _range_via_packed(relation, name):
                    candidates = engine_range_select(
                        relation.table.column(name), lo, hi, lo_inc, hi_inc
                    )
                    range_span.set(
                        rows_out=int(candidates.shape[0]), access="packed"
                    )
                else:
                    probe_stats = _ProbeStats()
                    candidates = relation.manager.range_select(
                        relation.table,
                        name,
                        lo,
                        hi,
                        lo_inc,
                        hi_inc,
                        stats=probe_stats,
                    )
                    range_span.set(
                        rows_out=int(candidates.shape[0]),
                        segments_skipped=probe_stats.n_segments_skipped,
                        segments_probed=probe_stats.n_segments_probed,
                    )
            del residual[position]
            break

    if candidates is None:
        candidates = np.arange(relation.n_rows, dtype=np.int64)
    if not residual or candidates.shape[0] == 0:
        return candidates

    with maybe_span("filter.residual", conjuncts=len(residual)) as residual_span:
        columns = {}
        for key, value in outer.items():
            columns[key] = value
        for name, arr in relation.columns.items():
            columns[f"{binding}.{name}"] = arr[candidates]
            columns.setdefault(name, arr[candidates])
        frame = _Frame(columns, n_rows=candidates.shape[0])
        mask = np.ones(candidates.shape[0], dtype=bool)
        for conjunct in residual:
            value = _evaluate(conjunct, frame)
            if not isinstance(value, np.ndarray):
                value = np.full(candidates.shape[0], bool(value))
            mask &= value.astype(bool)
        result = candidates[mask]
        residual_span.set(
            rows_in=int(candidates.shape[0]), rows_out=int(result.shape[0])
        )
    return result


# -- joins -----------------------------------------------------------------------------


def _applicable(conjunct: ast.Node, available: set, bindings_bare: Dict[str, set]) -> bool:
    """Can the conjunct be evaluated once ``available`` bindings are bound?"""
    for ref in ast.column_refs(conjunct):
        if ref.table is not None:
            if ref.table not in available:
                return False
        else:
            owners = {
                b for b, cols in bindings_bare.items() if ref.name in cols
            }
            if not owners <= available:
                return False
    return True


def _match_equi_join(
    conjunct: ast.Node, binding_a: str, binding_b: str, bare: Dict[str, set]
) -> Optional[Tuple[str, str]]:
    """Recognise ``a.col = b.col`` between exactly the two bindings.

    Returns the (a_column, b_column) pair or None.
    """
    if not (isinstance(conjunct, ast.BinOp) and conjunct.op == "="):
        return None
    left, right = conjunct.left, conjunct.right
    if not (isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)):
        return None

    def owner(ref: ast.ColumnRef) -> Optional[str]:
        if ref.table is not None:
            return ref.table if ref.table in (binding_a, binding_b) else None
        holders = [b for b in (binding_a, binding_b) if ref.name in bare[b]]
        return holders[0] if len(holders) == 1 else None

    owner_left, owner_right = owner(left), owner(right)
    if owner_left == binding_a and owner_right == binding_b:
        return (left.name, right.name)
    if owner_left == binding_b and owner_right == binding_a:
        return (right.name, left.name)
    return None


def _hash_equi_join(
    bindings: List[Tuple[str, Relation]],
    conjuncts: List[ast.Node],
    key_cols: Tuple[str, str],
    equi_conjunct: ast.Node,
    bindings_bare: Dict[str, set],
) -> _Frame:
    """Two-relation equality join via the engine's hash join."""
    from ..engine.join import hash_join

    (binding_a, rel_a), (binding_b, rel_b) = bindings
    col_a, col_b = key_cols

    with maybe_span(
        "join.hash",
        left=rel_a.name,
        right=rel_b.name,
        on=f"{binding_a}.{col_a} = {binding_b}.{col_b}",
    ) as join_span:
        remaining = [c for c in conjuncts if c is not equi_conjunct]
        own_a = [c for c in remaining if _applicable(c, {binding_a}, bindings_bare)]
        own_b = [c for c in remaining if _applicable(c, {binding_b}, bindings_bare)]
        residual = [c for c in remaining if c not in own_a and c not in own_b]
        idx_a = _filter_relation(binding_a, rel_a, own_a, outer={})
        idx_b = _filter_relation(binding_b, rel_b, own_b, outer={})

        from ..engine.column import Column

        left = Column.from_array("l", np.asarray(rel_a.columns[col_a]))
        right = Column.from_array("r", np.asarray(rel_b.columns[col_b]))
        pairs_a, pairs_b = hash_join(
            left, right, left_candidates=idx_a, right_candidates=idx_b
        )
        join_span.set(rows_out=int(pairs_a.shape[0]))

        columns: Dict[str, np.ndarray] = {}
        for name, arr in rel_a.columns.items():
            columns[f"{binding_a}.{name}"] = arr[pairs_a]
        for name, arr in rel_b.columns.items():
            columns[f"{binding_b}.{name}"] = arr[pairs_b]
        frame = _Frame(columns, n_rows=pairs_a.shape[0])
        if not residual:
            return frame
        mask = np.ones(frame.n_rows, dtype=bool)
        for conjunct in residual:
            value = _evaluate(conjunct, frame)
            if not isinstance(value, np.ndarray):
                value = np.full(frame.n_rows, bool(value))
            mask &= value.astype(bool)
        out = _Frame(
            {name: arr[mask] for name, arr in columns.items()},
            n_rows=int(mask.sum()),
        )
        join_span.set(rows_out=out.n_rows)
    return out


def _join(
    bindings: List[Tuple[str, Relation]], conjuncts: List[ast.Node]
) -> _Frame:
    """Materialise the (filtered) join of the registered relations.

    Two relations joined on plain column equality use the engine's hash
    join; otherwise the largest relation becomes the inner probe (it is
    the point table in every demo query) and the others iterate as outer
    loops with their own single-table filters applied first.
    """
    bindings_bare = {b: set(rel.columns) for b, rel in bindings}

    if len(bindings) == 2:
        binding_a, binding_b = bindings[0][0], bindings[1][0]
        for conjunct in conjuncts:
            key_cols = _match_equi_join(
                conjunct, binding_a, binding_b, bindings_bare
            )
            if key_cols is not None and not (
                bindings[0][1].columns[key_cols[0]].dtype == object
                or bindings[1][1].columns[key_cols[1]].dtype == object
            ):
                return _hash_equi_join(
                    bindings, conjuncts, key_cols, conjunct, bindings_bare
                )

    if len(bindings) == 1:
        binding, relation = bindings[0]
        idx = _filter_relation(binding, relation, conjuncts, outer={})
        columns: Dict[str, np.ndarray] = {}
        for name, arr in relation.columns.items():
            columns[f"{binding}.{name}"] = arr[idx]
        return _Frame(columns, n_rows=idx.shape[0])

    # Multi-way: probe = largest relation; outers = the rest, in order.
    probe_pos = max(range(len(bindings)), key=lambda i: bindings[i][1].n_rows)
    probe_binding, probe_relation = bindings[probe_pos]
    outers = [b for i, b in enumerate(bindings) if i != probe_pos]

    with maybe_span(
        "join.nested_loop",
        probe=probe_relation.name,
        outers=len(outers),
    ) as join_span:
        # Per-outer single-table filters run once, before the loops.
        remaining = list(conjuncts)
        outer_rows: List[Tuple[str, Relation, np.ndarray]] = []
        for binding, relation in outers:
            own = [
                c
                for c in remaining
                if _applicable(c, {binding}, bindings_bare)
            ]
            remaining = [c for c in remaining if c not in own]
            idx = _filter_relation(binding, relation, own, outer={})
            outer_rows.append((binding, relation, idx))

        out_columns: Dict[str, List] = {}
        for binding, relation, _idx in outer_rows:
            for name in relation.columns:
                out_columns[f"{binding}.{name}"] = []
        for name in probe_relation.columns:
            out_columns[f"{probe_binding}.{name}"] = []
        total = 0

        def recurse(level: int, outer_env: Dict[str, object]) -> None:
            nonlocal total
            if level == len(outer_rows):
                idx = _filter_relation(
                    probe_binding, probe_relation, remaining, outer=outer_env
                )
                k = idx.shape[0]
                if k == 0:
                    return
                for name, arr in probe_relation.columns.items():
                    out_columns[f"{probe_binding}.{name}"].append(arr[idx])
                for key, value in outer_env.items():
                    if key in out_columns:
                        filler = np.empty(k, dtype=object)
                        filler[:] = [value] * k
                        out_columns[key].append(filler)
                total += k
                return
            binding, relation, idx = outer_rows[level]
            for row in idx:
                env = dict(outer_env)
                for name, arr in relation.columns.items():
                    env[f"{binding}.{name}"] = arr[row]
                recurse(level + 1, env)

        recurse(0, {})

        final: Dict[str, np.ndarray] = {}
        for key, parts in out_columns.items():
            if parts:
                final[key] = np.concatenate(parts)
            else:
                final[key] = np.empty(0, dtype=object)
        join_span.set(rows_out=total)
    return _Frame(final, n_rows=total)


# -- projection and aggregation ------------------------------------------------------------


def _has_aggregate(node: ast.Node) -> bool:
    return any(
        isinstance(n, ast.FuncCall) and n.name in AGGREGATES
        for n in ast.walk(node)
    )


def _item_name(item: ast.SelectItem, position: int) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FuncCall):
        return expr.name
    return f"col{position}"


def _project(select: ast.Select, frame: _Frame) -> Result:
    aggregate_query = bool(select.group_by) or any(
        _has_aggregate(item.expr) for item in select.items
    )
    if aggregate_query:
        with maybe_span("aggregate", rows_in=frame.n_rows) as span:
            result = _aggregate(select, frame)
            span.set(rows_out=len(result.rows), groups=len(select.group_by))
    else:
        with maybe_span("project", rows_in=frame.n_rows) as span:
            result = _plain_project(select, frame)
            span.set(rows_out=len(result.rows))

    if select.distinct:
        seen = set()
        deduped = []
        for row in result.rows:
            try:
                key = row
                hash(key)
            except TypeError:
                key = tuple(repr(v) for v in row)
            if key not in seen:
                seen.add(key)
                deduped.append(row)
        result = Result(columns=result.columns, rows=deduped)

    if select.order_by:
        order_frame = _Frame(
            {
                name: _column_as_array([row[i] for row in result.rows])
                for i, name in enumerate(result.columns)
            },
            n_rows=len(result.rows),
        )
        keys = []
        for order_item in reversed(select.order_by):
            values = _evaluate_ordering(order_item.expr, result, frame)
            keys.append((values, order_item.descending))
        indices = list(range(len(result.rows)))
        for values, descending in keys:
            indices.sort(key=lambda i: values[i], reverse=descending)
        result = Result(
            columns=result.columns, rows=[result.rows[i] for i in indices]
        )
    if select.limit is not None:
        result = Result(columns=result.columns, rows=result.rows[: select.limit])
    return result


def _column_as_array(values: list) -> np.ndarray:
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    return arr


def _evaluate_ordering(expr: ast.Node, result: Result, frame: _Frame) -> list:
    """ORDER BY resolves against output aliases first, then input columns."""
    if isinstance(expr, ast.ColumnRef) and expr.table is None:
        if expr.name in result.columns:
            return result.column(expr.name)
    if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
        # ORDER BY <position>
        position = expr.value - 1
        if not 0 <= position < len(result.columns):
            raise SqlExecutionError(f"ORDER BY position {expr.value} out of range")
        return [row[position] for row in result.rows]
    # Evaluate against the output columns; for plain projections (result
    # rows align 1:1 with input rows) fall back to the input frame so
    # ORDER BY may use columns that were not selected.
    out_frame = _Frame(
        {
            name: _column_as_array(result.column(name))
            for name in result.columns
        },
        n_rows=len(result.rows),
    )
    try:
        value = _evaluate(expr, out_frame)
    except SqlExecutionError:
        if frame.n_rows != len(result.rows):
            raise
        value = _evaluate(expr, frame)
    if not isinstance(value, np.ndarray):
        return [value] * len(result.rows)
    return value.tolist()


def _plain_project(select: ast.Select, frame: _Frame) -> Result:
    columns: List[str] = []
    arrays: List[np.ndarray] = []
    for position, item in enumerate(select.items):
        if isinstance(item.expr, ast.Star):
            for key in frame.columns:
                columns.append(key)
                arrays.append(frame.columns[key])
            continue
        value = _evaluate(item.expr, frame)
        if not isinstance(value, np.ndarray):
            filler = np.empty(frame.n_rows, dtype=object)
            filler[:] = [value] * frame.n_rows
            value = filler
        columns.append(_item_name(item, position))
        arrays.append(value)
    rows = [
        tuple(_to_python(arr[i]) for arr in arrays) for i in range(frame.n_rows)
    ]
    return Result(columns=columns, rows=rows)


def _to_python(value):
    """Numpy scalars -> plain Python values in result rows."""
    if isinstance(value, np.generic):
        return value.item()
    return value


# -- EXPLAIN ---------------------------------------------------------------------


def _describe_expr(node: ast.Node) -> str:
    """Compact textual form of an expression for plan output."""
    if isinstance(node, ast.Literal):
        return repr(node.value)
    if isinstance(node, ast.ColumnRef):
        return node.qualified
    if isinstance(node, ast.Star):
        return "*"
    if isinstance(node, ast.FuncCall):
        return f"{node.name}({', '.join(_describe_expr(a) for a in node.args)})"
    if isinstance(node, ast.UnaryOp):
        return f"{node.op} {_describe_expr(node.operand)}"
    if isinstance(node, ast.BinOp):
        return (
            f"({_describe_expr(node.left)} {node.op} "
            f"{_describe_expr(node.right)})"
        )
    if isinstance(node, ast.Between):
        word = "not between" if node.negated else "between"
        return (
            f"({_describe_expr(node.expr)} {word} "
            f"{_describe_expr(node.low)} and {_describe_expr(node.high)})"
        )
    if isinstance(node, ast.InList):
        word = "not in" if node.negated else "in"
        inner = ", ".join(_describe_expr(o) for o in node.options)
        return f"({_describe_expr(node.expr)} {word} ({inner}))"
    return type(node).__name__


def _explain_relation_access(
    binding: str, relation: Relation, conjuncts: List[ast.Node]
) -> List[str]:
    """Plan lines for one relation's conjuncts (mirrors _filter_relation)."""
    lines = [f"access {relation.name} as {binding} ({relation.n_rows} rows)"]
    residual: List[ast.Node] = []
    spatial_seen = False
    for conjunct in conjuncts:
        matched = _match_spatial(conjunct, binding, relation)
        if matched is not None:
            _geom, predicate, _dist = matched
            lines.append(
                f"  spatial filter [{predicate}] via imprints + grid "
                f"refinement: {_describe_expr(conjunct)}"
            )
            spatial_seen = True
            continue
        residual.append(conjunct)
    if not spatial_seen:
        for conjunct in list(residual):
            matched = _match_range(conjunct, binding, relation)
            if matched is not None:
                column = matched[0]
                access = (
                    "packed segments"
                    if _range_via_packed(relation, column)
                    else "imprint"
                )
                lines.append(
                    f"  range filter via {access} on {column!r}: "
                    f"{_describe_expr(conjunct)}"
                )
                residual.remove(conjunct)
                break
    for conjunct in residual:
        lines.append(f"  residual scan filter: {_describe_expr(conjunct)}")
    return lines


def _explain_plan(
    select: ast.Select,
    bindings: List[Tuple[str, Relation]],
    conjuncts: List[ast.Node],
) -> str:
    bindings_bare = {b: set(rel.columns) for b, rel in bindings}
    lines: List[str] = []

    if len(bindings) == 1:
        binding, relation = bindings[0]
        lines.extend(_explain_relation_access(binding, relation, conjuncts))
    elif len(bindings) == 2 and any(
        _match_equi_join(c, bindings[0][0], bindings[1][0], bindings_bare)
        for c in conjuncts
    ):
        equi = next(
            c
            for c in conjuncts
            if _match_equi_join(c, bindings[0][0], bindings[1][0], bindings_bare)
        )
        lines.append(f"hash join on {_describe_expr(equi)}")
        rest = [c for c in conjuncts if c is not equi]
        for binding, relation in bindings:
            own = [c for c in rest if _applicable(c, {binding}, bindings_bare)]
            lines.extend(
                "  " + line
                for line in _explain_relation_access(binding, relation, own)
            )
    else:
        probe_pos = max(
            range(len(bindings)), key=lambda i: bindings[i][1].n_rows
        )
        probe_binding, probe_relation = bindings[probe_pos]
        rest = list(conjuncts)
        lines.append("nested-loop join")
        for i, (binding, relation) in enumerate(bindings):
            if i == probe_pos:
                continue
            own = [c for c in rest if _applicable(c, {binding}, bindings_bare)]
            rest = [c for c in rest if c not in own]
            lines.append(f"  outer loop over {relation.name} as {binding}:")
            lines.extend(
                "    " + line
                for line in _explain_relation_access(binding, relation, own)
            )
        lines.append(f"  inner probe per outer row:")
        lines.extend(
            "    " + line
            for line in _explain_relation_access(
                probe_binding, probe_relation, rest
            )
        )

    if select.group_by:
        keys = ", ".join(_describe_expr(e) for e in select.group_by)
        lines.append(f"group by {keys}")
        if select.having is not None:
            lines.append(f"having {_describe_expr(select.having)}")
    elif any(_has_aggregate(item.expr) for item in select.items):
        lines.append("aggregate (single group)")
    if select.distinct:
        lines.append("distinct")
    if select.order_by:
        keys = ", ".join(
            _describe_expr(o.expr) + (" desc" if o.descending else "")
            for o in select.order_by
        )
        lines.append(f"order by {keys}")
    if select.limit is not None:
        lines.append(f"limit {select.limit}")
    return "\n".join(lines)


def _aggregate(select: ast.Select, frame: _Frame) -> Result:
    group_exprs = list(select.group_by)
    if group_exprs:
        key_values = []
        for expr in group_exprs:
            value = _evaluate(expr, frame)
            if not isinstance(value, np.ndarray):
                raise SqlExecutionError("GROUP BY expression must reference columns")
            key_values.append(value)
        groups: Dict[tuple, List[int]] = {}
        for i in range(frame.n_rows):
            key = tuple(v[i] for v in key_values)
            groups.setdefault(key, []).append(i)
        ordered = sorted(groups.items(), key=lambda kv: kv[0])
    else:
        ordered = [((), list(range(frame.n_rows)))]

    columns = [
        _item_name(item, position) for position, item in enumerate(select.items)
    ]
    rows: List[tuple] = []
    for key, indices in ordered:
        sub = _Frame(
            {
                name: arr[np.asarray(indices, dtype=np.int64)]
                for name, arr in frame.columns.items()
            },
            n_rows=len(indices),
        )
        if select.having is not None:
            keep = _eval_aggregate_expr(select.having, sub)
            if not bool(keep):
                continue
        row = []
        for item in select.items:
            row.append(_to_python(_eval_aggregate_expr(item.expr, sub)))
        rows.append(tuple(row))
    return Result(columns=columns, rows=rows)


def _eval_aggregate_expr(node: ast.Node, frame: _Frame):
    """Evaluate a select expression in aggregate context: aggregate calls
    collapse to scalars, everything else must be group-constant."""
    if isinstance(node, ast.FuncCall) and node.name in AGGREGATES:
        return _apply_aggregate(node, frame)
    if isinstance(node, ast.BinOp):
        left = _eval_aggregate_expr(node.left, frame)
        right = _eval_aggregate_expr(node.right, frame)
        return _eval_binop(ast.BinOp(node.op, ast.Literal(left), ast.Literal(right)), frame)
    if isinstance(node, ast.UnaryOp):
        inner = _eval_aggregate_expr(node.operand, frame)
        return -inner if node.op == "-" else (not inner)
    value = _evaluate(node, frame)
    if isinstance(value, np.ndarray):
        if value.shape[0] == 0:
            return None
        first = value[0]
        return first
    return value


def _apply_aggregate(node: ast.FuncCall, frame: _Frame):
    name = node.name
    if name == "count":
        if len(node.args) == 1 and isinstance(node.args[0], ast.Star):
            return frame.n_rows
        if len(node.args) != 1:
            raise SqlExecutionError("count() takes one argument")
        value = _evaluate(node.args[0], frame)
        if isinstance(value, np.ndarray):
            return int(value.shape[0])
        return frame.n_rows
    if len(node.args) != 1:
        raise SqlExecutionError(f"{name}() takes one argument")
    value = _evaluate(node.args[0], frame)
    if not isinstance(value, np.ndarray):
        value = np.full(frame.n_rows, value, dtype=np.float64)
    if value.shape[0] == 0:
        return None
    if name == "sum":
        return value.sum()
    if name == "avg":
        return float(np.mean(value.astype(np.float64)))
    if name == "min":
        return value.min()
    if name == "max":
        return value.max()
    raise SqlExecutionError(f"unknown aggregate {name!r}")
