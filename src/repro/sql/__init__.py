"""The declarative layer: a mini SQL engine with OGC ST_* functions.

Usage::

    from repro.sql import Session

    session = Session()
    session.register_table(points_table)          # imprints-backed
    session.register_columns("zones", {...})      # geometry object column
    result = session.execute(
        "SELECT avg(z) FROM points "
        "WHERE ST_Contains(ST_GeomFromText('POLYGON((...))'), "
        "ST_Point(x, y))"
    )

Spatial predicates over registered point tables are pushed down through
the column imprints + grid refinement pipeline (Section 3.3); everything
else evaluates as vectorised numpy expressions.
"""

from .executor import Relation, Result, Session, SqlExecutionError
from .functions import SqlFunctionError
from .lexer import SqlSyntaxError
from .parser import parse

__all__ = [
    "Relation",
    "Result",
    "Session",
    "SqlExecutionError",
    "SqlFunctionError",
    "SqlSyntaxError",
    "parse",
]
