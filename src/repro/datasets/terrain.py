"""Fractal terrain synthesis: the ground truth under the synthetic AHN2.

AHN2 is a country-wide elevation model of the Netherlands.  We cannot ship
real AHN2 tiles, so the LIDAR generator samples a synthetic heightfield:
diamond-square fractal relief, flattened towards Dutch-polder gentleness,
with a sea-level water mask (the Netherlands is famously wet).  The
heightfield exposes bilinear ``height_at`` sampling so any point density
can be drawn from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..gis.envelope import Box


@dataclass
class Terrain:
    """A sampled heightfield over a world-coordinate extent.

    Attributes
    ----------
    heights:
        (n, n) float64 grid of elevations in metres.
    extent:
        The world rectangle the grid spans.
    sea_level:
        Elevation at or below which a cell counts as water.
    """

    heights: np.ndarray
    extent: Box
    sea_level: float = 0.0

    @property
    def size(self) -> int:
        return self.heights.shape[0]

    def height_at(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Bilinear elevation sample at world coordinates (vectorised)."""
        n = self.size
        fx = (np.asarray(xs) - self.extent.xmin) / max(self.extent.width, 1e-12)
        fy = (np.asarray(ys) - self.extent.ymin) / max(self.extent.height, 1e-12)
        gx = np.clip(fx * (n - 1), 0, n - 1 - 1e-9)
        gy = np.clip(fy * (n - 1), 0, n - 1 - 1e-9)
        ix = gx.astype(np.int64)
        iy = gy.astype(np.int64)
        tx = gx - ix
        ty = gy - iy
        h00 = self.heights[iy, ix]
        h10 = self.heights[iy, ix + 1]
        h01 = self.heights[iy + 1, ix]
        h11 = self.heights[iy + 1, ix + 1]
        return (
            h00 * (1 - tx) * (1 - ty)
            + h10 * tx * (1 - ty)
            + h01 * (1 - tx) * ty
            + h11 * tx * ty
        )

    def is_water(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Water mask at world coordinates."""
        return self.height_at(xs, ys) <= self.sea_level

    @property
    def water_fraction(self) -> float:
        return float((self.heights <= self.sea_level).mean())


def _diamond_square(order: int, roughness: float, rng: np.random.Generator) -> np.ndarray:
    """Classic diamond-square fractal on a (2^order + 1) grid in [0, 1]-ish."""
    n = (1 << order) + 1
    grid = np.zeros((n, n), dtype=np.float64)
    corners = rng.uniform(-1, 1, 4)
    grid[0, 0], grid[0, -1], grid[-1, 0], grid[-1, -1] = corners
    step = n - 1
    scale = 1.0
    while step > 1:
        half = step // 2
        # Diamond step: centres of squares.
        for y in range(half, n, step):
            for x in range(half, n, step):
                avg = (
                    grid[y - half, x - half]
                    + grid[y - half, x + half]
                    + grid[y + half, x - half]
                    + grid[y + half, x + half]
                ) / 4.0
                grid[y, x] = avg + rng.uniform(-scale, scale)
        # Square step: edge midpoints.
        for y in range(0, n, half):
            x_start = half if (y // half) % 2 == 0 else 0
            for x in range(x_start, n, step):
                total = 0.0
                count = 0
                if y >= half:
                    total += grid[y - half, x]
                    count += 1
                if y + half < n:
                    total += grid[y + half, x]
                    count += 1
                if x >= half:
                    total += grid[y, x - half]
                    count += 1
                if x + half < n:
                    total += grid[y, x + half]
                    count += 1
                grid[y, x] = total / count + rng.uniform(-scale, scale)
        step = half
        scale *= roughness
    return grid


def generate_terrain(
    extent: Box,
    order: int = 7,
    roughness: float = 0.55,
    relief: float = 25.0,
    sea_level_quantile: float = 0.15,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Terrain:
    """Build a synthetic Dutch-ish terrain.

    Parameters
    ----------
    extent:
        World rectangle in metres (RD-like coordinates).
    order:
        Grid refinement: the heightfield is (2^order + 1)^2 samples.
    roughness:
        Diamond-square roughness decay in (0, 1); lower = smoother.
    relief:
        Total elevation span in metres (AHN2 spans roughly -7..+322 m, but
        most of the country sits within a few tens of metres).
    sea_level_quantile:
        Fraction of the terrain that ends up under water.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    if not 0 < roughness < 1:
        raise ValueError("roughness must be in (0, 1)")
    raw = _diamond_square(order, roughness, rng)
    # Normalise to [0, 1] then scale to the requested relief.
    raw -= raw.min()
    peak = raw.max()
    if peak > 0:
        raw /= peak
    heights = raw * relief
    sea_level = float(np.quantile(heights, sea_level_quantile))
    # Shift so sea level sits at NAP 0, like the Dutch datum.
    heights -= sea_level
    return Terrain(heights=heights, extent=extent, sea_level=0.0)
