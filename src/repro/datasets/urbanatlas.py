"""Synthetic Urban Atlas-like land-use / land-cover zones.

Urban Atlas "provides pan-European information regarding the land use and
land cover data for urban zones" (Section 4).  Zones carry a nomenclature
code; the demo's signature query targets code 12210, "fast transit roads
and associated land".

The generator classifies a coarse grid over the region — water from the
terrain, urban densities around seeded centres, forest/agriculture
elsewhere — then merges connected same-class cells into rectilinear
(multi)polygons.  Fast-transit zones are buffers around the OSM motorway
corridors, so Scenario-2 joins across the datasets are spatially coherent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..gis.envelope import Box
from ..gis.geometry import MultiPolygon, Polygon
from .osm import OsmData
from .terrain import Terrain

#: The Urban Atlas nomenclature subset used by the demo.
UA_CODES: Dict[int, str] = {
    11100: "continuous urban fabric",
    11210: "discontinuous dense urban fabric",
    12100: "industrial, commercial, public units",
    12210: "fast transit roads and associated land",
    14100: "green urban areas",
    21000: "arable land",
    31000: "forests",
    51000: "water bodies",
}

FAST_TRANSIT = 12210
WATER_BODY = 51000


@dataclass
class LandUseZone:
    """One Urban Atlas zone: a (multi)polygon with a nomenclature code."""

    zone_id: int
    code: int
    geometry: MultiPolygon

    @property
    def label(self) -> str:
        return UA_CODES[self.code]

    @property
    def area(self) -> float:
        return self.geometry.area


@dataclass
class UrbanAtlasData:
    extent: Box
    zones: List[LandUseZone] = field(default_factory=list)

    def zones_of(self, code: int) -> List[LandUseZone]:
        return [z for z in self.zones if z.code == code]


def _merge_cells_to_multipolygon(
    mask: np.ndarray, extent: Box, nx_cells: int, ny_cells: int
) -> MultiPolygon:
    """Turn a boolean cell mask into a MultiPolygon of merged rectangles.

    Cells are coalesced into maximal horizontal strips, and vertically
    stacked strips with identical x-spans merge further — compact,
    valid rectilinear geometry without a full contour tracer.
    """
    cell_w = extent.width / nx_cells
    cell_h = extent.height / ny_cells
    # Horizontal strips per row.
    strips: List[List[float]] = []  # [x0, x1, y0, y1]
    for row in range(ny_cells):
        col = 0
        while col < nx_cells:
            if not mask[row, col]:
                col += 1
                continue
            start = col
            while col < nx_cells and mask[row, col]:
                col += 1
            strips.append(
                [
                    extent.xmin + start * cell_w,
                    extent.xmin + col * cell_w,
                    extent.ymin + row * cell_h,
                    extent.ymin + (row + 1) * cell_h,
                ]
            )
    # Vertical coalescing of equal-span strips.
    strips.sort(key=lambda s: (s[0], s[1], s[2]))
    merged: List[List[float]] = []
    for strip in strips:
        if (
            merged
            and merged[-1][0] == strip[0]
            and merged[-1][1] == strip[1]
            and abs(merged[-1][3] - strip[2]) < 1e-9
        ):
            merged[-1][3] = strip[3]
        else:
            merged.append(strip)
    polygons = [
        Polygon([(x0, y0), (x1, y0), (x1, y1), (x0, y1)])
        for x0, x1, y0, y1 in merged
    ]
    return MultiPolygon(polygons)


def _segment_buffer_boxes(coords: np.ndarray, radius: float) -> List[Polygon]:
    """Axis-aligned buffer rectangles along a polyline (corridor zones)."""
    boxes = []
    for i in range(coords.shape[0] - 1):
        x0 = min(coords[i, 0], coords[i + 1, 0]) - radius
        x1 = max(coords[i, 0], coords[i + 1, 0]) + radius
        y0 = min(coords[i, 1], coords[i + 1, 1]) - radius
        y1 = max(coords[i, 1], coords[i + 1, 1]) + radius
        boxes.append(Polygon([(x0, y0), (x1, y0), (x1, y1), (x0, y1)]))
    return boxes


def generate_urban_atlas(
    extent: Box,
    terrain: Optional[Terrain] = None,
    osm: Optional[OsmData] = None,
    grid: int = 24,
    n_urban_seeds: int = 3,
    corridor_width: float = 0.01,
    seed: int = 0,
) -> UrbanAtlasData:
    """Build the land-use mosaic.

    Parameters
    ----------
    terrain:
        When given, water-body zones follow its water mask.
    osm:
        When given, every motorway gets a fast-transit corridor zone
        (``corridor_width`` as a fraction of the extent width).
    grid:
        Classification grid resolution (grid x grid cells).
    """
    rng = np.random.default_rng(seed)
    # Classify the coarse grid.
    cell_cx = extent.xmin + (np.arange(grid) + 0.5) * extent.width / grid
    cell_cy = extent.ymin + (np.arange(grid) + 0.5) * extent.height / grid
    cxx, cyy = np.meshgrid(cell_cx, cell_cy)
    codes = np.full((grid, grid), 21000, dtype=np.int64)  # arable default

    # Forest blobs.
    for _ in range(4):
        fx = rng.uniform(extent.xmin, extent.xmax)
        fy = rng.uniform(extent.ymin, extent.ymax)
        fr = rng.uniform(0.08, 0.2) * extent.width
        codes[(cxx - fx) ** 2 + (cyy - fy) ** 2 <= fr * fr] = 31000

    # Urban densities around seeds: continuous core, dense ring,
    # industrial/green sprinkles.
    for _ in range(n_urban_seeds):
        ux = rng.uniform(
            extent.xmin + 0.2 * extent.width, extent.xmax - 0.2 * extent.width
        )
        uy = rng.uniform(
            extent.ymin + 0.2 * extent.height, extent.ymax - 0.2 * extent.height
        )
        dist = np.hypot(cxx - ux, cyy - uy)
        core = 0.06 * extent.width
        ring = 0.14 * extent.width
        codes[dist <= core] = 11100
        in_ring = (dist > core) & (dist <= ring)
        ring_draw = rng.uniform(0, 1, codes.shape)
        codes[in_ring & (ring_draw < 0.6)] = 11210
        codes[in_ring & (ring_draw >= 0.6) & (ring_draw < 0.8)] = 12100
        codes[in_ring & (ring_draw >= 0.8)] = 14100

    # Water from the terrain mask wins over everything.
    if terrain is not None:
        water = terrain.is_water(cxx.ravel(), cyy.ravel()).reshape(grid, grid)
        codes[water] = WATER_BODY

    zones: List[LandUseZone] = []
    zone_id = 0
    for code in sorted(set(codes.ravel().tolist())):
        mask = codes == code
        geometry = _merge_cells_to_multipolygon(mask, extent, grid, grid)
        zones.append(LandUseZone(zone_id=zone_id, code=int(code), geometry=geometry))
        zone_id += 1

    # Fast-transit corridors along the motorways.
    if osm is not None:
        radius = corridor_width * extent.width
        for road in osm.roads_of_class("motorway"):
            boxes = _segment_buffer_boxes(road.geometry.coords, radius)
            zones.append(
                LandUseZone(
                    zone_id=zone_id,
                    code=FAST_TRANSIT,
                    geometry=MultiPolygon(boxes),
                )
            )
            zone_id += 1

    return UrbanAtlasData(extent=extent, zones=zones)
