"""Synthetic AHN2-like airborne LIDAR.

The real AHN2 has 6-10 points/m² over the whole Netherlands — 640 billion
points in 60,185 LAZ tiles (Section 4).  This generator reproduces the
*statistical shape* of such data at laptop scale:

* airborne scan geometry — parallel flightlines, serpentine GPS time,
  oscillating scan angle, multi-return vegetation pulses;
* terrain-following elevations from :mod:`repro.datasets.terrain`, with
  buildings (extruded rectangles), vegetation (clustered canopies) and
  water (class 9, low intensity);
* the full 26-attribute flat schema, so every column of the paper's flat
  table carries realistic values;
* tiling into many small files mirroring the AHN2 distribution layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..gis.envelope import Box
from .terrain import Terrain, generate_terrain

PathLike = Union[str, Path]

#: ASPRS class codes used by the generator.
CLASS_GROUND = 2
CLASS_LOW_VEG = 3
CLASS_MED_VEG = 4
CLASS_HIGH_VEG = 5
CLASS_BUILDING = 6
CLASS_WATER = 9

#: Intensity distribution per class: (mean, std) of a clipped normal.
_CLASS_INTENSITY = {
    CLASS_GROUND: (900.0, 200.0),
    CLASS_LOW_VEG: (600.0, 150.0),
    CLASS_MED_VEG: (500.0, 150.0),
    CLASS_HIGH_VEG: (400.0, 120.0),
    CLASS_BUILDING: (1400.0, 300.0),
    CLASS_WATER: (120.0, 60.0),
}

#: Colour palette per class (16-bit RGB), loosely aerial-photo-like.
_CLASS_RGB = {
    CLASS_GROUND: (32000, 28000, 20000),
    CLASS_LOW_VEG: (18000, 36000, 14000),
    CLASS_MED_VEG: (14000, 32000, 12000),
    CLASS_HIGH_VEG: (10000, 28000, 10000),
    CLASS_BUILDING: (38000, 30000, 28000),
    CLASS_WATER: (10000, 16000, 34000),
}


@dataclass
class Building:
    """An extruded rectangular building footprint."""

    box: Box
    height: float


@dataclass
class LidarScene:
    """The synthetic world a point cloud is sampled from."""

    extent: Box
    terrain: Terrain
    buildings: List[Building] = field(default_factory=list)
    canopy_centers: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2))
    )
    canopy_radii: np.ndarray = field(default_factory=lambda: np.empty(0))


def make_scene(
    extent: Box,
    n_buildings: int = 40,
    n_canopies: int = 120,
    seed: int = 0,
    terrain_order: int = 6,
) -> LidarScene:
    """Lay out terrain, buildings and vegetation for a region."""
    rng = np.random.default_rng(seed)
    terrain = generate_terrain(extent, order=terrain_order, seed=seed)
    buildings: List[Building] = []
    for _ in range(n_buildings):
        w = rng.uniform(0.01, 0.04) * extent.width
        h = rng.uniform(0.01, 0.04) * extent.height
        x0 = rng.uniform(extent.xmin, extent.xmax - w)
        y0 = rng.uniform(extent.ymin, extent.ymax - h)
        # Skip buildings that would stand in open water.
        cx, cy = x0 + w / 2, y0 + h / 2
        if terrain.is_water(np.array([cx]), np.array([cy]))[0]:
            continue
        buildings.append(
            Building(Box(x0, y0, x0 + w, y0 + h), height=rng.uniform(3.0, 30.0))
        )
    centers = np.column_stack(
        [
            rng.uniform(extent.xmin, extent.xmax, n_canopies),
            rng.uniform(extent.ymin, extent.ymax, n_canopies),
        ]
    )
    radii = rng.uniform(0.004, 0.02, n_canopies) * extent.width
    return LidarScene(
        extent=extent,
        terrain=terrain,
        buildings=buildings,
        canopy_centers=centers,
        canopy_radii=radii,
    )


def _classify(scene: LidarScene, xs: np.ndarray, ys: np.ndarray, rng) -> np.ndarray:
    """Assign an ASPRS class per point from the scene layout."""
    cls = np.full(xs.shape[0], CLASS_GROUND, dtype=np.uint8)
    water = scene.terrain.is_water(xs, ys)
    cls[water] = CLASS_WATER
    # Vegetation canopies (only on land).
    if scene.canopy_centers.shape[0]:
        for (cx, cy), r in zip(scene.canopy_centers, scene.canopy_radii):
            inside = (xs - cx) ** 2 + (ys - cy) ** 2 <= r * r
            inside &= ~water
            if inside.any():
                veg = rng.choice(
                    np.array(
                        [CLASS_LOW_VEG, CLASS_MED_VEG, CLASS_HIGH_VEG],
                        dtype=np.uint8,
                    ),
                    size=int(inside.sum()),
                    p=[0.3, 0.3, 0.4],
                )
                cls[inside] = veg
    # Buildings override vegetation.
    for building in scene.buildings:
        b = building.box
        inside = (xs >= b.xmin) & (xs <= b.xmax) & (ys >= b.ymin) & (ys <= b.ymax)
        cls[inside] = CLASS_BUILDING
    return cls


def _elevation(
    scene: LidarScene, xs, ys, cls, rng
) -> np.ndarray:
    """Terrain-following z with class-dependent offsets."""
    z = scene.terrain.height_at(xs, ys) + rng.normal(0, 0.05, xs.shape[0])
    z[cls == CLASS_WATER] = rng.normal(0.0, 0.03, int((cls == CLASS_WATER).sum()))
    veg = np.isin(cls, [CLASS_LOW_VEG, CLASS_MED_VEG, CLASS_HIGH_VEG])
    z[veg] += np.where(
        cls[veg] == CLASS_LOW_VEG,
        rng.uniform(0.2, 1.0, int(veg.sum())),
        np.where(
            cls[veg] == CLASS_MED_VEG,
            rng.uniform(1.0, 4.0, int(veg.sum())),
            rng.uniform(4.0, 20.0, int(veg.sum())),
        ),
    )
    for building in scene.buildings:
        b = building.box
        inside = (xs >= b.xmin) & (xs <= b.xmax) & (ys >= b.ymin) & (ys <= b.ymax)
        if inside.any():
            z[inside] = (
                scene.terrain.height_at(
                    np.array([b.center[0]]), np.array([b.center[1]])
                )[0]
                + building.height
                + rng.normal(0, 0.1, int(inside.sum()))
            )
    return z


def generate_points(
    scene: LidarScene,
    n_points: int,
    seed: int = 0,
    n_flightlines: Optional[int] = None,
) -> Dict[str, np.ndarray]:
    """Sample an airborne survey of the scene; returns full flat columns.

    Points are generated *in flightline order* — the acquisition order real
    LAS files come in.  That ordering is what gives X (the strip axis)
    strong local clustering, the "side effect of the construction process"
    that imprints exploit (Section 2.1.1).
    """
    if n_points <= 0:
        raise ValueError("n_points must be positive")
    rng = np.random.default_rng(seed)
    extent = scene.extent
    if n_flightlines is None:
        n_flightlines = max(2, int(np.sqrt(n_points) / 40))

    per_line = np.full(n_flightlines, n_points // n_flightlines, dtype=np.int64)
    per_line[: n_points % n_flightlines] += 1
    line_width = extent.height / n_flightlines

    xs_parts, ys_parts, angle_parts, line_ids = [], [], [], []
    for line in range(n_flightlines):
        m = int(per_line[line])
        if m == 0:
            continue
        # Serpentine: odd lines fly back.
        along = np.sort(rng.uniform(0, 1, m))
        if line % 2:
            along = along[::-1]
        x = extent.xmin + along * extent.width
        y0 = extent.ymin + line * line_width
        # Scanner sweeps across the strip; angle oscillates.
        phase = np.linspace(0, m / 35.0, m)
        sweep = np.sin(2 * np.pi * phase)
        y = y0 + (0.5 + 0.45 * sweep) * line_width
        y += rng.normal(0, 0.02 * line_width, m)
        np.clip(y, extent.ymin, extent.ymax, out=y)
        xs_parts.append(x)
        ys_parts.append(y)
        angle_parts.append((sweep * 20).astype(np.int16))
        line_ids.append(np.full(m, line + 1, dtype=np.uint16))

    xs = np.concatenate(xs_parts)
    ys = np.concatenate(ys_parts)
    scan_angle = np.concatenate(angle_parts)
    point_source_id = np.concatenate(line_ids)
    n = xs.shape[0]

    cls = _classify(scene, xs, ys, rng)
    z = _elevation(scene, xs, ys, cls, rng)

    intensity = np.empty(n, dtype=np.float64)
    red = np.empty(n, dtype=np.uint16)
    green = np.empty(n, dtype=np.uint16)
    blue = np.empty(n, dtype=np.uint16)
    for code, (mean, std) in _CLASS_INTENSITY.items():
        mask = cls == code
        count = int(mask.sum())
        if count == 0:
            continue
        intensity[mask] = np.clip(rng.normal(mean, std, count), 0, 65535)
        r, g, b = _CLASS_RGB[code]
        jitter = rng.integers(-2000, 2000, (count, 3))
        red[mask] = np.clip(r + jitter[:, 0], 0, 65535)
        green[mask] = np.clip(g + jitter[:, 1], 0, 65535)
        blue[mask] = np.clip(b + jitter[:, 2], 0, 65535)

    # Multi-return pulses over vegetation; single returns elsewhere.
    veg = np.isin(cls, [CLASS_LOW_VEG, CLASS_MED_VEG, CLASS_HIGH_VEG])
    number_of_returns = np.where(veg, rng.integers(2, 5, n), 1).astype(np.uint8)
    return_number = np.minimum(
        rng.integers(1, 5, n).astype(np.uint8), number_of_returns
    ).astype(np.uint8)

    gps_time = np.cumsum(rng.exponential(1e-4, n))
    nir = np.clip(
        intensity * 0.8 + rng.normal(0, 100, n), 0, 65535
    ).astype(np.uint16)

    return {
        "x": xs,
        "y": ys,
        "z": z,
        "intensity": intensity.astype(np.uint16),
        "return_number": return_number,
        "number_of_returns": number_of_returns,
        "scan_direction_flag": (scan_angle >= 0).astype(np.uint8),
        "edge_of_flight_line": (np.abs(scan_angle) >= 19).astype(np.uint8),
        "classification": cls,
        "synthetic": np.zeros(n, dtype=np.uint8),
        "key_point": np.zeros(n, dtype=np.uint8),
        "withheld": (rng.uniform(0, 1, n) < 0.001).astype(np.uint8),
        "overlap": np.zeros(n, dtype=np.uint8),
        "scanner_channel": np.zeros(n, dtype=np.uint8),
        "scan_angle": scan_angle,
        "user_data": np.zeros(n, dtype=np.uint8),
        "point_source_id": point_source_id,
        "gps_time": gps_time,
        "red": red,
        "green": green,
        "blue": blue,
        "nir": nir,
        "wave_packet_index": np.zeros(n, dtype=np.uint8),
        "wave_byte_offset": np.zeros(n, dtype=np.uint64),
        "wave_packet_size": np.zeros(n, dtype=np.uint32),
        "wave_return_location": np.zeros(n, dtype=np.float32),
    }


def generate_tiles(
    extent: Box,
    n_points: int,
    n_tiles_x: int,
    n_tiles_y: int,
    seed: int = 0,
) -> Iterator[Tuple[Box, Dict[str, np.ndarray]]]:
    """Generate the cloud as a grid of tiles (the AHN2 file layout).

    Each tile gets its own scene detail but shares the regional terrain,
    and yields ``(tile_extent, columns)`` ready for :func:`write_las`.
    """
    scene = make_scene(extent, seed=seed)
    n_tiles = n_tiles_x * n_tiles_y
    per_tile = np.full(n_tiles, n_points // n_tiles, dtype=np.int64)
    per_tile[: n_points % n_tiles] += 1
    tile_w = extent.width / n_tiles_x
    tile_h = extent.height / n_tiles_y
    tile = 0
    for ty in range(n_tiles_y):
        for tx in range(n_tiles_x):
            m = int(per_tile[tile])
            tile_extent = Box(
                extent.xmin + tx * tile_w,
                extent.ymin + ty * tile_h,
                extent.xmin + (tx + 1) * tile_w,
                extent.ymin + (ty + 1) * tile_h,
            )
            if m > 0:
                tile_scene = LidarScene(
                    extent=tile_extent,
                    terrain=scene.terrain,
                    buildings=[
                        b
                        for b in scene.buildings
                        if b.box.intersects(tile_extent)
                    ],
                    canopy_centers=scene.canopy_centers,
                    canopy_radii=scene.canopy_radii,
                )
                yield tile_extent, generate_points(
                    tile_scene, m, seed=seed + 1000 + tile
                )
            tile += 1


def split_cloud_into_tiles(
    columns: Dict[str, np.ndarray],
    extent: Box,
    n_tiles_x: int,
    n_tiles_y: int,
) -> Iterator[Tuple[Box, Dict[str, np.ndarray]]]:
    """Partition an existing cloud by a tile grid (one LAS file per tile).

    Unlike :func:`generate_tiles` this does not synthesise new points; it
    re-cuts the given columns, so file-based and in-memory copies of a
    dataset hold the *same* point multiset.
    """
    xs = np.asarray(columns["x"])
    ys = np.asarray(columns["y"])
    tile_w = extent.width / n_tiles_x
    tile_h = extent.height / n_tiles_y
    tx = np.clip(((xs - extent.xmin) / tile_w).astype(np.int64), 0, n_tiles_x - 1)
    ty = np.clip(((ys - extent.ymin) / tile_h).astype(np.int64), 0, n_tiles_y - 1)
    tile_ids = ty * n_tiles_x + tx
    for tile in range(n_tiles_x * n_tiles_y):
        members = np.flatnonzero(tile_ids == tile)
        if members.shape[0] == 0:
            continue
        cy, cx = divmod(tile, n_tiles_x)
        tile_extent = Box(
            extent.xmin + cx * tile_w,
            extent.ymin + cy * tile_h,
            extent.xmin + (cx + 1) * tile_w,
            extent.ymin + (cy + 1) * tile_h,
        )
        yield tile_extent, {name: np.asarray(arr)[members] for name, arr in columns.items()}


def write_cloud_tiles(
    directory: PathLike,
    columns: Dict[str, np.ndarray],
    extent: Box,
    n_tiles_x: int = 4,
    n_tiles_y: int = 4,
    compressed: bool = False,
) -> List[Path]:
    """Write an existing cloud as a tile-grid of .las/.laz files."""
    from ..las.laz import write_laz
    from ..las.writer import write_las

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for i, (_tile_extent, tile_columns) in enumerate(
        split_cloud_into_tiles(columns, extent, n_tiles_x, n_tiles_y)
    ):
        suffix = "laz" if compressed else "las"
        path = directory / f"tile_{i:05d}.{suffix}"
        if compressed:
            write_laz(path, tile_columns)
        else:
            write_las(path, tile_columns)
        paths.append(path)
    return paths


def write_tile_files(
    directory: PathLike,
    extent: Box,
    n_points: int,
    n_tiles_x: int = 4,
    n_tiles_y: int = 4,
    seed: int = 0,
    compressed: bool = False,
) -> List[Path]:
    """Materialise the tiled cloud as .las (or .laz) files on disk."""
    from ..las.laz import write_laz
    from ..las.writer import write_las

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for i, (_tile_extent, columns) in enumerate(
        generate_tiles(extent, n_points, n_tiles_x, n_tiles_y, seed=seed)
    ):
        suffix = "laz" if compressed else "las"
        path = directory / f"tile_{i:05d}.{suffix}"
        if compressed:
            write_laz(path, columns)
        else:
            write_las(path, columns)
        paths.append(path)
    return paths
