"""Synthetic stand-ins for the demo's three datasets.

* :mod:`repro.datasets.lidar` — AHN2-like airborne LIDAR (640 G points in
  the paper; parameterised down to laptop scale here).
* :mod:`repro.datasets.osm` — OpenStreetMap-like roads/rivers/POIs.
* :mod:`repro.datasets.urbanatlas` — Urban Atlas-like land-use zones.
* :mod:`repro.datasets.terrain` — the shared fractal heightfield.
"""

from .lidar import LidarScene, generate_points, generate_tiles, make_scene, write_tile_files
from .osm import POI_KINDS, ROAD_CLASSES, OsmData, generate_osm
from .terrain import Terrain, generate_terrain
from .urbanatlas import (
    FAST_TRANSIT,
    UA_CODES,
    LandUseZone,
    UrbanAtlasData,
    generate_urban_atlas,
)

__all__ = [
    "FAST_TRANSIT",
    "LandUseZone",
    "LidarScene",
    "OsmData",
    "POI_KINDS",
    "ROAD_CLASSES",
    "Terrain",
    "UA_CODES",
    "UrbanAtlasData",
    "generate_osm",
    "generate_points",
    "generate_terrain",
    "generate_tiles",
    "generate_urban_atlas",
    "make_scene",
    "write_tile_files",
]
