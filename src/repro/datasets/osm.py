"""Synthetic OpenStreetMap-like vector data: roads, rivers, POIs.

OSM supplies "ample information about the road network, the river network,
points of interest etc." (Section 4).  This generator builds a perturbed
grid road network (networkx), meandering rivers, and tagged POIs over the
same extent as the LIDAR, so Scenario-2 queries can join the datasets.

Road classes follow the OSM highway hierarchy; ``motorway`` segments are
the "fast transit" corridors the Urban Atlas generator buffers into its
12210 zones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from ..gis.envelope import Box
from ..gis.geometry import LineString, Point

#: OSM-ish road classes and the integer codes the flat tables store.
ROAD_CLASSES: Dict[str, int] = {
    "motorway": 1,
    "primary": 2,
    "secondary": 3,
    "residential": 4,
}
ROAD_CLASS_NAMES = {code: name for name, code in ROAD_CLASSES.items()}

POI_KINDS: Dict[str, int] = {
    "station": 1,
    "school": 2,
    "hospital": 3,
    "supermarket": 4,
    "windmill": 5,
}


@dataclass
class Road:
    """One road segment with its OSM-like attributes."""

    road_id: int
    name: str
    road_class: str
    geometry: LineString

    @property
    def class_code(self) -> int:
        return ROAD_CLASSES[self.road_class]


@dataclass
class River:
    river_id: int
    name: str
    geometry: LineString


@dataclass
class Poi:
    poi_id: int
    name: str
    kind: str
    geometry: Point

    @property
    def kind_code(self) -> int:
        return POI_KINDS[self.kind]


@dataclass
class OsmData:
    """The generated vector bundle."""

    extent: Box
    roads: List[Road] = field(default_factory=list)
    rivers: List[River] = field(default_factory=list)
    pois: List[Poi] = field(default_factory=list)

    def roads_of_class(self, road_class: str) -> List[Road]:
        return [r for r in self.roads if r.road_class == road_class]


def generate_osm(
    extent: Box,
    grid: int = 6,
    n_rivers: int = 2,
    n_pois: int = 60,
    seed: int = 0,
) -> OsmData:
    """Build the road/river/POI bundle for a region.

    The road network is a ``grid x grid`` lattice with jittered nodes:
    the outer ring and one central cross become motorways/primaries, the
    rest residential — a caricature of a Dutch city's ring road + radials.
    """
    if grid < 2:
        raise ValueError("grid must be >= 2")
    rng = np.random.default_rng(seed)
    graph = nx.grid_2d_graph(grid, grid)

    # Jittered node positions in world coordinates.
    def node_xy(node: Tuple[int, int]) -> Tuple[float, float]:
        i, j = node
        jitter = 0.25 / max(grid - 1, 1)
        fx = i / (grid - 1) + rng.uniform(-jitter, jitter) * (0 < i < grid - 1)
        fy = j / (grid - 1) + rng.uniform(-jitter, jitter) * (0 < j < grid - 1)
        return (
            extent.xmin + fx * extent.width,
            extent.ymin + fy * extent.height,
        )

    positions = {node: node_xy(node) for node in graph.nodes}

    mid = grid // 2
    roads: List[Road] = []
    for rid, (a, b) in enumerate(sorted(graph.edges)):
        on_border = (
            (a[0] == b[0] and a[0] in (0, grid - 1))
            or (a[1] == b[1] and a[1] in (0, grid - 1))
        )
        on_cross = (a[0] == b[0] == mid) or (a[1] == b[1] == mid)
        if on_cross:
            road_class = "motorway"
        elif on_border:
            road_class = "primary"
        else:
            road_class = "secondary" if rng.uniform() < 0.3 else "residential"
        # A midpoint bend makes segments non-trivial linestrings.
        (x1, y1), (x2, y2) = positions[a], positions[b]
        mx = (x1 + x2) / 2 + rng.normal(0, 0.01 * extent.width)
        my = (y1 + y2) / 2 + rng.normal(0, 0.01 * extent.height)
        mx = float(np.clip(mx, extent.xmin, extent.xmax))
        my = float(np.clip(my, extent.ymin, extent.ymax))
        roads.append(
            Road(
                road_id=rid,
                name=f"{road_class}_{rid}",
                road_class=road_class,
                geometry=LineString([(x1, y1), (mx, my), (x2, y2)]),
            )
        )

    rivers: List[River] = []
    for rid in range(n_rivers):
        # A river meanders west -> east as a bounded random walk.
        n_steps = 20
        xs = np.linspace(extent.xmin, extent.xmax, n_steps)
        ys = np.empty(n_steps)
        ys[0] = rng.uniform(
            extent.ymin + 0.2 * extent.height, extent.ymax - 0.2 * extent.height
        )
        for i in range(1, n_steps):
            ys[i] = ys[i - 1] + rng.normal(0, 0.04 * extent.height)
        np.clip(ys, extent.ymin, extent.ymax, out=ys)
        rivers.append(
            River(
                river_id=rid,
                name=f"river_{rid}",
                geometry=LineString(np.column_stack([xs, ys])),
            )
        )

    pois: List[Poi] = []
    kinds = list(POI_KINDS)
    for pid in range(n_pois):
        kind = kinds[int(rng.integers(0, len(kinds)))]
        pois.append(
            Poi(
                poi_id=pid,
                name=f"{kind}_{pid}",
                kind=kind,
                geometry=Point(
                    rng.uniform(extent.xmin, extent.xmax),
                    rng.uniform(extent.ymin, extent.ymax),
                ),
            )
        )

    return OsmData(extent=extent, roads=roads, rivers=rivers, pois=pois)
