"""Bounded admission control: the layer that says *no*.

The paper's Scenario 1 is many concurrent viewport queries against one
column store.  An engine without admission discipline answers overload
by queueing unboundedly — every request is eventually served, long after
its viewport stopped mattering, with memory growing the whole time.  The
:class:`AdmissionController` bounds both dimensions:

* at most ``max_concurrency`` requests execute at once;
* at most ``queue_depth`` more wait (bounded, FIFO via the condition
  variable's wakeup order);
* everything beyond that is **shed immediately** with
  :class:`AdmissionRejected` — the HTTP layer maps it to
  ``429 Too Many Requests`` plus a ``Retry-After`` hint.  Shedding is a
  constant-time decision under the lock, which is what makes the
  "429 within 100ms under 2x overload" acceptance criterion possible.

Draining (``begin_drain``) flips the controller into shutdown mode:
every new arrival and every queued waiter is rejected with
``reason="draining"`` (HTTP 503) while in-flight requests run to
completion; ``wait_drained`` blocks until they have.

All mutable state is guarded by one condition variable; the only waits
are bounded (queue timeout, drain timeout).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.timing import now


class AdmissionRejected(RuntimeError):
    """A request was refused admission (shed, queue timeout, or drain).

    ``retry_after_s`` is the backoff hint surfaced as the HTTP
    ``Retry-After`` header; ``reason`` is one of ``"saturated"``,
    ``"queue_timeout"`` or ``"draining"``.
    """

    def __init__(
        self,
        reason: str,
        retry_after_s: float,
        inflight: int,
        queued: int,
    ) -> None:
        super().__init__(
            f"admission rejected ({reason}): {inflight} in flight, "
            f"{queued} queued; retry after {retry_after_s:g}s"
        )
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.inflight = inflight
        self.queued = queued


class AdmissionController:
    """Bounded concurrency + bounded queue + immediate shed.

    Parameters
    ----------
    max_concurrency:
        Requests executing simultaneously.
    queue_depth:
        Requests allowed to wait for a slot; ``0`` disables queueing
        entirely (pure shed at saturation).
    queue_wait_s:
        How long a queued request waits for a slot before it is shed
        with ``reason="queue_timeout"``.
    retry_after_s:
        The backoff hint attached to rejections.
    registry:
        Metrics registry for the ``serve.*`` series (the active
        context's registry when omitted).
    """

    def __init__(
        self,
        max_concurrency: int = 4,
        queue_depth: int = 8,
        queue_wait_s: float = 30.0,
        retry_after_s: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.max_concurrency = max_concurrency
        self.queue_depth = queue_depth
        self.queue_wait_s = queue_wait_s
        self.retry_after_s = retry_after_s
        self.registry = registry if registry is not None else get_registry()
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0
        self._draining = False

    # -- introspection -----------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def queued(self) -> int:
        with self._cond:
            return self._queued

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    def snapshot(self) -> dict:
        with self._cond:
            return {
                "inflight": self._inflight,
                "queued": self._queued,
                "max_concurrency": self.max_concurrency,
                "queue_depth": self.queue_depth,
                "draining": self._draining,
            }

    # -- admission ---------------------------------------------------------

    @contextmanager
    def admit(self) -> Iterator[None]:
        """Hold one execution slot for the duration of the block.

        Raises :class:`AdmissionRejected` without waiting when the
        controller is saturated past its queue depth or draining;
        otherwise may wait up to ``queue_wait_s`` for a slot.
        """
        self.acquire()
        try:
            yield
        finally:
            self.release()

    def _reject(self, reason: str) -> AdmissionRejected:
        # Called under the condition; counts the shed and builds the error.
        self.registry.counter("serve.shed").inc()
        return AdmissionRejected(
            reason, self.retry_after_s, self._inflight, self._queued
        )

    def _publish_gauges_locked(self) -> None:
        self.registry.gauge("serve.inflight").set(float(self._inflight))
        self.registry.gauge("serve.queued").set(float(self._queued))

    def acquire(self) -> None:
        """Take an execution slot (see :meth:`admit`)."""
        t0 = now()
        with self._cond:
            if self._draining:
                raise self._reject("draining")
            if self._inflight < self.max_concurrency:
                self._inflight += 1
                self._publish_gauges_locked()
                self.registry.counter("serve.admitted").inc()
                return
            if self._queued >= self.queue_depth:
                raise self._reject("saturated")
            self._queued += 1
            self._publish_gauges_locked()
            deadline = t0 + self.queue_wait_s
            try:
                while True:
                    if self._draining:
                        raise self._reject("draining")
                    if self._inflight < self.max_concurrency:
                        self._inflight += 1
                        break
                    remaining = deadline - now()
                    if remaining <= 0:
                        raise self._reject("queue_timeout")
                    self._cond.wait(remaining)
            finally:
                self._queued -= 1
                self._publish_gauges_locked()
            self.registry.counter("serve.admitted").inc()
        self.registry.histogram("serve.queue_wait_seconds").observe(now() - t0)

    def release(self) -> None:
        """Return an execution slot and wake one queued waiter."""
        with self._cond:
            self._inflight -= 1
            self._publish_gauges_locked()
            self._cond.notify_all()

    # -- graceful shutdown -------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting; queued waiters fail out, in-flight continue."""
        with self._cond:
            self._draining = True
            self.registry.gauge("serve.draining").set(1.0)
            self._cond.notify_all()

    def wait_drained(self, timeout_s: float) -> bool:
        """Block until in-flight requests finish; False on timeout."""
        deadline = now() + timeout_s
        with self._cond:
            while self._inflight > 0:
                remaining = deadline - now()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True
