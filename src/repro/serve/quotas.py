"""Per-tenant resource quotas over the PR 5 attribution machinery.

Every query already produces a :class:`~repro.obs.resources.ResourceUsage`
(CPU seconds, rows touched, bytes scanned) via :class:`ResourceTracker`.
The :class:`QuotaLedger` turns that attribution into enforcement: each
tenant carries cumulative usage against an optional
:class:`TenantBudget`, checked *before* admission (an exhausted tenant
must not occupy an execution slot) and charged after execution.

Exhaustion raises :class:`QuotaExceeded` carrying the full budget
report — the HTTP layer answers ``403`` with the report as the body, so
a rejected client sees exactly which axis ran out and by how much
instead of a bare status code.

Budgets are soft-isolated, not preemptive: the request that *crosses*
the line still completes (its usage is only known afterwards), and every
request after it is refused.  Configuration comes from the CLI as
``tenant=cpu_s:rows`` specs parsed by :func:`parse_quota_spec`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from ..obs.resources import ResourceUsage

#: Tenant used when a request carries no ``X-Tenant`` header / field.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantBudget:
    """Budget limits for one tenant; ``None`` means unlimited on that axis."""

    cpu_seconds: Optional[float] = None
    rows_touched: Optional[int] = None


class QuotaExceeded(RuntimeError):
    """A tenant's cumulative usage crossed its budget.

    ``report`` is the JSON-ready budget report (used/limit/remaining per
    axis) served as the 403 response body.
    """

    def __init__(self, tenant: str, report: Dict[str, object]) -> None:
        budget = report.get("budget")
        exhausted = [
            axis
            for axis, entry in (
                budget.items() if isinstance(budget, dict) else ()
            )
            if isinstance(entry, dict) and entry.get("exhausted")
        ]
        super().__init__(
            f"tenant {tenant!r} exhausted budget on: "
            f"{', '.join(exhausted) or 'unknown axis'}"
        )
        self.tenant = tenant
        self.report = report


def parse_quota_spec(spec: str) -> Dict[str, TenantBudget]:
    """Parse one or more ``tenant=cpu_s:rows`` specs (comma separated).

    Either axis may be empty for "unlimited": ``alice=1.5:100000``,
    ``bob=2.0`` (CPU only), ``carol=:50000`` (rows only).
    """
    budgets: Dict[str, TenantBudget] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad quota spec {part!r}: want tenant=cpu_seconds:rows"
            )
        tenant, _, limits = part.partition("=")
        cpu_text, _, rows_text = limits.partition(":")
        try:
            cpu = float(cpu_text) if cpu_text.strip() else None
            rows = int(rows_text) if rows_text.strip() else None
        except ValueError:
            raise ValueError(
                f"bad quota spec {part!r}: non-numeric limit"
            ) from None
        budgets[tenant.strip()] = TenantBudget(
            cpu_seconds=cpu, rows_touched=rows
        )
    return budgets


class QuotaLedger:
    """Thread-safe cumulative usage per tenant, checked against budgets.

    Parameters
    ----------
    budgets:
        Per-tenant budgets.  Tenants absent from the map fall back to
        ``default_budget``; with neither, usage is tracked but never
        enforced (attribution stays useful for billing reports).
    default_budget:
        Budget applied to tenants without an explicit entry.
    """

    def __init__(
        self,
        budgets: Optional[Dict[str, TenantBudget]] = None,
        default_budget: Optional[TenantBudget] = None,
    ) -> None:
        self._budgets = dict(budgets or {})
        self._default = default_budget
        self._lock = threading.Lock()
        self._cpu: Dict[str, float] = {}
        self._rows: Dict[str, int] = {}

    def budget_for(self, tenant: str) -> Optional[TenantBudget]:
        return self._budgets.get(tenant, self._default)

    def charge(self, tenant: str, usage: ResourceUsage) -> None:
        """Fold one finished request's usage into the tenant's total."""
        with self._lock:
            self._cpu[tenant] = (
                self._cpu.get(tenant, 0.0)
                + usage.cpu_seconds
                + usage.worker_cpu_seconds
            )
            self._rows[tenant] = (
                self._rows.get(tenant, 0) + usage.rows_touched
            )

    def check(self, tenant: str) -> None:
        """Raise :class:`QuotaExceeded` when the tenant is out of budget."""
        report = self.report(tenant)
        budget = report.get("budget")
        if isinstance(budget, dict) and any(
            isinstance(entry, dict) and entry.get("exhausted")
            for entry in budget.values()
        ):
            raise QuotaExceeded(tenant, report)

    def report(self, tenant: str) -> Dict[str, object]:
        """JSON-ready used/limit/remaining per axis for one tenant."""
        budget = self.budget_for(tenant)
        with self._lock:
            cpu_used = self._cpu.get(tenant, 0.0)
            rows_used = self._rows.get(tenant, 0)

        def axis(
            used: float, limit: Optional[float]
        ) -> Dict[str, object]:
            entry: Dict[str, object] = {"used": used, "limit": limit}
            if limit is not None:
                entry["remaining"] = max(0.0, limit - used)
                entry["exhausted"] = used >= limit
            else:
                entry["remaining"] = None
                entry["exhausted"] = False
            return entry

        return {
            "tenant": tenant,
            "budget": {
                "cpu_seconds": axis(
                    cpu_used,
                    budget.cpu_seconds if budget is not None else None,
                ),
                "rows_touched": axis(
                    float(rows_used),
                    (
                        float(budget.rows_touched)
                        if budget is not None
                        and budget.rows_touched is not None
                        else None
                    ),
                ),
            },
        }

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Reports for every tenant ever seen or explicitly budgeted."""
        with self._lock:
            tenants = set(self._cpu) | set(self._rows) | set(self._budgets)
        return {tenant: self.report(tenant) for tenant in sorted(tenants)}
