"""Reader snapshots over catalog generations.

The durability layer already publishes atomically: ``Database.save``
writes table data first and replaces ``_catalog.json`` last, stamping a
monotonically increasing **generation**.  This module turns that stamp
into the service's concurrency story:

* The daemon holds one current :class:`Snapshot` — a fully loaded
  :class:`~repro.api.PointCloudDB` plus the generation it was loaded at.
* Every request *pins* the current snapshot for its whole execution
  (:meth:`SnapshotManager.pin`).  Pinning is a reference, not a lock:
  the snapshot's tables are never mutated after publication, so any
  number of readers scan it freely.
* A writer (this process or another) publishes generation N+1 through
  the same atomic catalog replace; :meth:`SnapshotManager.reload_if_changed`
  notices the new stamp (one small JSON read — cheap enough to poll),
  loads the new generation *beside* the old one, and swaps the current
  pointer.  In-flight readers keep their pinned generation to the end;
  their result sets cannot change mid-scan.  The old snapshot is freed
  by ordinary refcounting once its last reader unpins.

This is MVCC at the coarsest possible grain — one version per published
catalog — which matches the paper's workload: bulk loads are rare and
big, reads are constant and latency-sensitive.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from ..api import PointCloudDB
from ..engine.catalog import Database
from ..obs.context import ObsContext

PathLike = Union[str, Path]


class Snapshot:
    """One immutable published generation of the store.

    ``pins`` counts requests currently scanning this snapshot — surfaced
    in ``/healthz`` and the drain log, not used for locking.
    """

    def __init__(self, db: PointCloudDB, generation: int) -> None:
        self.db = db
        self.generation = generation
        self._pins = 0
        self._lock = threading.Lock()

    @property
    def pins(self) -> int:
        with self._lock:
            return self._pins

    def _pin(self) -> None:
        with self._lock:
            self._pins += 1

    def _unpin(self) -> None:
        with self._lock:
            self._pins -= 1


class SnapshotManager:
    """Owns the current snapshot; readers pin, writers publish.

    Parameters
    ----------
    directory:
        On-disk store root; ``None`` for a purely in-memory service
        (tests, benchmarks) seeded via :meth:`publish_db`.
    threads:
        Worker count forwarded to loads.
    obs:
        The service :class:`ObsContext`; every loaded snapshot shares it
        so queries against any generation land in the same registry and
        query log.
    loader:
        Load override for tests (defaults to :meth:`PointCloudDB.load`).
    """

    def __init__(
        self,
        directory: Optional[PathLike] = None,
        threads: Optional[int] = None,
        obs: Optional[ObsContext] = None,
        loader: Optional[Callable[[], PointCloudDB]] = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.threads = threads
        self.obs = obs
        self._loader = loader
        self._lock = threading.Lock()
        self._current: Optional[Snapshot] = None

    # -- loading / publishing ----------------------------------------------

    def _load(self) -> PointCloudDB:
        if self._loader is not None:
            return self._loader()
        if self.directory is None:
            raise ValueError("no store directory and no loader configured")
        return PointCloudDB.load(
            self.directory, threads=self.threads, obs=self.obs
        )

    def open(self) -> Snapshot:
        """Load the initial snapshot (idempotent)."""
        with self._lock:
            if self._current is None:
                db = self._load()
                self._current = Snapshot(db, db.db.generation)
            return self._current

    def publish_db(self, db: PointCloudDB) -> Snapshot:
        """Swap in an already-built database as the current snapshot.

        The in-process writer path: after ``db.save()`` bumped the
        generation durably, publishing here makes it the generation new
        requests pin.  In-flight readers keep their old snapshot.
        """
        snapshot = Snapshot(db, db.db.generation)
        with self._lock:
            self._current = snapshot
        return snapshot

    def reload_if_changed(self) -> bool:
        """Reload when the on-disk catalog advertises a newer generation.

        The external-writer path: another process published via the
        atomic catalog replace; one cheap ``_catalog.json`` read detects
        it.  Returns True when a new snapshot was published.
        """
        if self.directory is None:
            return False
        current = self.current()
        on_disk = Database.read_generation(self.directory)
        if on_disk == current.generation:
            return False
        db = self._load()
        self.publish_db(db)
        return True

    # -- reading -----------------------------------------------------------

    def current(self) -> Snapshot:
        snapshot = self._current
        if snapshot is None:
            return self.open()
        return snapshot

    @contextmanager
    def pin(self) -> Iterator[Snapshot]:
        """Pin the current snapshot for the duration of one request.

        The returned snapshot's generation — and therefore its data —
        is stable for the whole block, regardless of concurrent
        publishes.
        """
        with self._lock:
            snapshot = self._current
        if snapshot is None:
            snapshot = self.open()
        snapshot._pin()
        try:
            yield snapshot
        finally:
            snapshot._unpin()
