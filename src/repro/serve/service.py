"""The query service: request handling behind admission and quotas.

:class:`QueryService` is the transport-independent core of the daemon —
:mod:`repro.serve.http` is a thin adapter over it, and the tests drive
it directly.  One request travels:

1. **Quota check** (:class:`~repro.serve.quotas.QuotaLedger`) — an
   exhausted tenant is refused *before* it can occupy a slot.
2. **Admission** (:class:`~repro.serve.admission.AdmissionController`)
   — beyond the bounded queue the request is shed immediately.
3. **Snapshot pin** — the request scans exactly one catalog generation,
   whatever writers publish meanwhile.
4. **Execution** under a per-request observability context (own tracer
   adopting the inbound ``traceparent``, shared registry/query log) and
   a per-request deadline wired into the engine's cooperative
   cancellation (:class:`~repro.obs.queries.QueryCancelled`).
5. **Charge** — the request's :class:`ResourceTracker` usage is folded
   into the tenant's ledger, cancelled and failed requests included
   (they consumed the CPU either way).

Failures stay typed all the way up so the HTTP layer can map them:
``BadRequest`` (400), ``CatalogError``/``SchemaError`` (404),
``QueryCancelled`` (408), ``AdmissionRejected`` (429/503),
``QuotaExceeded`` (403).  ``durable.crash_point`` seams
(``serve.request.received`` / ``admitted`` / ``executed``) let the
fault harness kill a request at each stage and prove the daemon and the
store both survive.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..engine import durable
from ..gis.envelope import Box
from ..obs.context import ObsContext, default_context
from ..obs.resources import ResourceTracker
from ..obs.timing import now
from ..sql.executor import Result
from . import wire
from .admission import AdmissionController
from .quotas import DEFAULT_TENANT, QuotaLedger, TenantBudget
from .sessions import SessionPool
from .snapshot import Snapshot, SnapshotManager


class BadRequest(ValueError):
    """The request payload is malformed (HTTP 400)."""


@dataclass
class ServiceConfig:
    """Tunables for one daemon instance (CLI flags map 1:1)."""

    #: Requests executing simultaneously.
    max_concurrency: int = 4
    #: Requests allowed to wait for a slot before shedding starts.
    queue_depth: int = 8
    #: Longest a queued request waits before it is shed.
    queue_wait_s: float = 30.0
    #: Backoff hint on 429/503 responses.
    retry_after_s: float = 1.0
    #: Deadline applied when a request names none.
    default_timeout_s: Optional[float] = None
    #: Server-side ceiling on any request's deadline.
    max_timeout_s: Optional[float] = 60.0
    #: How long SIGTERM waits for in-flight requests before giving up.
    drain_timeout_s: float = 10.0
    #: Hard cap on rows returned per response (spatial results are
    #: truncated to it; ``limit`` in the payload may only lower it).
    max_response_rows: int = 1_000_000
    #: Per-tenant budgets; tenants absent here get ``default_budget``.
    quotas: Dict[str, TenantBudget] = field(default_factory=dict)
    default_budget: Optional[TenantBudget] = None


@dataclass
class ServiceResponse:
    """One finished request: either a JSON payload or a binary body."""

    payload: Optional[Dict[str, Any]] = None
    body: Optional[bytes] = None
    content_type: str = "application/json; charset=utf-8"
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        if self.body is not None:
            return self.body
        return (json.dumps(self.payload, default=_json_default) + "\n").encode(
            "utf-8"
        )


def _json_default(value: Any) -> Any:
    """JSON fallback for numpy scalars riding in result rows."""
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(
        f"object of type {type(value).__name__} is not JSON serializable"
    )


class QueryService:
    """Transport-independent request handling (see module docstring)."""

    def __init__(
        self,
        snapshots: SnapshotManager,
        config: Optional[ServiceConfig] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.snapshots = snapshots
        self.config = config if config is not None else ServiceConfig()
        if obs is not None:
            self.obs = obs
        elif snapshots.obs is not None:
            self.obs = snapshots.obs
        else:
            self.obs = default_context()
        self.admission = AdmissionController(
            max_concurrency=self.config.max_concurrency,
            queue_depth=self.config.queue_depth,
            queue_wait_s=self.config.queue_wait_s,
            retry_after_s=self.config.retry_after_s,
            registry=self.obs.registry,
        )
        self.quotas = QuotaLedger(
            budgets=self.config.quotas,
            default_budget=self.config.default_budget,
        )
        self.sessions = SessionPool(max_idle=self.config.max_concurrency * 2)

    # -- the request path --------------------------------------------------

    def handle(
        self,
        endpoint: str,
        payload: Dict[str, Any],
        tenant: Optional[str] = None,
        traceparent: Optional[str] = None,
    ) -> ServiceResponse:
        """Run one request end to end (``endpoint``: ``query`` | ``sql``).

        Raises the typed errors listed in the module docstring; anything
        else escaping is a handler bug the transport maps to 500.
        """
        t0 = now()
        registry = self.obs.registry
        registry.counter("serve.requests").inc()
        tenant = tenant if tenant else DEFAULT_TENANT
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        durable.crash_point(
            "serve.request.received", endpoint=endpoint, tenant=tenant
        )
        self.quotas.check(tenant)
        with self.admission.admit():
            durable.crash_point("serve.request.admitted", endpoint=endpoint)
            timeout_s = self._resolve_timeout(payload)
            with self.snapshots.pin() as snapshot:
                context = snapshot.db.request_context(traceparent)
                tracker = ResourceTracker()
                try:
                    with context.activate(), tracker:
                        if endpoint == "query":
                            response = self._spatial(
                                snapshot, payload, timeout_s
                            )
                        elif endpoint == "sql":
                            response = self._sql(
                                snapshot, payload, timeout_s, context
                            )
                        else:
                            raise BadRequest(
                                f"unknown endpoint {endpoint!r} "
                                f"(want 'query' or 'sql')"
                            )
                finally:
                    # Cancelled and failed requests burned the CPU too;
                    # the ledger charges what actually happened.
                    self.quotas.charge(tenant, tracker.usage)
                durable.crash_point(
                    "serve.request.executed", endpoint=endpoint
                )
                outbound = context.traceparent()
                if outbound is not None:
                    response.headers.setdefault("traceparent", outbound)
        registry.histogram("serve.request_seconds").observe(now() - t0)
        return response

    def _resolve_timeout(self, payload: Dict[str, Any]) -> Optional[float]:
        raw = payload.get("timeout_s")
        if raw is None:
            timeout = self.config.default_timeout_s
        else:
            try:
                timeout = float(raw)
            except (TypeError, ValueError):
                raise BadRequest(
                    f"timeout_s must be a number, got {raw!r}"
                ) from None
            if timeout <= 0:
                raise BadRequest("timeout_s must be positive")
        ceiling = self.config.max_timeout_s
        if ceiling is not None:
            timeout = ceiling if timeout is None else min(timeout, ceiling)
        return timeout

    # -- endpoints ---------------------------------------------------------

    def _spatial(
        self,
        snapshot: Snapshot,
        payload: Dict[str, Any],
        timeout_s: Optional[float],
    ) -> ServiceResponse:
        table_name = payload.get("table")
        if not isinstance(table_name, str):
            raise BadRequest("spatial query needs a 'table' name")
        bbox = payload.get("bbox")
        if not isinstance(bbox, (list, tuple)) or len(bbox) != 4:
            raise BadRequest(
                "spatial query needs 'bbox': [xmin, ymin, xmax, ymax]"
            )
        try:
            geometry = Box(*(float(v) for v in bbox))
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad bbox: {exc}") from None
        predicate = str(payload.get("predicate", "contains"))
        distance = float(payload.get("distance", 0.0))
        z_range = payload.get("z_range")
        if z_range is not None:
            if not isinstance(z_range, (list, tuple)) or len(z_range) != 2:
                raise BadRequest("z_range must be [zmin, zmax]")
            z_range = (float(z_range[0]), float(z_range[1]))
        # CatalogError from an unknown table propagates (HTTP 404).
        table = snapshot.db.table(table_name)
        select = snapshot.db.select_for(table_name)
        result = select.query(
            geometry,
            predicate,
            distance,
            z_column=payload.get("z_column"),
            z_range=z_range,
            timeout_s=timeout_s,
        )
        limit = self._resolve_limit(payload)
        oids = result.oids[:limit]
        column_names = payload.get("columns", ["x", "y", "z"])
        if not isinstance(column_names, (list, tuple)):
            raise BadRequest("'columns' must be a list of column names")
        # SchemaError from an unknown column propagates (HTTP 404).
        arrays = {
            str(name): table.column(str(name)).values[oids]
            for name in column_names
        }
        meta: Dict[str, Any] = {
            "table": table_name,
            "generation": snapshot.generation,
            "n_results": len(result),
            "n_returned": int(oids.shape[0]),
            "truncated": len(result) > int(oids.shape[0]),
            "query_id": result.stats.query_id,
        }
        return self._respond(payload, meta, arrays)

    def _sql(
        self,
        snapshot: Snapshot,
        payload: Dict[str, Any],
        timeout_s: Optional[float],
        context: ObsContext,
    ) -> ServiceResponse:
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise BadRequest("sql request needs a non-empty 'sql' string")
        with self.sessions.session(snapshot, context) as session:
            result = session.execute(sql, timeout_s=timeout_s)
            meta: Dict[str, Any] = {
                "generation": snapshot.generation,
                "n_results": len(result.rows),
                "query_id": session.last_query_id,
                "profile": dict(session.last_profile),
            }
        limit = self._resolve_limit(payload)
        if len(result.rows) > limit:
            result = Result(columns=result.columns, rows=result.rows[:limit])
            meta["n_returned"] = limit
            meta["truncated"] = True
        else:
            meta["n_returned"] = len(result.rows)
            meta["truncated"] = False
        if self._wants_columnar(payload):
            arrays = {
                name: np.asarray(result.column(name))
                for name in result.columns
            }
            return self._respond(payload, meta, arrays)
        return ServiceResponse(
            payload={
                "meta": meta,
                "columns": result.columns,
                "rows": [list(row) for row in result.rows],
            }
        )

    # -- response shaping --------------------------------------------------

    def _resolve_limit(self, payload: Dict[str, Any]) -> int:
        raw = payload.get("limit")
        cap = self.config.max_response_rows
        if raw is None:
            return cap
        try:
            limit = int(raw)
        except (TypeError, ValueError):
            raise BadRequest(f"limit must be an integer, got {raw!r}") from None
        if limit < 0:
            raise BadRequest("limit must be >= 0")
        return min(limit, cap)

    @staticmethod
    def _wants_columnar(payload: Dict[str, Any]) -> bool:
        return str(payload.get("format", "json")).lower() == "columnar"

    def _respond(
        self,
        payload: Dict[str, Any],
        meta: Dict[str, Any],
        arrays: Dict[str, np.ndarray],
    ) -> ServiceResponse:
        if self._wants_columnar(payload):
            try:
                body = wire.encode_columns(arrays)
            except wire.WireFormatError as exc:
                raise BadRequest(str(exc)) from None
            return ServiceResponse(
                body=body,
                content_type=wire.CONTENT_TYPE,
                headers={
                    "X-Repro-Meta": json.dumps(meta, default=_json_default)
                },
            )
        names = list(arrays)
        columns = [arrays[name].tolist() for name in names]
        rows = [list(row) for row in zip(*columns)] if columns else []
        return ServiceResponse(
            payload={"meta": meta, "columns": names, "rows": rows}
        )

    # -- operations --------------------------------------------------------

    def health_report(self) -> Dict[str, Any]:
        """The ``/healthz`` contribution; raises when the store is bad.

        A table that failed to load (``health[name]["ok"] is False``)
        turns the probe into a 500 — an unhealthy daemon must fail its
        probe, not lie on it (same contract as ``repro-gis verify``).
        """
        snapshot = self.snapshots.current()
        bad = sorted(
            name
            for name, entry in snapshot.db.health.items()
            if not entry.get("ok", True)
        )
        if bad:
            raise RuntimeError(
                f"store unhealthy: tables failed to load: {', '.join(bad)}"
            )
        return {
            "generation": snapshot.generation,
            "pinned_readers": snapshot.pins,
            "tables": {
                name: len(snapshot.db.table(name))
                for name in snapshot.db.db.table_names
            },
            "admission": self.admission.snapshot(),
            "sessions": {
                "idle": self.sessions.idle,
                "built": self.sessions.built,
            },
            "tenants": self.quotas.snapshot(),
        }

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Stop admitting and wait for in-flight requests; see SIGTERM
        handling in :mod:`repro.serve.http`."""
        self.admission.begin_drain()
        budget = (
            timeout_s if timeout_s is not None else self.config.drain_timeout_s
        )
        return self.admission.wait_drained(budget)
