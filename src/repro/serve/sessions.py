"""A pool of SQL sessions keyed by snapshot generation.

Building a :class:`~repro.sql.executor.Session` is not free: every
registered point table snapshots its columns into a relation.  Under the
admission limit the daemon runs at most ``max_concurrency`` SQL requests
at once, so a small pool of reusable sessions per *generation*
amortises that setup across requests.

The generation key is what keeps pooling correct under concurrent
publishes: a session registers the tables of exactly one snapshot, so a
session built against generation N must never serve a request pinned to
generation N+1.  Checking in records the generation; checking out
matches it.  Sessions for retired generations are dropped on the floor
(GC'd with their snapshot) the next time the pool is trimmed.

Each checkout rebinds the session's observability context to the
request's own (trace adoption, per-request attribution) — the pooled
object carries no request state across uses beyond its relations.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

from ..obs.context import ObsContext
from ..sql.executor import Session
from .snapshot import Snapshot


class SessionPool:
    """Reusable SQL sessions, one sub-pool per catalog generation."""

    def __init__(self, max_idle: int = 8) -> None:
        self.max_idle = max_idle
        self._lock = threading.Lock()
        self._idle: List[Tuple[int, Session]] = []
        self._built = 0

    @property
    def built(self) -> int:
        """Sessions constructed so far (pool misses)."""
        with self._lock:
            return self._built

    @property
    def idle(self) -> int:
        with self._lock:
            return len(self._idle)

    def _build(self, snapshot: Snapshot, obs: ObsContext) -> Session:
        db = snapshot.db
        session = Session(manager=db.manager, obs=obs)
        for name in db.db.table_names:
            session.register_table(db.db.table(name))
        for name, columns in db.vector_relations.items():
            session.register_columns(name, columns)
        with self._lock:
            self._built += 1
        return session

    @contextmanager
    def session(
        self, snapshot: Snapshot, obs: ObsContext
    ) -> Iterator[Session]:
        """Check out a session bound to ``snapshot``'s generation.

        The session's ``obs`` is rebound to the request context for the
        duration; on the way out the session returns to the pool unless
        its generation has been retired or the pool is full.
        """
        generation = snapshot.generation
        found: Optional[Session] = None
        with self._lock:
            for index, (gen, candidate) in enumerate(self._idle):
                if gen == generation:
                    found = candidate
                    del self._idle[index]
                    break
            # Sessions from older generations pin dead snapshots in
            # memory; drop them whenever a newer generation shows up.
            self._idle = [
                (gen, s) for gen, s in self._idle if gen >= generation
            ]
        session = (
            found if found is not None else self._build(snapshot, obs)
        )
        session.obs = obs
        try:
            yield session
        finally:
            with self._lock:
                if len(self._idle) < self.max_idle:
                    self._idle.append((generation, session))
