"""Binary columnar wire format for query responses.

JSON rows are convenient but quadratically wasteful for point clouds:
every float render-trips through decimal text.  The service therefore
offers a second response encoding that ships columns as raw
little-endian arrays — the same idea as the engine's storage layer
(`repro.engine.storage`), shrunk to a self-describing network frame:

``RSRV | version:u16 | header_len:u32 | header JSON | payload``

The header names each column (``{"name", "dtype", "count"}``, dtypes in
numpy string form like ``<f8``); the payload is the concatenation of the
arrays' bytes in header order.  Object dtypes (strings, geometries)
cannot be framed — callers get :class:`WireFormatError` and should fall
back to JSON.

Clients negotiate via ``Accept: application/x-repro-columnar`` (or
``"format": "columnar"`` in the request body); :func:`decode_columns`
is the reference client-side decoder, used by the load generator in
``repro.bench.serve_load``.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List

import numpy as np

#: Response content type for the binary framing.
CONTENT_TYPE = "application/x-repro-columnar"

MAGIC = b"RSRV"
VERSION = 1

#: Frame prelude: magic, format version, header JSON byte length.
_PRELUDE = struct.Struct("<4sHI")

#: Hard cap on the declared header length — a corrupt or hostile frame
#: must not make the decoder allocate gigabytes for a "header".
_MAX_HEADER_BYTES = 16 * 1024 * 1024


class WireFormatError(ValueError):
    """A frame could not be encoded or decoded."""


def encodable(array: np.ndarray) -> bool:
    """Whether an array's dtype survives the raw-bytes round trip."""
    return array.dtype.kind in "iufb"


def encode_columns(columns: Dict[str, np.ndarray]) -> bytes:
    """Frame named arrays as one binary response body.

    Column order is preserved (insertion order of ``columns``).  Raises
    :class:`WireFormatError` for object/string dtypes — the caller
    should answer those requests in JSON instead.
    """
    header: List[Dict[str, object]] = []
    payload = bytearray()
    for name, array in columns.items():
        array = np.ascontiguousarray(array)
        if not encodable(array):
            raise WireFormatError(
                f"column {name!r} has dtype {array.dtype} which has no "
                f"raw binary framing; request JSON format instead"
            )
        if array.dtype.byteorder == ">":
            array = array.astype(array.dtype.newbyteorder("<"))
        header.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "count": int(array.shape[0]),
            }
        )
        payload += array.tobytes()
    header_bytes = json.dumps({"columns": header}).encode("utf-8")
    return (
        _PRELUDE.pack(MAGIC, VERSION, len(header_bytes))
        + header_bytes
        + bytes(payload)
    )


def decode_columns(data: bytes) -> Dict[str, np.ndarray]:
    """Decode a frame produced by :func:`encode_columns`.

    The reference client decoder: validates the magic, version, header
    and payload lengths, and returns the named arrays in frame order.
    """
    if len(data) < _PRELUDE.size:
        raise WireFormatError(
            f"truncated frame: {len(data)} bytes, prelude needs "
            f"{_PRELUDE.size}"
        )
    magic, version, header_len = _PRELUDE.unpack_from(data, 0)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r} (want {MAGIC!r})")
    if version != VERSION:
        raise WireFormatError(f"unsupported frame version {version}")
    if header_len > _MAX_HEADER_BYTES:
        raise WireFormatError(f"implausible header length {header_len}")
    header_end = _PRELUDE.size + header_len
    if len(data) < header_end:
        raise WireFormatError("truncated frame: header cut short")
    try:
        header = json.loads(data[_PRELUDE.size:header_end].decode("utf-8"))
        entries = header["columns"]
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise WireFormatError(f"corrupt frame header: {exc}") from None
    columns: Dict[str, np.ndarray] = {}
    offset = header_end
    for entry in entries:
        try:
            name = str(entry["name"])
            dtype = np.dtype(str(entry["dtype"]))
            count = int(entry["count"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireFormatError(f"corrupt column entry: {exc}") from None
        if count < 0:
            raise WireFormatError(f"negative count for column {name!r}")
        nbytes = dtype.itemsize * count
        if offset + nbytes > len(data):
            raise WireFormatError(
                f"truncated frame: column {name!r} wants {nbytes} bytes, "
                f"{len(data) - offset} remain"
            )
        columns[name] = np.frombuffer(
            data, dtype=dtype, count=count, offset=offset
        )
        offset += nbytes
    if offset != len(data):
        raise WireFormatError(
            f"{len(data) - offset} trailing bytes after last column"
        )
    return columns
