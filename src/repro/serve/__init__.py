"""The concurrent query service (ROADMAP item 1).

A long-lived daemon over the column store: HTTP query endpoints with
bounded admission, per-tenant quotas, per-request deadlines, snapshot
isolation across catalog generations, and graceful drain on SIGTERM.
See ``docs/service.md`` for the operator's view.

Layering (each importable and testable without the ones above it)::

    wire        binary columnar response framing
    admission   bounded concurrency + bounded queue + immediate shed
    quotas      per-tenant CPU/rows budgets over ResourceTracker
    snapshot    readers pin a catalog generation; writers publish
    sessions    pooled SQL sessions keyed by generation
    service     the transport-independent request path
    http        QueryDaemon: TelemetryServer + POST /v1/query, /v1/sql
"""

from .admission import AdmissionController, AdmissionRejected
from .http import DEFAULT_SERVE_PORT, QueryDaemon, ServeHandler
from .quotas import (
    DEFAULT_TENANT,
    QuotaExceeded,
    QuotaLedger,
    TenantBudget,
    parse_quota_spec,
)
from .service import BadRequest, QueryService, ServiceConfig, ServiceResponse
from .sessions import SessionPool
from .snapshot import Snapshot, SnapshotManager
from .wire import CONTENT_TYPE, WireFormatError, decode_columns, encode_columns

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "BadRequest",
    "CONTENT_TYPE",
    "DEFAULT_SERVE_PORT",
    "DEFAULT_TENANT",
    "QueryDaemon",
    "QueryService",
    "QuotaExceeded",
    "QuotaLedger",
    "ServeHandler",
    "ServiceConfig",
    "ServiceResponse",
    "SessionPool",
    "Snapshot",
    "SnapshotManager",
    "TenantBudget",
    "WireFormatError",
    "decode_columns",
    "encode_columns",
    "parse_quota_spec",
]
