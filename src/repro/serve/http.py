"""HTTP front end: the query daemon over the telemetry server stack.

:class:`QueryDaemon` subclasses :class:`~repro.obs.server.TelemetryServer`
— same threaded stdlib server, same daemon thread, same ``/metrics`` /
``/healthz`` / ``/debug/*`` routes — and plugs in a handler that adds
the query endpoints:

``POST /v1/query``
    Spatial selection: ``{"table", "bbox": [xmin, ymin, xmax, ymax],
    "predicate", "distance", "z_range", "columns", "limit",
    "timeout_s", "format"}``.
``POST /v1/sql``
    SQL: ``{"sql", "limit", "timeout_s", "format"}``.
``GET /debug/serve``
    Admission, session-pool and per-tenant quota state as JSON.

Status mapping (the contract ``docs/service.md`` documents):

====  ==============================================================
400   malformed payload / body (:class:`~repro.serve.service.BadRequest`)
403   tenant budget exhausted (body = the budget report)
404   unknown table or column
408   cooperative deadline fired (body carries ``query_id``/``elapsed_s``)
413   request body over the size cap
429   admission shed (``Retry-After`` header set)
500   handler bug (the daemon itself stays up)
503   draining for shutdown (``Retry-After`` set)
====  ==============================================================

Graceful shutdown: ``install_signal_handlers()`` chains SIGTERM — the
daemon stops admitting (new requests see 503), waits up to the drain
budget for in-flight queries, stops the listener, then invokes the
*previous* handler, which is the flight recorder's hook when installed
(black-box dump, then the default SIGTERM exit).  A handler thread
crash is answered with 500 and never takes the process down; an
:class:`~repro.engine.durable.InjectedCrash` from the fault harness
stays fatal to its thread (crash transparency), which is exactly the
"SIGKILL mid-request" story the recovery tests exercise.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from typing import Any, Dict, Optional, Tuple, Union

from ..engine.catalog import CatalogError
from ..engine.table import SchemaError
from ..obs.queries import QueryCancelled
from ..sql.executor import SqlExecutionError
from ..sql.lexer import SqlSyntaxError
from ..obs.server import HealthCallback, TelemetryHandler, TelemetryServer
from .admission import AdmissionRejected
from .quotas import QuotaExceeded
from .service import BadRequest, QueryService, ServiceResponse

#: Largest accepted request body; anything bigger is answered 413.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Default daemon port (distinct from the metrics exporter's 9464).
DEFAULT_SERVE_PORT = 8472


class ServeHandler(TelemetryHandler):
    """Telemetry routes plus the query endpoints."""

    known_routes = (
        TelemetryHandler.known_routes
        + " /debug/serve POST:/v1/query POST:/v1/sql"
    )

    @property
    def daemon(self) -> "QueryDaemon":
        owner = self.owner
        assert isinstance(owner, QueryDaemon)
        return owner

    # -- GET ---------------------------------------------------------------

    def route_get(self, route: str, query: str) -> None:
        if route == "/debug/serve":
            service = self.daemon.service
            body = json.dumps(
                {
                    "admission": service.admission.snapshot(),
                    "sessions": {
                        "idle": service.sessions.idle,
                        "built": service.sessions.built,
                    },
                    "tenants": service.quotas.snapshot(),
                    "generation": service.snapshots.current().generation,
                }
            ) + "\n"
            self._respond(200, "application/json; charset=utf-8", body)
        else:
            super().route_get(route, query)

    # -- POST --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server's naming
        self.owner.registry.counter("obs.http_requests").inc()
        route = self.path.rstrip("/")
        endpoint = {"/v1/query": "query", "/v1/sql": "sql"}.get(route)
        try:
            if endpoint is None:
                self._respond(
                    404,
                    "text/plain; charset=utf-8",
                    f"not found; routes: {self.known_routes}\n",
                )
                return
            status, response = self._handle_post(endpoint)
            self._send_service_response(status, response)
        except (BrokenPipeError, ConnectionResetError, TimeoutError):
            # The client went away (slow reader, mid-response
            # disconnect).  Its problem, not the daemon's: count it and
            # let this handler thread end quietly.
            self.owner.registry.counter("serve.client_disconnects").inc()

    def _handle_post(
        self, endpoint: str
    ) -> Tuple[int, Union[ServiceResponse, Dict[str, Any]]]:
        """Run one request; returns (status, response-or-error-payload)."""
        service = self.daemon.service
        try:
            payload = self._read_json_body()
            response = service.handle(
                endpoint,
                payload,
                tenant=self._tenant(payload),
                traceparent=self.headers.get("traceparent"),
            )
            return 200, response
        except BadRequest as exc:
            return 400, {"error": "bad_request", "message": str(exc)}
        except (SqlSyntaxError, SqlExecutionError) as exc:
            return 400, {"error": "sql_error", "message": str(exc)}
        except _BodyTooLarge as exc:
            return 413, {"error": "body_too_large", "message": str(exc)}
        except QuotaExceeded as exc:
            return 403, {
                "error": "quota_exceeded",
                "message": str(exc),
                "report": exc.report,
            }
        except (CatalogError, SchemaError) as exc:
            # KeyError subclasses repr-quote their message; unwrap it.
            message = exc.args[0] if exc.args else str(exc)
            return 404, {"error": "not_found", "message": str(message)}
        except QueryCancelled as exc:
            return 408, {
                "error": "cancelled",
                "message": str(exc),
                "query_id": exc.query_id,
                "timeout_s": exc.timeout_s,
                "elapsed_s": exc.elapsed_s,
            }
        except AdmissionRejected as exc:
            status = 503 if exc.reason == "draining" else 429
            return status, {
                "error": "rejected",
                "reason": exc.reason,
                "message": str(exc),
                "retry_after_s": exc.retry_after_s,
                "_retry_after": exc.retry_after_s,
            }
        except Exception as exc:
            # A handler bug must never take the daemon down: answer 500
            # and keep serving.  InjectedCrash is a BaseException and
            # deliberately NOT caught here — crash transparency.
            self.owner.registry.counter("serve.errors").inc()
            return 500, {
                "error": "internal",
                "type": type(exc).__name__,
                "message": str(exc),
            }

    def _send_service_response(
        self, status: int, response: Union[ServiceResponse, Dict[str, Any]]
    ) -> None:
        if isinstance(response, ServiceResponse):
            data = response.encode()
            content_type = response.content_type
            headers = dict(response.headers)
        else:
            retry_after = response.pop("_retry_after", None)
            data = (json.dumps(response) + "\n").encode("utf-8")
            content_type = "application/json; charset=utf-8"
            headers = {}
            if retry_after is not None:
                headers["Retry-After"] = str(max(1, int(round(retry_after))))
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _read_json_body(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise BadRequest("bad Content-Length header") from None
        if length > MAX_BODY_BYTES:
            raise _BodyTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES} byte cap"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise BadRequest("empty request body; send a JSON object")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    def _tenant(self, payload: Dict[str, Any]) -> Optional[str]:
        header = self.headers.get("X-Tenant")
        if header:
            return str(header)
        tenant = payload.get("tenant")
        return str(tenant) if tenant is not None else None


class _BodyTooLarge(ValueError):
    """Request body over :data:`MAX_BODY_BYTES` (HTTP 413)."""


class QueryDaemon(TelemetryServer):
    """The long-lived query service process (see module docstring).

    Parameters
    ----------
    service:
        The :class:`QueryService` to expose.
    host, port:
        Bind address; ``port=None`` uses :data:`DEFAULT_SERVE_PORT`,
        ``0`` asks the OS.
    health:
        Override for the ``/healthz`` contribution; defaults to the
        service's :meth:`~QueryService.health_report`, which *raises*
        (turning the probe into a 500) when the store is unhealthy.
    reload_poll_s:
        When set, :meth:`wait` polls the on-disk catalog generation at
        this interval and republishes the snapshot after an external
        writer's publish.
    """

    handler_class = ServeHandler

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        health: Optional[HealthCallback] = None,
        reload_poll_s: Optional[float] = None,
    ) -> None:
        super().__init__(
            host=host,
            port=port if port is not None else DEFAULT_SERVE_PORT,
            registry=service.obs.registry,
            tracer=service.obs.tracer,
            queries=service.obs.queries,
            health=health if health is not None else service.health_report,
        )
        self.service = service
        self.reload_poll_s = reload_poll_s
        self._shutdown = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    def drain_and_stop(self, timeout_s: Optional[float] = None) -> bool:
        """Stop admitting, wait for in-flight work, stop the listener.

        Returns False when the drain budget expired with requests still
        running (they are abandoned to their deadlines).
        """
        drained = self.service.drain(timeout_s)
        self.stop()
        self._shutdown.set()
        self.flush_heat(force=True)
        return drained

    def flush_heat(self, force: bool = False) -> None:
        """Persist the heat map's current window, when heat is enabled.

        Failures are swallowed (``Exception`` only — injected crashes
        pass through): a full disk must not take the drain path down.
        """
        from ..obs.heat import maybe_heat

        heat = maybe_heat()
        if heat is None:
            return
        try:
            if force:
                heat.flush()
            else:
                heat.maybe_flush()
        except Exception:
            pass

    def install_signal_handlers(self) -> None:
        """Chain SIGTERM: drain first, then the previous handler.

        The previous handler is the flight recorder's when the CLI
        installed it — so the shutdown order is: shed new work (503),
        drain in-flight queries, close the listener, flight-record the
        shutdown, exit via the default SIGTERM action.  Main thread
        only (signal module restriction).
        """
        previous = signal.getsignal(signal.SIGTERM)

        def _on_sigterm(signum: int, frame: Any) -> None:
            self.drain_and_stop()
            if callable(previous):
                previous(signum, frame)
            else:
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                os.kill(os.getpid(), signal.SIGTERM)

        signal.signal(signal.SIGTERM, _on_sigterm)

    def wait(self) -> None:
        """Block the main thread until shutdown, polling for publishes.

        The poll tick doubles as the heat journal's flush heartbeat
        (:meth:`flush_heat` is interval-gated, so most ticks no-op).
        """
        poll = self.reload_poll_s
        while not self._shutdown.is_set():
            if self._shutdown.wait(timeout=poll if poll else 1.0):
                break
            if poll:
                self.service.snapshots.reload_if_changed()
            self.flush_heat()
