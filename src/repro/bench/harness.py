"""Experiment harness: timing, table formatting, result collection.

The benchmarks under ``benchmarks/`` use this module to time the systems
and to print paper-style result tables (one per experiment in DESIGN.md's
index).  Tables also land in ``bench_results/*.txt`` when the
``REPRO_BENCH_DIR`` environment variable is set, which is how
EXPERIMENTS.md's numbers were produced.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Sequence


@dataclass
class Timing:
    """One timed measurement."""

    seconds: float

    @property
    def millis(self) -> float:
        return self.seconds * 1e3


@contextmanager
def timer() -> Iterator[Timing]:
    """Context manager measuring wall-clock seconds::

        with timer() as t:
            work()
        print(t.seconds)
    """
    timing = Timing(seconds=0.0)
    start = time.perf_counter()
    try:
        yield timing
    finally:
        timing.seconds = time.perf_counter() - start


def best_of(fn, repeats: int = 3) -> float:
    """Best wall-clock seconds over ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width ASCII table (the harness's output format)."""
    cells = [[str(h) for h in headers]] + [
        [_fmt_cell(v) for v in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append(
            "  ".join(value.rjust(widths[i]) for i, value in enumerate(row))
        )
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Report:
    """A named experiment report: title, table, free-form notes."""

    experiment: str
    title: str
    headers: Sequence[str] = ()
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        parts = [f"== {self.experiment}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        parts.extend(self.notes)
        return "\n".join(parts)

    def emit(self) -> str:
        """Print the report; persist it when REPRO_BENCH_DIR is set."""
        text = self.render()
        print("\n" + text + "\n")
        out_dir = os.environ.get("REPRO_BENCH_DIR")
        if out_dir:
            directory = Path(out_dir)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / f"{self.experiment}.txt").write_text(text + "\n")
        return text


def speedup(baseline_seconds: float, other_seconds: float) -> float:
    """How many times faster than the baseline (inf-safe)."""
    if other_seconds <= 0:
        return float("inf")
    return baseline_seconds / other_seconds


def human_seconds(seconds: float) -> str:
    """Render projected durations ('18.3 hours', '6.2 days').

    Non-finite inputs — e.g. ``LoadStats.projected_seconds`` when the
    measured run took 0 seconds — render as "n/a" instead of "inf".
    """
    if seconds != seconds or seconds in (float("inf"), float("-inf")):
        return "n/a"
    if seconds < 120:
        return f"{seconds:.1f} s"
    if seconds < 7200:
        return f"{seconds / 60:.1f} min"
    if seconds < 2 * 86400:
        return f"{seconds / 3600:.1f} hours"
    return f"{seconds / 86400:.1f} days"
