"""Load benchmark for the query daemon: latency vs concurrency + shed rate.

Produces ``BENCH_serve.json`` — throughput and p50/p95/p99 request
latency at each concurrency level, then a deliberate 2x-overload phase
measuring how much the admission controller sheds (and that everything
it accepted actually completed).  Two modes::

    python -m repro.bench.serve_load                       # self-contained
    python -m repro.bench.serve_load --url http://...      # external daemon

Self-contained mode builds a synthetic store in memory and starts a
:class:`~repro.serve.http.QueryDaemon` on an ephemeral port; ``--url``
mode drives a daemon someone else started (the CI smoke job runs
``repro-gis serve`` and points this tool at it).  All driving happens
over real HTTP either way — the numbers include the wire.

Requests are spatial viewport queries with per-worker deterministic
pseudo-random bboxes (the paper's Scenario 1 shape), answered in the
binary columnar format so the measurement covers the full response path.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .parallel_scaling import machine_info, write_report

#: Concurrency levels measured by default.
DEFAULT_LEVELS = (1, 2, 4, 8)

#: Requests issued per worker at each level.
DEFAULT_REQUESTS_PER_WORKER = 25

#: Extent of the embedded synthetic store.  ``--url`` mode must name the
#: served table's real extent (``--extent``) or every viewport misses and
#: the zone maps answer everything without ever loading a scan slot.
EXTENT = (0.0, 0.0, 1000.0, 1000.0)


def _viewport(
    rng: np.random.Generator, extent: Sequence[float]
) -> List[float]:
    """A random viewport-sized bbox covering ~1-4% of ``extent``."""
    width = float(rng.uniform(0.05, 0.2)) * (extent[2] - extent[0])
    height = float(rng.uniform(0.05, 0.2)) * (extent[3] - extent[1])
    x0 = float(rng.uniform(extent[0], extent[2] - width))
    y0 = float(rng.uniform(extent[1], extent[3] - height))
    return [x0, y0, x0 + width, y0 + height]


def _post(
    url: str, payload: Dict[str, Any], timeout: float = 30.0
) -> Tuple[int, Dict[str, str], bytes]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1, max(0, int(round(q * (len(sorted_values) - 1))))
    )
    return float(sorted_values[rank])


def _drive(
    base_url: str,
    table: str,
    concurrency: int,
    requests_per_worker: int,
    seed: int,
    extent: Sequence[float],
) -> Dict[str, Any]:
    """Issue requests from ``concurrency`` workers; collect latencies."""
    latencies: List[float] = []
    statuses: List[int] = []
    lock = threading.Lock()

    def worker(index: int) -> None:
        rng = np.random.default_rng(seed + index)
        for _ in range(requests_per_worker):
            payload = {
                "table": table,
                "bbox": _viewport(rng, extent),
                "format": "columnar",
                "limit": 10_000,
            }
            t0 = time.perf_counter()
            try:
                status, _, _ = _post(base_url + "/v1/query", payload)
            except OSError:
                status = -1
            elapsed = time.perf_counter() - t0
            with lock:
                latencies.append(elapsed)
                statuses.append(status)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(concurrency)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    ok = sum(1 for s in statuses if s == 200)
    shed = sum(1 for s in statuses if s in (429, 503))
    errors = len(statuses) - ok - shed
    ordered = sorted(lat for lat, s in zip(latencies, statuses) if s == 200)
    return {
        "concurrency": concurrency,
        "requests": len(statuses),
        "completed": ok,
        "shed": shed,
        "errors": errors,
        "wall_seconds": wall,
        "throughput_rps": (ok / wall) if wall > 0 else 0.0,
        "p50_s": _percentile(ordered, 0.50),
        "p95_s": _percentile(ordered, 0.95),
        "p99_s": _percentile(ordered, 0.99),
    }


def _overload(
    base_url: str,
    table: str,
    admission_limit: int,
    requests_per_worker: int,
    seed: int,
    extent: Sequence[float],
) -> Dict[str, Any]:
    """Drive at 2x the admission limit; measure the shed rate.

    The contract under overload: shed requests answer 429 with a
    ``Retry-After`` hint, accepted requests complete — nothing hangs and
    nothing queues unboundedly.
    """
    concurrency = max(2, admission_limit * 2)
    shed_latencies: List[float] = []
    retry_after_present: List[bool] = []
    lock = threading.Lock()
    level = {"concurrency": concurrency}

    def worker(index: int) -> None:
        for _ in range(requests_per_worker):
            # Full-extent scans: heavy enough that workers genuinely
            # overlap, so the offered load really is 2x the limit
            # (light viewports finish before the next arrival and
            # never saturate the slots).
            payload = {
                "table": table,
                "bbox": list(extent),
                "format": "columnar",
                "limit": 50_000,
            }
            t0 = time.perf_counter()
            try:
                status, headers, _ = _post(base_url + "/v1/query", payload)
            except OSError:
                status, headers = -1, {}
            elapsed = time.perf_counter() - t0
            with lock:
                level.setdefault("statuses", []).append(status)
                if status == 429:
                    shed_latencies.append(elapsed)
                    retry_after_present.append("Retry-After" in headers)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(concurrency)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    statuses = level.get("statuses", [])
    ok = sum(1 for s in statuses if s == 200)
    shed = sum(1 for s in statuses if s == 429)
    ordered_shed = sorted(shed_latencies)
    return {
        "target_concurrency": concurrency,
        "admission_limit": admission_limit,
        "requests": len(statuses),
        "completed": ok,
        "shed": shed,
        "errors": len(statuses) - ok - shed,
        "shed_rate": (shed / len(statuses)) if statuses else 0.0,
        "wall_seconds": wall,
        "shed_p95_s": _percentile(ordered_shed, 0.95),
        "retry_after_on_all_sheds": (
            all(retry_after_present) if retry_after_present else True
        ),
    }


def _make_daemon(points: int, max_concurrency: int, queue_depth: int):
    """A self-contained daemon over a synthetic in-memory store."""
    from ..api import PointCloudDB
    from ..obs.context import ObsContext
    from ..serve.http import QueryDaemon
    from ..serve.service import QueryService, ServiceConfig
    from ..serve.snapshot import SnapshotManager

    context = ObsContext.fresh(enabled=False)
    db = PointCloudDB(obs=context, threads=2)
    db.create_pointcloud("pts")
    rng = np.random.default_rng(17)
    db.load_points(
        "pts",
        {
            "x": rng.uniform(EXTENT[0], EXTENT[2], points),
            "y": rng.uniform(EXTENT[1], EXTENT[3], points),
            "z": rng.uniform(0, 50, points),
        },
    )
    manager = SnapshotManager(loader=lambda: db, obs=context)
    service = QueryService(
        manager,
        config=ServiceConfig(
            max_concurrency=max_concurrency, queue_depth=queue_depth
        ),
        obs=context,
    )
    return QueryDaemon(service, port=0).start()


def run(
    url: Optional[str] = None,
    table: str = "pts",
    points: int = 400_000,
    levels: Sequence[int] = DEFAULT_LEVELS,
    requests_per_worker: int = DEFAULT_REQUESTS_PER_WORKER,
    max_concurrency: int = 4,
    queue_depth: int = 4,
    admission_limit: Optional[int] = None,
    seed: int = 41,
    extent: Sequence[float] = EXTENT,
) -> Dict[str, Any]:
    """Run the full experiment; returns the report payload."""
    daemon = None
    if url is None:
        daemon = _make_daemon(points, max_concurrency, queue_depth)
        url = daemon.url
        extent = EXTENT
    if admission_limit is None:
        admission_limit = max_concurrency + queue_depth
    try:
        # One warmup request (imprint builds, session setup).
        _post(
            url + "/v1/query",
            {"table": table, "bbox": list(extent), "limit": 1},
        )
        measured = [
            _drive(url, table, level, requests_per_worker, seed, extent)
            for level in levels
        ]
        overload = _overload(
            url, table, admission_limit, requests_per_worker, seed, extent
        )
    finally:
        if daemon is not None:
            daemon.drain_and_stop()
    return {
        "experiment": "serve_load",
        "machine": machine_info(),
        "config": {
            "points": points if daemon is not None else None,
            "url_mode": daemon is None,
            "levels": list(levels),
            "requests_per_worker": requests_per_worker,
            "max_concurrency": max_concurrency,
            "queue_depth": queue_depth,
            "admission_limit": admission_limit,
            "seed": seed,
            "extent": list(extent),
        },
        "levels": measured,
        "overload": overload,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.serve_load",
        description="load-test the query daemon; write BENCH_serve.json",
    )
    parser.add_argument(
        "--url",
        default=None,
        help="drive an already-running daemon instead of an embedded one",
    )
    parser.add_argument("--table", default="pts")
    parser.add_argument(
        "--points",
        type=int,
        default=400_000,
        help="synthetic store size (embedded mode)",
    )
    parser.add_argument(
        "--levels",
        default=",".join(str(level) for level in DEFAULT_LEVELS),
        help="comma-separated concurrency levels",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=DEFAULT_REQUESTS_PER_WORKER,
        help="requests per worker per level",
    )
    parser.add_argument("--max-concurrency", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=4)
    parser.add_argument(
        "--admission-limit",
        type=int,
        default=None,
        help="slots+queue of the target daemon (--url mode; the overload "
        "phase drives at 2x this)",
    )
    parser.add_argument(
        "--extent",
        default=",".join(str(edge) for edge in EXTENT),
        metavar="X0,Y0,X1,Y1",
        help="spatial extent of the served table (--url mode; viewports "
        "and overload scans are drawn inside it)",
    )
    parser.add_argument("--seed", type=int, default=41)
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    levels = [int(part) for part in args.levels.split(",") if part.strip()]
    extent = [float(part) for part in args.extent.split(",")]
    if len(extent) != 4:
        parser.error("--extent needs four comma-separated numbers")
    report = run(
        url=args.url,
        table=args.table,
        points=args.points,
        levels=levels,
        requests_per_worker=args.requests,
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        admission_limit=args.admission_limit,
        seed=args.seed,
        extent=extent,
    )
    for level in report["levels"]:
        print(
            f"c={level['concurrency']:<3} "
            f"{level['throughput_rps']:8.1f} req/s  "
            f"p50={level['p50_s'] * 1e3:7.2f}ms "
            f"p95={level['p95_s'] * 1e3:7.2f}ms "
            f"p99={level['p99_s'] * 1e3:7.2f}ms  "
            f"({level['completed']}/{level['requests']} ok, "
            f"{level['shed']} shed)"
        )
    overload = report["overload"]
    print(
        f"overload c={overload['target_concurrency']}: "
        f"{overload['shed_rate'] * 100:.1f}% shed "
        f"({overload['shed']}/{overload['requests']}), "
        f"{overload['completed']} completed, "
        f"shed p95 {overload['shed_p95_s'] * 1e3:.2f}ms, "
        f"Retry-After on all sheds: {overload['retry_after_on_all_sheds']}"
    )
    path = write_report(Path(args.out), report)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
