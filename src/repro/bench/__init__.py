"""Benchmark harness: timers, report tables, and the standard workloads."""

from .harness import Report, best_of, format_table, human_seconds, speedup, timer
from .workloads import (
    QuerySpec,
    circle_polygon,
    irregular_polygon,
    selectivity_sweep,
    standard_queries,
)

__all__ = [
    "QuerySpec",
    "Report",
    "best_of",
    "circle_polygon",
    "format_table",
    "human_seconds",
    "irregular_polygon",
    "selectivity_sweep",
    "speedup",
    "standard_queries",
    "timer",
]
