"""Benchmark harness: timers, report tables, and the standard workloads."""

from .harness import Report, best_of, format_table, human_seconds, speedup, timer
from .parallel_scaling import machine_info, sweep, write_report
from .workloads import (
    QuerySpec,
    circle_polygon,
    irregular_polygon,
    selectivity_sweep,
    standard_queries,
)

__all__ = [
    "QuerySpec",
    "Report",
    "best_of",
    "circle_polygon",
    "format_table",
    "human_seconds",
    "irregular_polygon",
    "machine_info",
    "selectivity_sweep",
    "sweep",
    "write_report",
    "speedup",
    "standard_queries",
    "timer",
]
