"""Thread-scaling measurement for the morsel-driven query path.

Runs the same query workload at several thread counts and reports
wall-clock seconds plus the speedup relative to ``threads=1``.  The
report deliberately embeds the machine's core count: a scaling number
without it is meaningless (on a 1-core container every speedup is ~1x
by construction, and the JSON should say so rather than hide it).
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..engine.parallel import hardware_threads
from ..obs.metrics import get_registry
from ..obs.resources import ResourceTracker
from .harness import best_of

DEFAULT_THREADS = (1, 2, 4, 8)


def machine_info() -> Dict[str, object]:
    """The context every scaling number needs to be interpreted."""
    return {
        "hardware_threads": hardware_threads(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
    }


def metrics_snapshot() -> Dict[str, object]:
    """The metrics registry's current state, for embedding in reports.

    Gives bench JSON the work counters behind the timings — segments
    skipped vs probed, imprint builds, latency histogram percentiles —
    so a regression diff can say *why* a number moved, not just that it
    did.
    """
    return get_registry().snapshot()


def sweep(
    run_query: Callable[[int], object],
    thread_counts: Sequence[int] = DEFAULT_THREADS,
    repeats: int = 3,
) -> List[Dict[str, object]]:
    """Time ``run_query(threads)`` at each thread count (best of
    ``repeats``) and annotate each row with the speedup vs the first
    (serial) entry.

    Each row also embeds the cell's resource attribution (CPU seconds
    incl. morsel workers, rows/bytes touched — summed over the repeats),
    so a scaling report shows not just that 4 threads were 3x faster but
    that they burned the same CPU doing it.
    """
    rows: List[Dict[str, object]] = []
    for threads in thread_counts:
        tracker = ResourceTracker()
        with tracker:
            seconds = best_of(lambda: run_query(threads), repeats)
        rows.append(
            {
                "threads": threads,
                "seconds": seconds,
                "resources": tracker.usage.to_dict(),
            }
        )
    base = rows[0]["seconds"]
    for row in rows:
        row["speedup"] = (base / row["seconds"]) if row["seconds"] > 0 else 0.0
    return rows


def write_report(path, payload: Dict[str, object]) -> Path:
    """Write a machine-readable scaling report (JSON, one object)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
