"""Compressed-execution measurement: packed scans vs. plain scans.

The compression bench (``benchmarks/test_bench_compression.py``) builds
the paper's LAS-style integer coordinate columns, packs them into the
per-segment execution format (:mod:`repro.engine.compressed`) and runs
the E-series selectivity sweep twice per query — once on the packed
segments, once on the plain numpy arrays — recording wall-clock seconds
*and* the bytes each path actually moved (via the resource-attribution
tracker, the same accounting ``EXPLAIN ANALYZE`` reports).

The resulting ``BENCH_compression.json`` is the artifact behind the
"evaluate without decompressing" claim: packed range scans must touch at
most half the bytes of the plain scan (minimal-width offsets plus
zone-map pruning) at no worse throughput.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from ..core.sfc import morton_encode, quantize
from ..engine.select import range_select, theta_select
from ..engine.table import Table
from ..gis.envelope import Box
from ..obs.resources import ResourceTracker
from .harness import best_of

#: LAS-style coordinate resolution: centimetres, as AHN2 ships.
DEFAULT_SCALE = 0.01

#: Selectivity fractions for the E-series range sweep.
DEFAULT_FRACTIONS = (0.001, 0.01, 0.1, 0.5)


def las_integer_columns(
    cloud: Dict[str, NDArray[Any]], extent: Box, scale: float = DEFAULT_SCALE
) -> Dict[str, NDArray[Any]]:
    """The cloud's columns with x/y/z as LAS integer coordinates.

    LAS files store coordinates as ``int32`` counts of a scale unit from
    an offset; the float values the generator produces are the *decoded*
    form.  Re-quantising reproduces the integer columns the paper's
    loader keeps (and that FOR + bit-packing is designed for).
    """
    out: Dict[str, NDArray[Any]] = {}
    offsets = {"x": extent.xmin, "y": extent.ymin, "z": 0.0}
    for name, values in cloud.items():
        if name in offsets:
            out[name] = np.round(
                (values - offsets[name]) / scale
            ).astype(np.int64)
        else:
            out[name] = values
    return out


def morton_order(
    columns: Dict[str, NDArray[Any]], extent: Box, scale: float = DEFAULT_SCALE
) -> Dict[str, NDArray[Any]]:
    """All columns reordered along the Z-order curve of (x, y).

    The paper's stores sort point blocks on a space-filling curve before
    indexing (``BlockStore(sort="morton")``, ``lassort``); zone maps and
    imprints alike depend on that spatial clustering.  The bench applies
    the same ordering so packed segments carry tight zones.
    """
    span_x = (extent.width / scale) or 1.0
    span_y = (extent.height / scale) or 1.0
    codes = morton_encode(
        quantize(columns["x"], 0.0, span_x), quantize(columns["y"], 0.0, span_y)
    )
    order = np.argsort(codes, kind="stable")
    return {name: arr[order] for name, arr in columns.items()}


def build_table(
    columns: Dict[str, NDArray[Any]], segment_rows: Optional[int] = None
) -> Table:
    """A packed table over ``columns`` (compression mirrors built)."""
    table = Table(
        "bench", [(name, arr.dtype) for name, arr in columns.items()]
    )
    table.append_columns(columns)
    table.compress(segment_rows=segment_rows)
    return table


def scan_specs(
    table: Table,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> List[Dict[str, Any]]:
    """The E-series scan workload: range sweeps on x and y plus one
    dictionary-coded equality probe on classification.

    Range bounds are centred quantiles of the actual column values, so a
    fraction maps to (approximately) that result selectivity whatever the
    coordinate distribution.
    """
    specs: List[Dict[str, Any]] = []
    for column in ("x", "y"):
        values = table.column(column).values
        for fraction in fractions:
            lo_q, hi_q = 0.5 - fraction / 2, 0.5 + fraction / 2
            lo, hi = np.quantile(values, [lo_q, hi_q])
            specs.append(
                {
                    "name": f"{column}_sel_{fraction:g}",
                    "kind": "range",
                    "column": column,
                    "lo": float(lo),
                    "hi": float(hi),
                }
            )
    if "classification" in table:
        cls = table.column("classification").values
        constant = int(np.bincount(cls).argmax())
        specs.append(
            {
                "name": "classification_eq",
                "kind": "theta",
                "column": "classification",
                "op": "==",
                "constant": constant,
            }
        )
    return specs


def _run_spec(table: Table, spec: Dict[str, Any]) -> NDArray[Any]:
    column = table.column(spec["column"])
    if spec["kind"] == "range":
        return range_select(column, spec["lo"], spec["hi"])
    return theta_select(column, spec["op"], spec["constant"])


def _measure(
    table: Table, spec: Dict[str, Any], repeats: int
) -> Tuple[Dict[str, object], int]:
    """Best-of seconds plus one attributed run's rows/bytes touched."""
    tracker = ResourceTracker()
    with tracker:
        result = _run_spec(table, spec)
    seconds = best_of(lambda: _run_spec(table, spec), repeats)
    n = len(table)
    return (
        {
            "seconds": seconds,
            "bytes_touched": int(tracker.usage.bytes_touched),
            "rows_touched": int(tracker.usage.rows_touched),
            "throughput_mpts": (n / seconds / 1e6) if seconds > 0 else 0.0,
        },
        int(result.shape[0]),
    )


def measure_query(
    table: Table, spec: Dict[str, Any], repeats: int = 3
) -> Dict[str, object]:
    """One workload query measured packed then plain.

    The plain leg drops the column's compression mirror for the duration
    so both paths run through the same :mod:`repro.engine.select`
    operators; results are asserted identical.
    """
    column = table.column(spec["column"])
    packed_mirror = column.packed
    packed_leg, packed_rows = _measure(table, spec, repeats)
    column.drop_packed()
    try:
        plain_leg, plain_rows = _measure(table, spec, repeats)
    finally:
        if packed_mirror is not None:
            column.adopt_packed(packed_mirror)
    if packed_rows != plain_rows:
        raise AssertionError(
            f"{spec['name']}: packed returned {packed_rows} rows, "
            f"plain {plain_rows}"
        )
    packed_bytes = int(packed_leg["bytes_touched"])  # type: ignore[arg-type]
    plain_bytes = int(plain_leg["bytes_touched"])  # type: ignore[arg-type]
    return {
        "name": spec["name"],
        "column": spec["column"],
        "result_rows": packed_rows,
        "packed": packed_leg,
        "plain": plain_leg,
        "bytes_reduction": (
            plain_bytes / packed_bytes if packed_bytes > 0 else float("inf")
        ),
        "speedup": (
            float(plain_leg["seconds"]) / float(packed_leg["seconds"])  # type: ignore[arg-type]
            if float(packed_leg["seconds"]) > 0  # type: ignore[arg-type]
            else float("inf")
        ),
    }


def column_breakdown(table: Table) -> List[Dict[str, object]]:
    """Per-column scheme mix and bytes/point, packed vs plain."""
    n = max(1, len(table))
    rows: List[Dict[str, object]] = []
    for name, report in sorted(table.compression_report().items()):
        nbytes = int(report["nbytes"])  # type: ignore[arg-type]
        plain = int(report["plain_nbytes"])  # type: ignore[arg-type]
        rows.append(
            {
                "name": name,
                "schemes": report["schemes"],
                "segments": report["segments"],
                "nbytes": nbytes,
                "plain_nbytes": plain,
                "bytes_per_point": nbytes / n,
                "plain_bytes_per_point": plain / n,
            }
        )
    return rows
