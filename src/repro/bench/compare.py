"""Compare two bench reports and flag timing regressions.

CI runs the bench suite on every push; this tool diffs the fresh
``BENCH_*.json`` against a committed baseline so a slowdown shows up in
the run that caused it, not three PRs later::

    python -m repro.bench.compare baseline.json current.json
    python -m repro.bench.compare baseline.json current.json --soft

A (query, threads) cell regresses when its seconds exceed the baseline
by more than ``--threshold`` (default 15%).  The default exit code is 1
on any regression; ``--soft`` always exits 0 and emits GitHub Actions
``::warning::`` annotations instead, for machines (shared CI runners)
whose timings are too noisy to gate on.

``compressed_execution`` reports (``BENCH_compression.json``) are
detected by their ``experiment`` tag and compared on their own axes:
bytes/point per column (lower is better — a fatter encoding is a
regression even if it happens to scan fast on this machine) and packed
scan throughput per query (higher is better), both at the same
threshold.

``serve_load`` reports (``BENCH_serve.json``) compare the daemon's
throughput (higher is better) and p50/p95/p99 request latency (lower is
better) per concurrency level; the overload shed rate is printed for
context but never gates — how much a 2x burst sheds is a policy
outcome, not a performance regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Regression threshold as a fraction of the baseline time.
DEFAULT_THRESHOLD = 0.15


def load_timings(path) -> Dict[Tuple[str, int], float]:
    """``{(query_name, threads): seconds}`` from a bench report."""
    payload = json.loads(Path(path).read_text())
    timings: Dict[Tuple[str, int], float] = {}
    for query in payload.get("queries", []):
        for row in query.get("timings", []):
            timings[(query["name"], int(row["threads"]))] = float(row["seconds"])
    return timings


def load_metrics(path) -> Dict[str, set]:
    """Metric names per kind from a report's embedded metrics snapshot.

    Old reports (before snapshots were embedded) simply yield empty
    sets — a missing section is not an error.
    """
    payload = json.loads(Path(path).read_text())
    metrics = payload.get("metrics", {}) or {}
    return {
        kind: set(metrics.get(kind, {}) or {})
        for kind in ("counters", "gauges", "histograms")
    }


def diff_metrics(
    baseline: Dict[str, set], current: Dict[str, set]
) -> Dict[str, List[str]]:
    """``{"added": [...], "removed": [...]}`` of metric names between two
    snapshots.  Informational only: instrumentation legitimately grows
    and shrinks between commits, so this never gates the exit code."""
    base_names = set().union(*baseline.values()) if baseline else set()
    cur_names = set().union(*current.values()) if current else set()
    return {
        "added": sorted(cur_names - base_names),
        "removed": sorted(base_names - cur_names),
    }


def load_compression(path) -> Dict[Tuple[str, str], float]:
    """Comparable metrics from a ``compressed_execution`` report.

    Keys are ``("bytes_per_point", column)`` (lower is better) and
    ``("throughput_mpts", query)`` (higher is better); any other payload
    yields an empty dict.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("experiment") != "compressed_execution":
        return {}
    metrics: Dict[Tuple[str, str], float] = {}
    for column in payload.get("columns", []):
        metrics[("bytes_per_point", column["name"])] = float(
            column["bytes_per_point"]
        )
    for query in payload.get("queries", []):
        packed = query.get("packed", {}) or {}
        if "throughput_mpts" in packed:
            metrics[("throughput_mpts", query["name"])] = float(
                packed["throughput_mpts"]
            )
    return metrics


#: Per-metric regression direction: +1 when higher current values are
#: worse (times, sizes), -1 when lower values are worse (throughput).
_COMPRESSION_DIRECTION = {"bytes_per_point": 1, "throughput_mpts": -1}

#: Same, for ``serve_load`` reports: latency up = bad, throughput down = bad.
_SERVE_DIRECTION = {
    "throughput_rps": -1,
    "p50_s": 1,
    "p95_s": 1,
    "p99_s": 1,
}


def load_serve(path) -> Dict[Tuple[str, str], float]:
    """Comparable metrics from a ``serve_load`` report.

    Keys are ``(metric, "c<concurrency>")`` per measured level; any
    other payload yields an empty dict.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("experiment") != "serve_load":
        return {}
    metrics: Dict[Tuple[str, str], float] = {}
    for level in payload.get("levels", []):
        name = f"c{level['concurrency']}"
        for metric in _SERVE_DIRECTION:
            if metric in level:
                metrics[(metric, name)] = float(level[metric])
    return metrics


def serve_shed_rate(path) -> Optional[float]:
    """The overload shed rate of a ``serve_load`` report, if present."""
    payload = json.loads(Path(path).read_text())
    if payload.get("experiment") != "serve_load":
        return None
    overload = payload.get("overload") or {}
    rate = overload.get("shed_rate")
    return float(rate) if rate is not None else None


def compare_compression(
    baseline: Dict[Tuple[str, str], float],
    current: Dict[Tuple[str, str], float],
    threshold: float = DEFAULT_THRESHOLD,
    directions: Optional[Dict[str, int]] = None,
) -> List[dict]:
    """Direction-aware comparison rows for shared (metric, name) keys."""
    if directions is None:
        directions = _COMPRESSION_DIRECTION
    rows: List[dict] = []
    for key in sorted(set(baseline) & set(current)):
        metric, name = key
        base, cur = baseline[key], current[key]
        ratio = cur / base if base > 0 else float("inf")
        if directions.get(metric, 1) > 0:
            regressed = ratio > 1.0 + threshold
        else:
            regressed = ratio < 1.0 / (1.0 + threshold)
        rows.append(
            {
                "metric": metric,
                "name": name,
                "baseline": base,
                "current": cur,
                "ratio": ratio,
                "regressed": regressed,
            }
        )
    return rows


def format_compression_row(row: dict) -> str:
    mark = "REGRESSED" if row["regressed"] else "ok"
    return (
        f"{row['metric']:<16} {row['name']:<24} "
        f"{row['baseline']:10.3f} -> {row['current']:10.3f} "
        f"({row['ratio']:5.2f}x)  {mark}"
    )


def compare(
    baseline: Dict[Tuple[str, int], float],
    current: Dict[Tuple[str, int], float],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[dict]:
    """Per-cell comparison rows for every key the two reports share.

    Cells present in only one report are skipped — workloads may grow or
    shrink between commits without that being a timing regression.
    """
    rows: List[dict] = []
    for key in sorted(set(baseline) & set(current)):
        base, cur = baseline[key], current[key]
        ratio = cur / base if base > 0 else float("inf")
        rows.append(
            {
                "query": key[0],
                "threads": key[1],
                "baseline_seconds": base,
                "current_seconds": cur,
                "ratio": ratio,
                "regressed": ratio > 1.0 + threshold,
            }
        )
    return rows


def format_row(row: dict) -> str:
    mark = "REGRESSED" if row["regressed"] else "ok"
    return (
        f"{row['query']:<24} threads={row['threads']:<3} "
        f"{row['baseline_seconds'] * 1e3:9.3f} ms -> "
        f"{row['current_seconds'] * 1e3:9.3f} ms "
        f"({row['ratio']:5.2f}x)  {mark}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="diff two bench JSON reports, flag timing regressions",
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="regression threshold as a fraction (default 0.15 = +15%%)",
    )
    parser.add_argument(
        "--soft",
        action="store_true",
        help="exit 0 even on regressions; emit ::warning:: annotations",
    )
    args = parser.parse_args(argv)

    serve_baseline = load_serve(args.baseline)
    serve_current = load_serve(args.current)
    if serve_baseline or serve_current:
        if not (serve_baseline and serve_current):
            print("compare: no shared serve metrics", file=sys.stderr)
            return 0 if args.soft else 2
        rows = compare_compression(
            serve_baseline,
            serve_current,
            threshold=args.threshold,
            directions=_SERVE_DIRECTION,
        )
        for row in rows:
            print(format_compression_row(row))
        base_shed = serve_shed_rate(args.baseline)
        cur_shed = serve_shed_rate(args.current)
        if base_shed is not None and cur_shed is not None:
            print(
                f"overload shed rate: {base_shed * 100:.1f}% -> "
                f"{cur_shed * 100:.1f}% (informational)"
            )
        regressions = [row for row in rows if row["regressed"]]
        print(
            f"{len(rows)} serve metrics compared, "
            f"{len(regressions)} regressed "
            f"(threshold +{args.threshold * 100:.0f}%)"
        )
        if regressions and args.soft:
            for row in regressions:
                print(
                    f"::warning::serve regression {row['metric']} "
                    f"{row['name']}: {row['ratio']:.2f}x baseline"
                )
            return 0
        return 1 if regressions else 0

    comp_baseline = load_compression(args.baseline)
    comp_current = load_compression(args.current)
    if comp_baseline or comp_current:
        if not (comp_baseline and comp_current):
            print("compare: no shared compression metrics", file=sys.stderr)
            return 0 if args.soft else 2
        rows = compare_compression(
            comp_baseline, comp_current, threshold=args.threshold
        )
        for row in rows:
            print(format_compression_row(row))
        regressions = [row for row in rows if row["regressed"]]
        print(
            f"{len(rows)} compression metrics compared, "
            f"{len(regressions)} regressed "
            f"(threshold +{args.threshold * 100:.0f}%)"
        )
        if regressions and args.soft:
            for row in regressions:
                print(
                    f"::warning::compression regression {row['metric']} "
                    f"{row['name']}: {row['ratio']:.2f}x baseline"
                )
            return 0
        return 1 if regressions else 0

    baseline = load_timings(args.baseline)
    current = load_timings(args.current)
    if not baseline or not current:
        print("compare: no shared timings to compare", file=sys.stderr)
        return 0 if args.soft else 2

    rows = compare(baseline, current, threshold=args.threshold)
    for row in rows:
        print(format_row(row))
    metric_diff = diff_metrics(
        load_metrics(args.baseline), load_metrics(args.current)
    )
    for name in metric_diff["added"]:
        print(f"metric added:   {name}")
    for name in metric_diff["removed"]:
        print(f"metric removed: {name}")
    regressions = [row for row in rows if row["regressed"]]
    print(
        f"{len(rows)} cells compared, {len(regressions)} regressed "
        f"(threshold +{args.threshold * 100:.0f}%)"
    )
    if regressions and args.soft:
        for row in regressions:
            print(
                f"::warning::bench regression {row['query']} "
                f"threads={row['threads']}: {row['ratio']:.2f}x baseline"
            )
        return 0
    return 1 if regressions else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
