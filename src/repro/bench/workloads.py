"""Benchmark workloads: the van Oosterom-style spatial query set.

The demo's performance comparisons (Section 4.1) follow the massive
point-cloud benchmark of [18]: rectangles, circles and irregular polygons
of increasing size over AHN2 subsets, plus the Scenario-2 spatio-thematic
queries (Section 4.2).  :func:`standard_queries` reproduces that query
mix, parameterised by the dataset extent so the same specs run at any
scale factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..gis.envelope import Box
from ..gis.geometry import LineString, Polygon


@dataclass(frozen=True)
class QuerySpec:
    """One benchmark query: a geometry plus the predicate to evaluate."""

    name: str
    geometry: object
    predicate: str = "contains"
    distance: float = 0.0


def circle_polygon(cx: float, cy: float, radius: float, segments: int = 32) -> Polygon:
    """A regular polygon approximating a circle (benchmark query type 3
    of [18]; exact circles are not part of Simple Features polygons)."""
    angles = np.linspace(0, 2 * np.pi, segments, endpoint=False)
    return Polygon(
        np.column_stack([cx + radius * np.cos(angles), cy + radius * np.sin(angles)])
    )


def irregular_polygon(
    cx: float, cy: float, scale: float, seed: int = 0, vertices: int = 11
) -> Polygon:
    """A star-convex irregular polygon (the 'province boundary' stand-in)."""
    rng = np.random.default_rng(seed)
    angles = np.linspace(0, 2 * np.pi, vertices, endpoint=False)
    radii = scale * rng.uniform(0.35, 1.0, vertices)
    return Polygon(
        np.column_stack([cx + radii * np.cos(angles), cy + radii * np.sin(angles)])
    )


def standard_queries(extent: Box, seed: int = 0) -> List[QuerySpec]:
    """The benchmark query set over a dataset extent.

    Three sizes (~0.01%, ~1%, ~25% of the extent area) for the rectangle
    family, plus a circle, two irregular polygons, and two ``dwithin``
    corridor queries (the road-buffer shape from Scenario 2).
    """
    cx, cy = extent.center
    w, h = extent.width, extent.height

    def rect(fraction: float, name: str) -> QuerySpec:
        half_w = w * (fraction**0.5) / 2
        half_h = h * (fraction**0.5) / 2
        return QuerySpec(
            name=name,
            geometry=Box(cx - half_w, cy - half_h, cx + half_w, cy + half_h),
        )

    diag = LineString(
        [
            (extent.xmin + 0.1 * w, extent.ymin + 0.2 * h),
            (cx, cy),
            (extent.xmax - 0.1 * w, extent.ymax - 0.15 * h),
        ]
    )

    return [
        rect(0.0001, "rect_small"),
        rect(0.01, "rect_medium"),
        rect(0.25, "rect_large"),
        QuerySpec("circle_medium", circle_polygon(cx, cy, 0.06 * w)),
        QuerySpec(
            "polygon_simple",
            irregular_polygon(cx - 0.2 * w, cy + 0.1 * h, 0.08 * w, seed=seed),
        ),
        QuerySpec(
            "polygon_complex",
            irregular_polygon(
                cx + 0.15 * w, cy - 0.1 * h, 0.2 * w, seed=seed + 1, vertices=41
            ),
        ),
        QuerySpec(
            "corridor_narrow", diag, predicate="dwithin", distance=0.005 * w
        ),
        QuerySpec("corridor_wide", diag, predicate="dwithin", distance=0.03 * w),
    ]


def selectivity_sweep(
    extent: Box, fractions=(0.00001, 0.0001, 0.001, 0.01, 0.1, 0.5)
) -> List[QuerySpec]:
    """Box queries of increasing area fraction (the E3/E4 selectivity axis)."""
    cx, cy = extent.center
    specs = []
    for fraction in fractions:
        half_w = extent.width * (fraction**0.5) / 2
        half_h = extent.height * (fraction**0.5) / 2
        specs.append(
            QuerySpec(
                name=f"sel_{fraction:g}",
                geometry=Box(cx - half_w, cy - half_h, cx + half_w, cy + half_h),
            )
        )
    return specs
