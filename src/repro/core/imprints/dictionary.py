"""Cacheline-dictionary compression of imprint vector sequences.

Consecutive cache lines frequently produce identical imprint vectors
(data "often exhibits local clustering or partial ordering as a side effect
of the construction process", Section 2.1.1).  The imprint therefore does
not store one vector per cacheline; it stores a *cacheline dictionary* of
``(counter, repeat)`` entries over a deduplicated vector list:

* ``repeat = 1``: the next stored vector stands for ``counter`` consecutive
  cache lines.
* ``repeat = 0``: the next ``counter`` stored vectors stand for one cache
  line each.

Counters are bounded (24 bits in MonetDB); longer runs split into several
entries.  Compression is lossless — :func:`decompress` restores the exact
per-cacheline sequence — and CPU-friendly: queries scan entries linearly
and test each stored vector once regardless of how many cache lines it
covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

import numpy as np
from numpy.typing import NDArray

#: MonetDB packs the counter into 24 bits of a 32-bit dictionary entry.
MAX_COUNTER = (1 << 24) - 1


@dataclass(frozen=True)
class CachelineDict:
    """Compressed imprint vector sequence.

    Attributes
    ----------
    counters:
        Entry counters (int64; values in [1, MAX_COUNTER]).
    repeats:
        Entry repeat flags, aligned with ``counters``.
    vectors:
        Deduplicated imprint vectors: one per repeat entry, ``counter``
        per non-repeat entry, in entry order.
    n_lines:
        Total cache lines represented.
    """

    counters: NDArray[Any]
    repeats: NDArray[Any]
    vectors: NDArray[Any]
    n_lines: int

    @property
    def n_entries(self) -> int:
        return self.counters.shape[0]

    @property
    def nbytes(self) -> int:
        """Storage footprint: 4 bytes per entry (24-bit counter + flag,
        padded to a word as in MonetDB) plus 8 bytes per stored vector."""
        return 4 * self.n_entries + 8 * self.vectors.shape[0]

    def coverage(self) -> NDArray[Any]:
        """Cache lines covered by each *stored vector*, in vector order.

        Repeat entries contribute one vector covering ``counter`` lines;
        non-repeat entries contribute ``counter`` vectors covering one line
        each.  ``np.repeat(per_vector_flags, coverage())`` therefore expands
        any per-vector computation to per-cacheline granularity.
        """
        reps = self.repeats
        cnts = self.counters
        sizes = np.where(reps, 1, cnts)  # stored vectors per entry
        per_vector = np.ones(int(sizes.sum()), dtype=np.int64)
        # First vector of each repeat entry covers `counter` lines.
        starts = np.cumsum(sizes) - sizes
        per_vector[starts[reps]] = cnts[reps]
        return per_vector


def compress(vectors: NDArray[Any], max_counter: int = MAX_COUNTER) -> CachelineDict:
    """Build the cacheline dictionary from a raw per-cacheline sequence."""
    vectors = np.asarray(vectors, dtype=np.uint64)
    n = vectors.shape[0]
    if max_counter < 1:
        raise ValueError("max_counter must be >= 1")
    if n == 0:
        empty64 = np.empty(0, dtype=np.int64)
        return CachelineDict(
            counters=empty64,
            repeats=np.empty(0, dtype=bool),
            vectors=vectors,
            n_lines=0,
        )

    # Run-length encode the vector sequence.
    change = np.empty(n, dtype=bool)
    change[0] = True
    change[1:] = vectors[1:] != vectors[:-1]
    run_starts = np.flatnonzero(change)
    run_lengths = np.diff(np.append(run_starts, n))
    run_vectors = vectors[run_starts]

    counters: List[int] = []
    repeats: List[bool] = []
    stored: List[Any] = []
    pending_singles: List[Any] = []  # consecutive runs of length 1 coalesce

    def flush_singles() -> None:
        while pending_singles:
            chunk = pending_singles[: max_counter]
            del pending_singles[: len(chunk)]
            counters.append(len(chunk))
            repeats.append(False)
            stored.extend(chunk)

    for vec, length in zip(run_vectors, run_lengths):
        if length == 1:
            pending_singles.append(vec)
            continue
        flush_singles()
        remaining = int(length)
        while remaining > 0:
            take = min(remaining, max_counter)
            if take == 1:
                # A leftover single line after counter-capped splits.
                pending_singles.append(vec)
                remaining -= 1
                continue
            counters.append(take)
            repeats.append(True)
            stored.append(vec)
            remaining -= take
    flush_singles()

    return CachelineDict(
        counters=np.asarray(counters, dtype=np.int64),
        repeats=np.asarray(repeats, dtype=bool),
        vectors=np.asarray(stored, dtype=np.uint64),
        n_lines=n,
    )


def decompress(cdict: CachelineDict) -> NDArray[Any]:
    """Restore the exact per-cacheline imprint vector sequence."""
    if cdict.n_lines == 0:
        return np.empty(0, dtype=np.uint64)
    return np.repeat(cdict.vectors, cdict.coverage())


def compression_ratio(cdict: CachelineDict) -> float:
    """Uncompressed vector bytes / dictionary bytes (higher is better)."""
    raw = 8 * cdict.n_lines
    return float(raw / cdict.nbytes) if cdict.nbytes else float("inf")
