"""Column imprints: the cache-conscious secondary index of the paper.

Public surface:

* :class:`ColumnImprints` — index one column as a single unit; ``query(lo,
  hi)`` returns the exact candidate-verified oid list.
* :class:`SegmentedImprints` — the segmented successor: per-segment zone
  maps + imprint vectors, incremental appends, morsel-parallel probes.
* :class:`ImprintsManager` — lazy creation on first range query,
  incremental extension on append, the lifecycle MonetDB implements.
* :func:`build_bins` / :class:`BinScheme` — the global 64-bin histogram.
* :mod:`~.dictionary` — the (counter, repeat) cacheline dictionary.
"""

from .bitvec import CACHELINE_BYTES, values_per_cacheline
from .dictionary import MAX_COUNTER, CachelineDict, compress, decompress
from .histogram import DEFAULT_SAMPLE, MAX_BINS, BinScheme, build_bins
from .index import ColumnImprints, ImprintStats
from .manager import ImprintsManager
from .segments import DEFAULT_SEGMENT_ROWS, SegmentedImprints

__all__ = [
    "CACHELINE_BYTES",
    "CachelineDict",
    "ColumnImprints",
    "DEFAULT_SAMPLE",
    "DEFAULT_SEGMENT_ROWS",
    "SegmentedImprints",
    "ImprintStats",
    "ImprintsManager",
    "MAX_BINS",
    "MAX_COUNTER",
    "BinScheme",
    "build_bins",
    "compress",
    "decompress",
    "values_per_cacheline",
]
