"""Per-cacheline 64-bit imprint vectors.

"A column imprint ... is a collection of 64-bit vectors, each indexing data
points that fit into a single cache line.  Each of the 64 bits is
associated with a range of values.  A bit is set to 1 when the cache line
indexed by the vector contains values in the corresponding range."
(Section 2.1.1.)

This module turns a value array plus a :class:`~.histogram.BinScheme` into
that vector sequence.  The cacheline granularity is expressed in *values
per cacheline*; with 64-byte cache lines and 8-byte coordinates the default
is 8 values, exactly MonetDB's granularity for doubles.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import NDArray

from .histogram import BinScheme

#: Cache line size assumed throughout, in bytes (the paper's 64-bit CPUs).
CACHELINE_BYTES = 64


def values_per_cacheline(itemsize: int, cacheline_bytes: int = CACHELINE_BYTES) -> int:
    """How many values of the given width share one cache line (>= 1)."""
    if itemsize <= 0:
        raise ValueError("itemsize must be positive")
    return max(1, cacheline_bytes // itemsize)


def build_vectors(
    values: NDArray[Any], scheme: BinScheme, vpc: int
) -> NDArray[Any]:
    """One uint64 imprint vector per cacheline of ``values``.

    The last (partial) cacheline is padded by repeating the final value,
    which adds no spurious bits because that value's bin is already set.
    """
    values = np.asarray(values)
    if vpc <= 0:
        raise ValueError("values per cacheline must be positive")
    n = values.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    bins = scheme.bin_of(values).astype(np.uint64)
    n_lines = (n + vpc - 1) // vpc
    pad = n_lines * vpc - n
    if pad:
        bins = np.concatenate([bins, np.repeat(bins[-1], pad)])
    bits = np.left_shift(np.uint64(1), bins)
    return np.bitwise_or.reduce(bits.reshape(n_lines, vpc), axis=1)


def match_vectors(vectors: NDArray[Any], mask: int) -> NDArray[Any]:
    """Boolean array: which imprint vectors intersect the query bin mask."""
    return (vectors & np.uint64(mask)) != 0


def popcount(vectors: NDArray[Any]) -> NDArray[Any]:
    """Bits set per vector (imprint density diagnostics, E4 bench)."""
    v = vectors.astype(np.uint64).copy()
    counts = np.zeros(v.shape[0], dtype=np.int64)
    for _ in range(64):
        counts += (v & np.uint64(1)).astype(np.int64)
        v >>= np.uint64(1)
        if not v.any():
            break
    return counts
