"""The column imprints secondary index.

:class:`ColumnImprints` composes the three pieces of the SIGMOD'13 / paper
design — a global :class:`~.histogram.BinScheme`, per-cacheline 64-bit
vectors, and the ``(counter, repeat)`` cacheline dictionary — into an index
with the candidate-list interface of the engine's select operators.

Query evaluation follows the paper exactly: build the 64-bit *query mask*
of bins intersecting ``[lo, hi]``, AND it against each stored imprint
vector (each tested once, however many cache lines it covers), expand the
matching vectors to candidate cache lines, and finally run the exact range
predicate only over those lines — "limit data access, and thus minimise
memory traffic".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np
from numpy.typing import NDArray

from ...engine.column import Column
from . import bitvec, dictionary
from .histogram import DEFAULT_SAMPLE, MAX_BINS, BinScheme, build_bins


@dataclass(frozen=True)
class ImprintStats:
    """Size and shape diagnostics for one imprint (E2/E4 benches)."""

    n_rows: int
    n_lines: int
    n_bins: int
    n_entries: int
    n_vectors: int
    index_bytes: int
    column_bytes: int

    @property
    def overhead(self) -> float:
        """Index bytes as a fraction of the indexed column bytes — the
        quantity the paper reports as "5-12% storage overhead"."""
        return (
            self.index_bytes / self.column_bytes if self.column_bytes else 0.0
        )

    @property
    def dict_compression(self) -> float:
        """Uncompressed per-line vectors bytes / stored dictionary bytes."""
        raw = 8 * self.n_lines
        dict_bytes = 4 * self.n_entries + 8 * self.n_vectors
        return raw / dict_bytes if dict_bytes else float("inf")


class ColumnImprints:
    """An imprints index over a snapshot of one column.

    Parameters
    ----------
    column:
        The column to index.  The index snapshots the column length at
        build time; :attr:`stale` reports whether the column has grown
        since (the :class:`~.manager.ImprintsManager` rebuilds stale
        indexes transparently).
    max_bins:
        Bin budget, at most 64.
    cacheline_bytes:
        Modelled cache line size; with the column's itemsize this sets the
        vector granularity (8 doubles per 64-byte line by default).
    sample_size:
        Sample used to derive the global bins.
    max_counter:
        Dictionary counter cap (24-bit in MonetDB).
    """

    def __init__(
        self,
        column: Column,
        max_bins: int = MAX_BINS,
        cacheline_bytes: int = bitvec.CACHELINE_BYTES,
        sample_size: int = DEFAULT_SAMPLE,
        max_counter: int = dictionary.MAX_COUNTER,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if len(column) == 0:
            raise ValueError("cannot build imprints over an empty column")
        self.column = column
        self.vpc = bitvec.values_per_cacheline(
            column.dtype.itemsize, cacheline_bytes
        )
        values = np.asarray(column.values)
        self.n_rows = values.shape[0]
        self.scheme: BinScheme = build_bins(
            values, max_bins=max_bins, sample_size=sample_size, rng=rng
        )
        vectors = bitvec.build_vectors(values, self.scheme, self.vpc)
        self.cdict = dictionary.compress(vectors, max_counter=max_counter)
        # Per stored vector: how many cache lines it covers (query expansion).
        self._coverage = self.cdict.coverage()

    # -- bookkeeping ---------------------------------------------------------

    @property
    def n_lines(self) -> int:
        return self.cdict.n_lines

    @property
    def stale(self) -> bool:
        """True when the column has grown past the indexed snapshot."""
        return len(self.column) != self.n_rows

    @property
    def nbytes(self) -> int:
        """Total index bytes: dictionary plus bin borders."""
        return self.cdict.nbytes + self.scheme.nbytes

    def stats(self) -> ImprintStats:
        return ImprintStats(
            n_rows=self.n_rows,
            n_lines=self.n_lines,
            n_bins=self.scheme.n_bins,
            n_entries=self.cdict.n_entries,
            n_vectors=self.cdict.vectors.shape[0],
            index_bytes=self.nbytes,
            column_bytes=self.n_rows * self.column.dtype.itemsize,
        )

    # -- query ---------------------------------------------------------------

    def candidate_lines(self, lo: Optional[Any], hi: Optional[Any]) -> NDArray[Any]:
        """Boolean per cacheline: may the line hold values in [lo, hi]?

        This is the pure index probe (no data access): one AND per stored
        vector, then expansion through the dictionary coverage.
        """
        mask = self.scheme.range_mask(lo, hi)
        if mask == 0:
            return np.zeros(self.n_lines, dtype=bool)
        vec_match = bitvec.match_vectors(self.cdict.vectors, mask)
        if self.cdict.vectors.shape[0] == self.n_lines:
            # Uncompressed dictionary: one stored vector per line already.
            return vec_match
        return np.repeat(vec_match, self._coverage)

    def candidate_rows(self, lo: Optional[Any], hi: Optional[Any]) -> NDArray[Any]:
        """Candidate oids (superset of the exact result), sorted."""
        lines = np.flatnonzero(self.candidate_lines(lo, hi))
        if lines.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        rows = (
            lines[:, None] * self.vpc + np.arange(self.vpc, dtype=np.int64)
        ).ravel()
        return rows[rows < self.n_rows]

    def query(
        self,
        lo: Optional[Any],
        hi: Optional[Any],
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> NDArray[Any]:
        """Exact range select via the imprint: probe, then verify candidates.

        Returns a sorted oid array identical to
        :func:`repro.engine.select.range_select` on the indexed prefix.
        """
        lines = np.flatnonzero(self.candidate_lines(lo, hi))
        if lines.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        values = np.asarray(self.column.values)
        vpc = self.vpc

        def check(vals: NDArray[Any]) -> NDArray[Any]:
            mask = np.ones(vals.shape, dtype=bool)
            if lo is not None:
                mask &= (vals >= lo) if lo_inclusive else (vals > lo)
            if hi is not None:
                mask &= (vals <= hi) if hi_inclusive else (vals < hi)
            return mask

        # Full cache lines verify as one 2-D row gather + compare; the
        # (possibly partial) final line is handled separately.
        n_full = self.n_rows // vpc
        full_lines = lines[lines < n_full]
        pieces: List[NDArray[Any]] = []
        if full_lines.shape[0]:
            blocks = values[: n_full * vpc].reshape(n_full, vpc)[full_lines]
            hit = check(blocks)
            base = full_lines * vpc
            pieces.append(
                (base[:, None] + np.arange(vpc, dtype=np.int64))[hit]
            )
        if lines[-1] >= n_full and self.n_rows > n_full * vpc:
            tail = values[n_full * vpc : self.n_rows]
            pieces.append(np.flatnonzero(check(tail)) + n_full * vpc)
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces) if len(pieces) > 1 else pieces[0]

    def false_positive_rate(self, lo: Optional[Any], hi: Optional[Any]) -> float:
        """Fraction of candidate rows the exact check discards (E4 metric)."""
        rows = self.candidate_rows(lo, hi)
        if rows.shape[0] == 0:
            return 0.0
        exact = self.query(lo, hi)
        return float(1.0 - exact.shape[0] / rows.shape[0])

    def scanned_fraction(self, lo: Optional[Any], hi: Optional[Any]) -> float:
        """Fraction of cache lines a query must touch (E4 metric)."""
        if self.n_lines == 0:
            return 0.0
        lines = self.candidate_lines(lo, hi)
        return float(lines.sum()) / self.n_lines
