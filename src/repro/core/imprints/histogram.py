"""Global bin boundaries for column imprints.

An imprint maps every column value to one of at most 64 bins.  Following
Sidirourgos & Kersten (SIGMOD 2013), the bin borders are *global* to the
imprint and "decided based on the distribution of the values of the indexed
column": we sample the column, sort the sample, and cut it into equi-depth
bins, so each bin receives roughly the same number of values regardless of
skew.  Low-cardinality columns get fewer (power-of-two) bins so every
distinct value can own a bin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np
from numpy.typing import NDArray

#: Hard cap from the paper: one bit per bin in a 64-bit imprint vector.
MAX_BINS = 64

#: Default sample size used to estimate the value distribution.
DEFAULT_SAMPLE = 2048


@dataclass(frozen=True)
class BinScheme:
    """The global binning of an imprint.

    Attributes
    ----------
    borders:
        Ascending interior borders; ``len(borders) == n_bins - 1``.  Value
        ``v`` belongs to bin ``searchsorted(borders, v, side='right')``
        (the number of borders ``<= v``): bin 0 holds ``v < borders[0]``,
        bin ``b`` holds ``borders[b-1] <= v < borders[b]``, and the last
        bin holds ``v >= borders[-1]``.  The first and last bins thereby
        absorb out-of-sample extremes, as in the reference implementation.
    n_bins:
        Number of bins, a power of two between 1 and 64.
    """

    borders: NDArray[Any]
    n_bins: int = field(default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "n_bins", len(self.borders) + 1)

    @property
    def nbytes(self) -> int:
        """Bytes occupied by the border array (counted as index overhead)."""
        return self.borders.nbytes

    def bin_of(self, values: NDArray[Any]) -> NDArray[Any]:
        """Bin id for each value (vectorised)."""
        return np.searchsorted(self.borders, np.asarray(values), side="right")

    def range_mask(self, lo: Optional[Any], hi: Optional[Any]) -> int:
        """64-bit mask with a 1 for every bin that may hold values in [lo, hi].

        ``None`` bounds mean unbounded.  This is the query-side mask that is
        ANDed against each imprint vector; a non-zero AND marks a candidate
        cacheline.
        """
        if lo is None:
            first = 0
        else:
            # bin_of is monotone in the value, so every v >= lo lands in a
            # bin >= bin_of(lo); bins below `first` hold only values < lo.
            first = int(np.searchsorted(self.borders, lo, side="right"))
        if hi is None:
            last = self.n_bins - 1
        else:
            last = int(np.searchsorted(self.borders, hi, side="right"))
        last = min(last, self.n_bins - 1)
        if first > last:
            return 0
        width = last - first + 1
        return ((1 << width) - 1) << first


def _pow2_at_most(n: int, cap: int = MAX_BINS) -> int:
    """Largest power of two <= max(n, 1), capped."""
    p = 1
    while p * 2 <= min(n, cap):
        p *= 2
    return p


def build_bins(
    values: NDArray[Any],
    max_bins: int = MAX_BINS,
    sample_size: int = DEFAULT_SAMPLE,
    rng: Optional[np.random.Generator] = None,
) -> BinScheme:
    """Derive a :class:`BinScheme` from (a sample of) the column values.

    Equi-depth cut points over a sorted sample; duplicate cut points are
    collapsed, and the bin count is rounded down to a power of two so the
    query mask arithmetic stays cheap (mirroring the paper's use of 8, 16,
    32 or 64 ranges depending on column cardinality).
    """
    values = np.asarray(values)
    if values.shape[0] == 0:
        raise ValueError("cannot build imprint bins for an empty column")
    if not 1 <= max_bins <= MAX_BINS:
        raise ValueError(f"max_bins must be in [1, {MAX_BINS}]")

    if values.shape[0] > sample_size:
        rng = rng if rng is not None else np.random.default_rng(0xC0FFEE)
        sample = values[rng.integers(0, values.shape[0], sample_size)]
    else:
        sample = values
    uniques = np.unique(sample)

    n_bins = _pow2_at_most(uniques.shape[0], max_bins)
    if n_bins <= 1:
        return BinScheme(borders=np.empty(0, dtype=values.dtype))

    # Equi-depth borders: the values at the (k/n_bins)-quantile positions of
    # the distinct sampled values; distinctness guarantees strictly
    # ascending borders.
    positions = (np.arange(1, n_bins) * uniques.shape[0]) // n_bins
    positions = np.clip(positions, 0, uniques.shape[0] - 1)
    borders = np.unique(uniques[positions])
    return BinScheme(borders=borders)
