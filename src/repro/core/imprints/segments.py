"""Segmented column imprints: zone maps + per-segment imprint vectors.

The flat :class:`~.index.ColumnImprints` indexes a column as one unit, so
every append forces an O(n) rebuild and every probe walks the whole
vector sequence single-threaded.  :class:`SegmentedImprints` cuts the
column into fixed-size, cacheline-aligned **segments** and gives each one

* a ``(min, max)`` **zone map** — queries skip a segment (or accept it
  wholesale) without touching its imprint or its data, and
* its own bin scheme + imprint vectors + cacheline dictionary, built from
  that segment's values only.

Segments are the unit of everything the engine wants to scale:

* **build** — segments are independent, so the first range query fans the
  imprint construction out across the worker pool;
* **append** — new rows only ever create (or complete) trailing segments;
  the existing ones are immutable, so ``extend`` is O(appended), not O(n);
* **probe** — each segment's probe + exact verification is a morsel that a
  worker can run in isolation, and per-segment results concatenate in
  segment order into the usual sorted candidate list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

from ...engine.column import Column
from ...engine.kernels import ZONE_FULL, ZONE_PROBE, ZONE_SKIP, zone_verdict
from ...engine.parallel import run_tasks
from ...obs import heat as _heat
from ...obs import queries as _queries
from ...obs import resources
from . import bitvec, dictionary
from .histogram import DEFAULT_SAMPLE, MAX_BINS, BinScheme, build_bins
from .index import ImprintStats

#: Default segment length in rows.  A multiple of 64 so it is aligned to
#: whole cache lines for every supported dtype (vpc is a power of two
#: <= 64 at the default cacheline size), and big enough that per-segment
#: Python overhead stays far below the numpy kernels it wraps.
DEFAULT_SEGMENT_ROWS = 64 * 1024

#: Zone-map verdicts — shared with the compressed-execution kernels so
#: segment pruning has exactly one algebra (:mod:`repro.engine.kernels`).
_SKIP, _FULL, _PROBE = ZONE_SKIP, ZONE_FULL, ZONE_PROBE

#: Test-injection point: called with each segment just before its probe
#: runs.  The live-introspection tests install a sleeping hook here to
#: make scans slow enough to watch ``/debug/queries`` progress tick and
#: to land deadline checks mid-scan.  ``None`` (production) costs one
#: read per probe.
probe_hook: Optional[Callable[["SegmentImprint"], None]] = None


@dataclass
class SegmentImprint:
    """One immutable segment of a segmented imprints index.

    ``start``/``stop`` are row positions in the column; ``zmin``/``zmax``
    the segment's value range (the zone map); the rest is exactly the
    per-column state of :class:`~.index.ColumnImprints`, scoped to the
    segment's rows.
    """

    start: int
    stop: int
    zmin: object
    zmax: object
    scheme: BinScheme
    cdict: dictionary.CachelineDict
    coverage: NDArray[Any]

    @property
    def n_rows(self) -> int:
        return self.stop - self.start

    @property
    def n_lines(self) -> int:
        return self.cdict.n_lines

    @property
    def nbytes(self) -> int:
        """Dictionary + borders + the two zone-map values (16 bytes)."""
        return self.cdict.nbytes + self.scheme.nbytes + 16


def build_segment(
    values: NDArray[Any],
    start: int,
    stop: int,
    vpc: int,
    max_bins: int = MAX_BINS,
    sample_size: int = DEFAULT_SAMPLE,
    max_counter: int = dictionary.MAX_COUNTER,
    zone: Optional[Tuple[Any, Any]] = None,
) -> SegmentImprint:
    """Build one segment's imprint from the column slice ``[start, stop)``.

    Pure function of the slice — safe to run on any worker thread.  Each
    build seeds its own sampling RNG, so parallel and serial builds produce
    identical indexes.  ``zone`` supplies a precomputed ``(zmin, zmax)``
    when the caller already knows the range — the compressed mirror's FOR
    headers carry it for free, saving the min/max sweep here.
    """
    part = values[start:stop]
    scheme = build_bins(part, max_bins=max_bins, sample_size=sample_size)
    vectors = bitvec.build_vectors(part, scheme, vpc)
    cdict = dictionary.compress(vectors, max_counter=max_counter)
    if zone is None:
        zone = (part.min(), part.max())
    return SegmentImprint(
        start=start,
        stop=stop,
        zmin=zone[0],
        zmax=zone[1],
        scheme=scheme,
        cdict=cdict,
        coverage=cdict.coverage(),
    )


class SegmentedImprints:
    """A segmented imprints index over a snapshot of one column.

    Drop-in successor to :class:`~.index.ColumnImprints` behind the
    :class:`~.manager.ImprintsManager`: same exact-query contract (sorted
    oids over the indexed prefix), plus segment-granular builds, appends
    and parallel probes.

    Parameters
    ----------
    column:
        The column to index (snapshot length recorded at build time).
    segment_rows:
        Segment length in rows; rounded up to a whole number of cache
        lines so segment borders never split an imprint vector.
    threads:
        Worker count for the initial build (``None`` = engine default,
        ``1`` = serial).
    max_bins, cacheline_bytes, sample_size, max_counter:
        Per-segment build parameters, as for :class:`ColumnImprints`.
    """

    def __init__(
        self,
        column: Column,
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        threads: Optional[int] = None,
        max_bins: int = MAX_BINS,
        cacheline_bytes: int = bitvec.CACHELINE_BYTES,
        sample_size: int = DEFAULT_SAMPLE,
        max_counter: int = dictionary.MAX_COUNTER,
    ) -> None:
        if len(column) == 0:
            raise ValueError("cannot build imprints over an empty column")
        if segment_rows < 1:
            raise ValueError("segment_rows must be positive")
        self.column = column
        self.vpc = bitvec.values_per_cacheline(
            column.dtype.itemsize, cacheline_bytes
        )
        # Align segments to whole cache lines.
        self.segment_rows = ((segment_rows + self.vpc - 1) // self.vpc) * self.vpc
        self.max_bins = max_bins
        self.sample_size = sample_size
        self.max_counter = max_counter
        self.segments: List[SegmentImprint] = []
        self.n_rows = 0
        self.extend(threads=threads)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_parts(
        cls,
        column: Column,
        vpc: int,
        segment_rows: int,
        n_rows: int,
        segments: List[SegmentImprint],
    ) -> "SegmentedImprints":
        """Reassemble an index from persisted parts (see ``persist``)."""
        instance = cls.__new__(cls)
        instance.column = column
        instance.vpc = vpc
        instance.segment_rows = segment_rows
        instance.max_bins = MAX_BINS
        instance.sample_size = DEFAULT_SAMPLE
        instance.max_counter = dictionary.MAX_COUNTER
        instance.segments = segments
        instance.n_rows = n_rows
        return instance

    def extend(self, threads: Optional[int] = None) -> int:
        """Index rows appended since the last build; returns segments built.

        Existing full segments are immutable and untouched.  A trailing
        *partial* segment is rebuilt (bounded by ``segment_rows``, so still
        O(appended + one segment)); everything beyond it is new.  The
        per-segment builds fan out over the worker pool.
        """
        values = np.asarray(self.column.values)
        n = values.shape[0]
        if n == self.n_rows:
            return 0
        if n < self.n_rows:
            # Columns are append-only; a shrunk column means this index
            # belongs to different data.  Rebuild from scratch.
            self.segments = []
            self.n_rows = 0
        if self.segments and self.segments[-1].n_rows < self.segment_rows:
            rebuild_from = self.segments.pop().start
        else:
            rebuild_from = self.n_rows
        spans = [
            (start, min(start + self.segment_rows, n))
            for start in range(rebuild_from, n, self.segment_rows)
        ]
        zones = self._packed_zones()
        built = run_tasks(
            lambda span: build_segment(
                values,
                span[0],
                span[1],
                self.vpc,
                max_bins=self.max_bins,
                sample_size=self.sample_size,
                max_counter=self.max_counter,
                zone=zones.get(span),
            ),
            spans,
            threads=threads,
        )
        self.segments.extend(built)
        self.n_rows = n
        return len(spans)

    def _packed_zones(self) -> Dict[Tuple[int, int], Tuple[Any, Any]]:
        """Zone maps the column's compressed mirror already knows.

        Every :class:`~repro.engine.compression.CompressedBlock` records
        its value range at encode time (for FOR blocks it *is* the
        header: reference and reference + span), so any imprint segment
        that lines up with a mirror segment gets its zone map without a
        min/max sweep.
        """
        packed = self.column.packed
        if packed is None:
            return {}
        zones: Dict[Tuple[int, int], Tuple[Any, Any]] = {}
        for i, block in enumerate(packed.blocks):
            if block.zmin is not None and block.zmax is not None:
                zones[packed.segment_bounds(i)] = (block.zmin, block.zmax)
        return zones

    # -- bookkeeping -----------------------------------------------------------

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def n_lines(self) -> int:
        return sum(seg.n_lines for seg in self.segments)

    @property
    def stale(self) -> bool:
        """True when the column has grown past the indexed snapshot."""
        return len(self.column) != self.n_rows

    @property
    def nbytes(self) -> int:
        """Total index bytes across all segments."""
        return sum(seg.nbytes for seg in self.segments)

    def stats(self) -> ImprintStats:
        """Aggregate :class:`ImprintStats` over all segments."""
        return ImprintStats(
            n_rows=self.n_rows,
            n_lines=self.n_lines,
            n_bins=max((seg.scheme.n_bins for seg in self.segments), default=0),
            n_entries=sum(seg.cdict.n_entries for seg in self.segments),
            n_vectors=sum(
                seg.cdict.vectors.shape[0] for seg in self.segments
            ),
            index_bytes=self.nbytes,
            column_bytes=self.n_rows * self.column.dtype.itemsize,
        )

    # -- query -----------------------------------------------------------------

    def _classify(
        self,
        seg: SegmentImprint,
        lo: Optional[Any],
        hi: Optional[Any],
        lo_inc: bool,
        hi_inc: bool,
    ) -> int:
        """Zone-map verdict for one segment (skip / accept whole / probe).

        Delegates to the shared :func:`~repro.engine.kernels.zone_verdict`
        so imprints and compressed scans prune with identical algebra.
        NaN zone maps compare false everywhere and land on PROBE, so NaN
        data costs time, never correctness.
        """
        return zone_verdict(seg.zmin, seg.zmax, lo, hi, lo_inc, hi_inc)

    def _candidate_lines(self, seg: SegmentImprint, lo: Optional[Any], hi: Optional[Any]) -> NDArray[Any]:
        """Local candidate-line indices for one probed segment."""
        mask = seg.scheme.range_mask(lo, hi)
        if mask == 0:
            return np.empty(0, dtype=np.int64)
        vec_match = bitvec.match_vectors(seg.cdict.vectors, mask)
        if seg.cdict.vectors.shape[0] != seg.n_lines:
            vec_match = np.repeat(vec_match, seg.coverage)
        return np.flatnonzero(vec_match)

    def _probe(
        self,
        values: NDArray[Any],
        seg: SegmentImprint,
        lo: Optional[Any],
        hi: Optional[Any],
        lo_inc: bool,
        hi_inc: bool,
    ) -> NDArray[Any]:
        """Exact oids for one probed segment: imprint probe + verification."""
        lines = self._candidate_lines(seg, lo, hi)
        if lines.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        part = values[seg.start : seg.stop]
        vpc = self.vpc
        n_seg = seg.n_rows

        def check(vals: NDArray[Any]) -> NDArray[Any]:
            mask = np.ones(vals.shape, dtype=bool)
            if lo is not None:
                mask &= (vals >= lo) if lo_inc else (vals > lo)
            if hi is not None:
                mask &= (vals <= hi) if hi_inc else (vals < hi)
            return mask

        n_full = n_seg // vpc
        full_lines = lines[lines < n_full]
        pieces: List[NDArray[Any]] = []
        if full_lines.shape[0]:
            blocks = part[: n_full * vpc].reshape(n_full, vpc)[full_lines]
            hit = check(blocks)
            base = full_lines * vpc
            pieces.append((base[:, None] + np.arange(vpc, dtype=np.int64))[hit])
        if lines[-1] >= n_full and n_seg > n_full * vpc:
            tail = part[n_full * vpc : n_seg]
            pieces.append(np.flatnonzero(check(tail)) + n_full * vpc)
        if not pieces:
            return np.empty(0, dtype=np.int64)
        local = np.concatenate(pieces) if len(pieces) > 1 else pieces[0]
        return local + seg.start

    def query(
        self,
        lo: Optional[Any],
        hi: Optional[Any],
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
        threads: Optional[int] = None,
        stats: Optional[Any] = None,
    ) -> NDArray[Any]:
        """Exact range select over the indexed prefix, sorted oids.

        Zone maps first: disjoint segments are skipped and fully-covered
        segments accepted wholesale, both without touching data.  Only the
        straddling segments pay an imprint probe + exact verification, and
        those probes fan out over ``threads`` workers.  ``stats`` (any
        object with ``n_segments_skipped`` / ``n_segments_probed``
        counters, e.g. :class:`~..query.QueryStats`) receives the zone-map
        accounting.
        """
        values = np.asarray(self.column.values)
        verdicts = [
            self._classify(seg, lo, hi, lo_inclusive, hi_inclusive)
            for seg in self.segments
        ]
        probe_segments = [
            seg for seg, v in zip(self.segments, verdicts) if v == _PROBE
        ]
        if stats is not None:
            stats.n_segments_probed += len(probe_segments)
            stats.n_segments_skipped += len(verdicts) - len(probe_segments)
        active = _queries.current_query()
        if active is not None:
            # Live progress: the denominator is every segment of this
            # scan; zone-map skips and wholesale accepts complete
            # instantly, probes tick one-by-one as they finish below.
            active.add_segments(
                total=len(verdicts), done=len(verdicts) - len(probe_segments)
            )
        tracker = resources.current()
        if tracker is not None and probe_segments:
            # Only probed segments' data is read; zone-map skips and
            # wholesale accepts cost zero data access (the paper's point),
            # and the attribution reflects that.
            probe_rows = sum(seg.stop - seg.start for seg in probe_segments)
            tracker.add_touched(
                rows=int(probe_rows),
                nbytes=int(probe_rows * values.itemsize),
            )
            tracker.add_scan_bytes(
                materialized=int(probe_rows * values.itemsize)
            )
        heat = _heat.maybe_heat()
        if heat is not None:
            # Imprint probes read decoded values, so the probed bytes are
            # all materialized; one batched update per scan.
            itemsize = int(values.itemsize)
            heat.record_scan(
                self.column.name,
                probed=[
                    (i, 0, (seg.stop - seg.start) * itemsize)
                    for i, (seg, v) in enumerate(
                        zip(self.segments, verdicts)
                    )
                    if v == _PROBE
                ],
                skipped=[i for i, v in enumerate(verdicts) if v == _SKIP],
                full=[i for i, v in enumerate(verdicts) if v == _FULL],
            )
        hook = probe_hook

        def probe_one(seg: SegmentImprint) -> NDArray[Any]:
            if active is not None:
                active.check_deadline()
            if hook is not None:
                hook(seg)
            piece = self._probe(values, seg, lo, hi, lo_inclusive, hi_inclusive)
            if active is not None:
                active.add_segments(done=1)
            return piece

        probed = run_tasks(probe_one, probe_segments, threads=threads)
        probed_iter = iter(probed)
        pieces: List[NDArray[Any]] = []
        for seg, verdict in zip(self.segments, verdicts):
            if verdict == _FULL:
                pieces.append(np.arange(seg.start, seg.stop, dtype=np.int64))
            elif verdict == _PROBE:
                piece = next(probed_iter)
                if piece.shape[0]:
                    pieces.append(piece)
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces) if len(pieces) > 1 else pieces[0]

    # -- diagnostics -----------------------------------------------------------

    def candidate_rows(self, lo: Optional[Any], hi: Optional[Any]) -> NDArray[Any]:
        """Candidate oids (superset of the exact result), sorted."""
        pieces: List[NDArray[Any]] = []
        for seg in self.segments:
            _queries.check_deadline()
            verdict = self._classify(seg, lo, hi, True, True)
            if verdict == _SKIP:
                continue
            if verdict == _FULL:
                pieces.append(np.arange(seg.start, seg.stop, dtype=np.int64))
                continue
            lines = self._candidate_lines(seg, lo, hi)
            if lines.shape[0] == 0:
                continue
            rows = (
                lines[:, None] * self.vpc + np.arange(self.vpc, dtype=np.int64)
            ).ravel() + seg.start
            pieces.append(rows[rows < seg.stop])
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces) if len(pieces) > 1 else pieces[0]

    def scanned_fraction(self, lo: Optional[Any], hi: Optional[Any]) -> float:
        """Fraction of cache lines whose *data* the query must touch.

        Zone-map skips and wholesale accepts both cost zero data access,
        so only probed segments' candidate lines count.
        """
        total = self.n_lines
        if total == 0:
            return 0.0
        touched = 0
        for seg in self.segments:
            _queries.check_deadline()
            if self._classify(seg, lo, hi, True, True) == _PROBE:
                touched += int(self._candidate_lines(seg, lo, hi).shape[0])
        return float(touched / total)

    def false_positive_rate(self, lo: Optional[Any], hi: Optional[Any]) -> float:
        """Fraction of candidate rows the exact check discards."""
        rows = self.candidate_rows(lo, hi)
        if rows.shape[0] == 0:
            return 0.0
        exact = self.query(lo, hi)
        return float(1.0 - exact.shape[0] / rows.shape[0])
