"""Imprint persistence: save/restore built indexes with their table.

MonetDB persists imprints next to the BAT files so a restarted server
does not pay the (cheap, but not free) rebuild on first query.  The
format here mirrors the column files: a small header plus the raw arrays
of the bin scheme and the cacheline dictionary.

Two formats share the ``.imprint`` suffix:

Flat (v1, magic ``RIMP``) — one :class:`ColumnImprints`::

    magic    4 bytes  b"RIMP"
    version  u16
    vpc      u16      values per cacheline
    n_rows   u64      indexed snapshot length
    n_lines  u64
    4 framed arrays (dtype tag + length + raw bytes, as engine.storage):
      borders (f8), counters (i8), repeats (bool), vectors (u8 as u64)

Segmented (v2, magic ``RIMS``) — one :class:`SegmentedImprints`::

    magic         4 bytes  b"RIMS"
    version       u16
    vpc           u16
    segment_rows  u64
    n_rows        u64
    n_segments    u32
    table name    u16 length + utf-8 bytes
    column name   u16 length + utf-8 bytes
    per segment:
      start u64, stop u64
      5 framed arrays: minmax (column dtype, 2 values), borders,
      counters (i8), repeats (bool), vectors (u64)

The v2 header carries the ``(table, column)`` key explicitly; the
manager's loader reads it from there instead of parsing file names
(which breaks on table names containing dots).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

import numpy as np

from ...engine.column import Column
from .dictionary import CachelineDict
from .histogram import BinScheme
from .index import ColumnImprints

PathLike = Union[str, Path]

_MAGIC = b"RIMP"
_VERSION = 1
_HEADER = struct.Struct("<4sHHQQ")

_MAGIC_SEG = b"RIMS"
_VERSION_SEG = 2
_HEADER_SEG = struct.Struct("<4sHHQQI")
_SPAN = struct.Struct("<QQ")


class ImprintPersistError(IOError):
    """Raised on corrupt or mismatched imprint files."""


def _frame(arr: np.ndarray) -> bytes:
    raw = np.ascontiguousarray(arr).tobytes()
    tag = arr.dtype.str.encode()
    return (
        len(tag).to_bytes(2, "little")
        + tag
        + len(raw).to_bytes(8, "little")
        + raw
    )


def _unframe(raw: bytes, pos: int):
    tag_len = int.from_bytes(raw[pos : pos + 2], "little")
    pos += 2
    dtype = np.dtype(raw[pos : pos + tag_len].decode())
    pos += tag_len
    n = int.from_bytes(raw[pos : pos + 8], "little")
    pos += 8
    data = raw[pos : pos + n]
    if len(data) != n:
        raise ImprintPersistError("truncated imprint array")
    return np.frombuffer(data, dtype=dtype), pos + n


def save_imprint(imprint: ColumnImprints, path: PathLike) -> int:
    """Persist a built imprint; returns bytes written."""
    header = _HEADER.pack(
        _MAGIC, _VERSION, imprint.vpc, imprint.n_rows, imprint.n_lines
    )
    payload = b"".join(
        [
            _frame(np.asarray(imprint.scheme.borders, dtype=np.float64)),
            _frame(imprint.cdict.counters),
            _frame(imprint.cdict.repeats),
            _frame(imprint.cdict.vectors),
        ]
    )
    path = Path(path)
    path.write_bytes(header + payload)
    return len(header) + len(payload)


def load_imprint(column: Column, path: PathLike) -> ColumnImprints:
    """Restore an imprint over its column.

    The stored snapshot length must not exceed the column; a longer column
    simply leaves the imprint ``stale`` (the manager will rebuild), but a
    *shorter* column means the file belongs to different data and is
    rejected.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise ImprintPersistError(f"no imprint file at {path}") from None
    if len(raw) < _HEADER.size:
        raise ImprintPersistError(f"{path}: truncated header")
    magic, version, vpc, n_rows, n_lines = _HEADER.unpack(raw[: _HEADER.size])
    if magic != _MAGIC:
        raise ImprintPersistError(f"{path}: bad magic {magic!r}")
    if version != _VERSION:
        raise ImprintPersistError(f"{path}: unsupported version {version}")
    if n_rows > len(column):
        raise ImprintPersistError(
            f"{path}: imprint indexes {n_rows} rows but column "
            f"{column.name!r} holds only {len(column)}"
        )

    pos = _HEADER.size
    borders, pos = _unframe(raw, pos)
    counters, pos = _unframe(raw, pos)
    repeats, pos = _unframe(raw, pos)
    vectors, pos = _unframe(raw, pos)

    imprint = ColumnImprints.__new__(ColumnImprints)
    imprint.column = column
    imprint.vpc = int(vpc)
    imprint.n_rows = int(n_rows)
    imprint.scheme = BinScheme(borders=borders.astype(np.float64))
    imprint.cdict = CachelineDict(
        counters=counters.astype(np.int64),
        repeats=repeats.astype(bool),
        vectors=vectors.astype(np.uint64),
        n_lines=int(n_lines),
    )
    imprint._coverage = imprint.cdict.coverage()
    if int(imprint._coverage.sum() if imprint._coverage.shape[0] else 0) != int(
        n_lines
    ):
        raise ImprintPersistError(f"{path}: dictionary does not cover {n_lines} lines")
    return imprint


# -- segmented (v2) -------------------------------------------------------------


def _frame_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return len(raw).to_bytes(2, "little") + raw


def _unframe_str(raw: bytes, pos: int):
    n = int.from_bytes(raw[pos : pos + 2], "little")
    pos += 2
    data = raw[pos : pos + n]
    if len(data) != n:
        raise ImprintPersistError("truncated imprint name")
    return data.decode("utf-8"), pos + n


def save_segmented(imprint, table_name: str, column_name: str, path: PathLike) -> int:
    """Persist a :class:`SegmentedImprints`; returns bytes written.

    The ``(table, column)`` key travels in the header so a loader never
    has to reverse-engineer it from the file name.
    """
    header = _HEADER_SEG.pack(
        _MAGIC_SEG,
        _VERSION_SEG,
        imprint.vpc,
        imprint.segment_rows,
        imprint.n_rows,
        len(imprint.segments),
    )
    parts = [header, _frame_str(table_name), _frame_str(column_name)]
    for seg in imprint.segments:
        parts.append(_SPAN.pack(seg.start, seg.stop))
        parts.append(_frame(np.asarray([seg.zmin, seg.zmax])))
        parts.append(_frame(np.asarray(seg.scheme.borders)))
        parts.append(_frame(seg.cdict.counters))
        parts.append(_frame(seg.cdict.repeats))
        parts.append(_frame(seg.cdict.vectors))
    payload = b"".join(parts)
    Path(path).write_bytes(payload)
    return len(payload)


def read_segmented_key(path: PathLike):
    """The ``(table_name, column_name)`` key of a v2 imprint file.

    Raises :class:`ImprintPersistError` for v1 or foreign files.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            raw = fh.read(_HEADER_SEG.size + 4 + 2 * 65536)
    except FileNotFoundError:
        raise ImprintPersistError(f"no imprint file at {path}") from None
    if len(raw) < _HEADER_SEG.size:
        raise ImprintPersistError(f"{path}: truncated header")
    magic, version, *_rest = _HEADER_SEG.unpack(raw[: _HEADER_SEG.size])
    if magic != _MAGIC_SEG:
        raise ImprintPersistError(f"{path}: not a segmented imprint ({magic!r})")
    if version != _VERSION_SEG:
        raise ImprintPersistError(f"{path}: unsupported version {version}")
    table_name, pos = _unframe_str(raw, _HEADER_SEG.size)
    column_name, _pos = _unframe_str(raw, pos)
    return table_name, column_name


def load_segmented(column: Column, path: PathLike):
    """Restore a :class:`SegmentedImprints` over its column.

    Same staleness contract as :func:`load_imprint`: a grown column loads
    as a stale index (the manager extends it), a shorter column is
    rejected as foreign data.
    """
    from .dictionary import CachelineDict as _CachelineDict
    from .segments import SegmentImprint, SegmentedImprints

    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise ImprintPersistError(f"no imprint file at {path}") from None
    if len(raw) < _HEADER_SEG.size:
        raise ImprintPersistError(f"{path}: truncated header")
    magic, version, vpc, segment_rows, n_rows, n_segments = _HEADER_SEG.unpack(
        raw[: _HEADER_SEG.size]
    )
    if magic != _MAGIC_SEG:
        raise ImprintPersistError(f"{path}: bad magic {magic!r}")
    if version != _VERSION_SEG:
        raise ImprintPersistError(f"{path}: unsupported version {version}")
    if n_rows > len(column):
        raise ImprintPersistError(
            f"{path}: imprint indexes {n_rows} rows but column "
            f"{column.name!r} holds only {len(column)}"
        )
    pos = _HEADER_SEG.size
    _table_name, pos = _unframe_str(raw, pos)
    _column_name, pos = _unframe_str(raw, pos)
    segments = []
    covered = 0
    for _ in range(n_segments):
        if len(raw) < pos + _SPAN.size:
            raise ImprintPersistError(f"{path}: truncated segment header")
        start, stop = _SPAN.unpack(raw[pos : pos + _SPAN.size])
        pos += _SPAN.size
        minmax, pos = _unframe(raw, pos)
        borders, pos = _unframe(raw, pos)
        counters, pos = _unframe(raw, pos)
        repeats, pos = _unframe(raw, pos)
        vectors, pos = _unframe(raw, pos)
        if minmax.shape[0] != 2 or start != covered or stop <= start:
            raise ImprintPersistError(f"{path}: inconsistent segment spans")
        cdict = _CachelineDict(
            counters=counters.astype(np.int64),
            repeats=repeats.astype(bool),
            vectors=vectors.astype(np.uint64),
            n_lines=(stop - start + vpc - 1) // vpc,
        )
        coverage = cdict.coverage()
        if int(coverage.sum() if coverage.shape[0] else 0) != cdict.n_lines:
            raise ImprintPersistError(
                f"{path}: dictionary does not cover segment [{start}, {stop})"
            )
        segments.append(
            SegmentImprint(
                start=int(start),
                stop=int(stop),
                zmin=minmax[0],
                zmax=minmax[1],
                scheme=BinScheme(borders=borders),
                cdict=cdict,
                coverage=coverage,
            )
        )
        covered = stop
    if covered != n_rows:
        raise ImprintPersistError(
            f"{path}: segments cover {covered} rows, header says {n_rows}"
        )
    return SegmentedImprints.from_parts(
        column,
        vpc=int(vpc),
        segment_rows=int(segment_rows),
        n_rows=int(n_rows),
        segments=segments,
    )
