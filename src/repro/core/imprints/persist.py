"""Imprint persistence: save/restore built indexes with their table.

MonetDB persists imprints next to the BAT files so a restarted server
does not pay the (cheap, but not free) rebuild on first query.  The
format here mirrors the column files: a small header plus the raw arrays
of the bin scheme and the cacheline dictionary.

Two formats share the ``.imprint`` suffix:

Flat (v1, magic ``RIMP``) — one :class:`ColumnImprints`::

    magic    4 bytes  b"RIMP"
    version  u16
    vpc      u16      values per cacheline
    n_rows   u64      indexed snapshot length
    n_lines  u64
    4 framed arrays (dtype tag + length + raw bytes, as engine.storage):
      borders (f8), counters (i8), repeats (bool), vectors (u8 as u64)

Segmented (v3, magic ``RIMS``) — one :class:`SegmentedImprints`::

    magic         4 bytes  b"RIMS"
    version       u16
    vpc           u16
    segment_rows  u64
    n_rows        u64
    n_segments    u32
    crc32         u32     CRC32 of header (crc field zeroed) + body
    table name    u16 length + utf-8 bytes
    column name   u16 length + utf-8 bytes
    per segment:
      start u64, stop u64
      5 framed arrays: minmax (column dtype, 2 values), borders,
      counters (i8), repeats (bool), vectors (u64)

The header carries the ``(table, column)`` key explicitly; the
manager's loader reads it from there instead of parsing file names
(which breaks on table names containing dots).  Version-2 files (the
same layout minus the ``crc32`` field) are still read; new files are
written as v3 through the atomic-write protocol of
:mod:`repro.engine.durable`, and a body-checksum mismatch raises
:class:`ImprintPersistError` (counting ``durability.checksum_failures``)
so the manager can quarantine the file and rebuild lazily.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import TYPE_CHECKING, Any, List, Optional, Tuple, Union

import numpy as np
from numpy.typing import NDArray

from ...engine import durable
from ...engine.column import Column
from .dictionary import CachelineDict
from .histogram import BinScheme
from .index import ColumnImprints

if TYPE_CHECKING:
    from .segments import SegmentedImprints

PathLike = Union[str, Path]

_MAGIC = b"RIMP"
_VERSION = 1
_HEADER = struct.Struct("<4sHHQQ")

_MAGIC_SEG = b"RIMS"
_VERSION_SEG_V2 = 2
_VERSION_SEG = 3
_HEADER_SEG_V2 = struct.Struct("<4sHHQQI")
_HEADER_SEG = struct.Struct("<4sHHQQII")
_PREFIX_SEG = struct.Struct("<4sH")
_SPAN = struct.Struct("<QQ")


class ImprintPersistError(IOError):
    """Raised on corrupt or mismatched imprint files."""


def _frame(arr: NDArray[Any]) -> bytes:
    raw = np.ascontiguousarray(arr).tobytes()
    tag = arr.dtype.str.encode()
    return (
        len(tag).to_bytes(2, "little")
        + tag
        + len(raw).to_bytes(8, "little")
        + raw
    )


def _unframe(raw: bytes, pos: int) -> Tuple[NDArray[Any], int]:
    tag_len = int.from_bytes(raw[pos : pos + 2], "little")
    tag = raw[pos + 2 : pos + 2 + tag_len]
    if len(tag) != tag_len:
        raise ImprintPersistError("truncated imprint array tag")
    try:
        dtype = np.dtype(tag.decode())
    except (ValueError, TypeError, UnicodeDecodeError) as exc:
        raise ImprintPersistError(f"bad imprint array dtype tag ({exc})") from None
    pos += 2 + len(tag)
    n = int.from_bytes(raw[pos : pos + 8], "little")
    pos += 8
    data = raw[pos : pos + n]
    if len(data) != n or n % max(dtype.itemsize, 1):
        raise ImprintPersistError("truncated imprint array")
    return np.frombuffer(data, dtype=dtype), pos + n


def save_imprint(imprint: ColumnImprints, path: PathLike) -> int:
    """Persist a built imprint; returns bytes written."""
    header = _HEADER.pack(
        _MAGIC, _VERSION, imprint.vpc, imprint.n_rows, imprint.n_lines
    )
    payload = b"".join(
        [
            _frame(np.asarray(imprint.scheme.borders, dtype=np.float64)),
            _frame(imprint.cdict.counters),
            _frame(imprint.cdict.repeats),
            _frame(imprint.cdict.vectors),
        ]
    )
    return durable.atomic_write_bytes(path, header + payload, label="imprint")


def load_imprint(column: Column, path: PathLike) -> ColumnImprints:
    """Restore an imprint over its column.

    The stored snapshot length must not exceed the column; a longer column
    simply leaves the imprint ``stale`` (the manager will rebuild), but a
    *shorter* column means the file belongs to different data and is
    rejected.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise ImprintPersistError(f"no imprint file at {path}") from None
    if len(raw) < _HEADER.size:
        raise ImprintPersistError(f"{path}: truncated header")
    magic, version, vpc, n_rows, n_lines = _HEADER.unpack(raw[: _HEADER.size])
    if magic != _MAGIC:
        raise ImprintPersistError(f"{path}: bad magic {magic!r}")
    if version != _VERSION:
        raise ImprintPersistError(f"{path}: unsupported version {version}")
    if n_rows > len(column):
        raise ImprintPersistError(
            f"{path}: imprint indexes {n_rows} rows but column "
            f"{column.name!r} holds only {len(column)}"
        )

    pos = _HEADER.size
    borders, pos = _unframe(raw, pos)
    counters, pos = _unframe(raw, pos)
    repeats, pos = _unframe(raw, pos)
    vectors, pos = _unframe(raw, pos)

    imprint = ColumnImprints.__new__(ColumnImprints)
    imprint.column = column
    imprint.vpc = int(vpc)
    imprint.n_rows = int(n_rows)
    imprint.scheme = BinScheme(borders=borders.astype(np.float64))
    imprint.cdict = CachelineDict(
        counters=counters.astype(np.int64),
        repeats=repeats.astype(bool),
        vectors=vectors.astype(np.uint64),
        n_lines=int(n_lines),
    )
    imprint._coverage = imprint.cdict.coverage()
    if int(imprint._coverage.sum() if imprint._coverage.shape[0] else 0) != int(
        n_lines
    ):
        raise ImprintPersistError(f"{path}: dictionary does not cover {n_lines} lines")
    return imprint


# -- segmented (v2) -------------------------------------------------------------


def _frame_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return len(raw).to_bytes(2, "little") + raw


def _unframe_str(raw: bytes, pos: int) -> Tuple[str, int]:
    n = int.from_bytes(raw[pos : pos + 2], "little")
    pos += 2
    data = raw[pos : pos + n]
    if len(data) != n:
        raise ImprintPersistError("truncated imprint name")
    try:
        return data.decode("utf-8"), pos + n
    except UnicodeDecodeError as exc:
        raise ImprintPersistError(f"bad imprint name ({exc})") from None


def _parse_seg_header(raw: bytes, path: Path) -> Tuple[int, int, int, int, int, Optional[int], int]:
    """(version, vpc, segment_rows, n_rows, n_segments, crc, body offset)."""
    if len(raw) < _PREFIX_SEG.size:
        raise ImprintPersistError(f"{path}: truncated header")
    magic, version = _PREFIX_SEG.unpack(raw[: _PREFIX_SEG.size])
    if magic != _MAGIC_SEG:
        raise ImprintPersistError(f"{path}: bad magic {magic!r}")
    if version == _VERSION_SEG_V2:
        header = _HEADER_SEG_V2
        if len(raw) < header.size:
            raise ImprintPersistError(f"{path}: truncated header")
        (_m, _v, vpc, segment_rows, n_rows, n_segments) = header.unpack(
            raw[: header.size]
        )
        crc = None
    elif version == _VERSION_SEG:
        header = _HEADER_SEG
        if len(raw) < header.size:
            raise ImprintPersistError(f"{path}: truncated header")
        (_m, _v, vpc, segment_rows, n_rows, n_segments, crc) = header.unpack(
            raw[: header.size]
        )
    else:
        raise ImprintPersistError(f"{path}: unsupported version {version}")
    return version, vpc, segment_rows, n_rows, n_segments, crc, header.size


def _seg_crc_ok(raw: bytes, offset: int, crc: Optional[int]) -> bool:
    """Verify a v3 file's CRC (crc32 is the last header field; zero it)."""
    if crc is None:
        return True
    base = raw[: offset - 4] + b"\x00\x00\x00\x00"
    return durable.checksum(base + raw[offset:]) == crc


def save_segmented(
    imprint: "SegmentedImprints", table_name: str, column_name: str, path: PathLike
) -> int:
    """Persist a :class:`SegmentedImprints`; returns bytes written.

    The ``(table, column)`` key travels in the header so a loader never
    has to reverse-engineer it from the file name; the CRC32 covers the
    whole body after the header.
    """
    parts = [_frame_str(table_name), _frame_str(column_name)]
    for seg in imprint.segments:
        parts.append(_SPAN.pack(seg.start, seg.stop))
        parts.append(_frame(np.asarray([seg.zmin, seg.zmax])))
        parts.append(_frame(np.asarray(seg.scheme.borders)))
        parts.append(_frame(seg.cdict.counters))
        parts.append(_frame(seg.cdict.repeats))
        parts.append(_frame(seg.cdict.vectors))
    body = b"".join(parts)
    # CRC over header-with-crc-zeroed + body: a flip anywhere in the
    # file (vpc, segment_rows, ... included) fails verification.
    base = _HEADER_SEG.pack(
        _MAGIC_SEG,
        _VERSION_SEG,
        imprint.vpc,
        imprint.segment_rows,
        imprint.n_rows,
        len(imprint.segments),
        0,
    )
    header = _HEADER_SEG.pack(
        _MAGIC_SEG,
        _VERSION_SEG,
        imprint.vpc,
        imprint.segment_rows,
        imprint.n_rows,
        len(imprint.segments),
        durable.checksum(base + body),
    )
    return durable.atomic_write_bytes(path, header + body, label="imprint")


def verify_segmented_file(path: PathLike) -> Tuple[str, str]:
    """Structural check of a segmented imprint file on disk.

    Parses the header, verifies the body CRC32 (v3), and returns the
    ``(table, column)`` key; raises :class:`ImprintPersistError` on any
    corruption.  Does not validate against a live column — that happens
    at load time.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise ImprintPersistError(f"no imprint file at {path}") from None
    (_version, _vpc, _seg_rows, _n_rows, _n_segments, crc, pos) = _parse_seg_header(
        raw, path
    )
    if not _seg_crc_ok(raw, pos, crc):
        durable.record_checksum_failure(path)
        raise ImprintPersistError(f"{path}: checksum mismatch")
    table_name, pos = _unframe_str(raw, pos)
    column_name, _pos = _unframe_str(raw, pos)
    return table_name, column_name


def looks_like_segmented(path: PathLike) -> bool:
    """True when the file starts with the segmented (``RIMS``) magic.

    Lets the manager distinguish legacy/foreign files (skipped silently)
    from corrupt segmented imprints (quarantined).
    """
    try:
        with open(path, "rb") as fh:
            return fh.read(4) == _MAGIC_SEG
    except OSError:
        return False


def read_segmented_key(path: PathLike) -> Tuple[str, str]:
    """The ``(table_name, column_name)`` key of a v2 imprint file.

    Raises :class:`ImprintPersistError` for v1 or foreign files.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            raw = fh.read(_HEADER_SEG.size + 4 + 2 * 65536)
    except FileNotFoundError:
        raise ImprintPersistError(f"no imprint file at {path}") from None
    (*_fields, offset) = _parse_seg_header(raw, path)
    table_name, pos = _unframe_str(raw, offset)
    column_name, _pos = _unframe_str(raw, pos)
    return table_name, column_name


def load_segmented(column: Column, path: PathLike) -> "SegmentedImprints":
    """Restore a :class:`SegmentedImprints` over its column.

    Same staleness contract as :func:`load_imprint`: a grown column loads
    as a stale index (the manager extends it), a shorter column is
    rejected as foreign data.
    """
    from .dictionary import CachelineDict as _CachelineDict
    from .segments import SegmentImprint, SegmentedImprints

    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise ImprintPersistError(f"no imprint file at {path}") from None
    (_version, vpc, segment_rows, n_rows, n_segments, crc, pos) = _parse_seg_header(
        raw, path
    )
    if not _seg_crc_ok(raw, pos, crc):
        durable.record_checksum_failure(path)
        raise ImprintPersistError(f"{path}: checksum mismatch")
    if n_rows > len(column):
        raise ImprintPersistError(
            f"{path}: imprint indexes {n_rows} rows but column "
            f"{column.name!r} holds only {len(column)}"
        )
    _table_name, pos = _unframe_str(raw, pos)
    _column_name, pos = _unframe_str(raw, pos)
    segments: List[SegmentImprint] = []
    covered = 0
    for _ in range(n_segments):
        if len(raw) < pos + _SPAN.size:
            raise ImprintPersistError(f"{path}: truncated segment header")
        start, stop = _SPAN.unpack(raw[pos : pos + _SPAN.size])
        pos += _SPAN.size
        minmax, pos = _unframe(raw, pos)
        borders, pos = _unframe(raw, pos)
        counters, pos = _unframe(raw, pos)
        repeats, pos = _unframe(raw, pos)
        vectors, pos = _unframe(raw, pos)
        if minmax.shape[0] != 2 or start != covered or stop <= start:
            raise ImprintPersistError(f"{path}: inconsistent segment spans")
        cdict = _CachelineDict(
            counters=counters.astype(np.int64),
            repeats=repeats.astype(bool),
            vectors=vectors.astype(np.uint64),
            n_lines=(stop - start + vpc - 1) // vpc,
        )
        coverage = cdict.coverage()
        if int(coverage.sum() if coverage.shape[0] else 0) != cdict.n_lines:
            raise ImprintPersistError(
                f"{path}: dictionary does not cover segment [{start}, {stop})"
            )
        segments.append(
            SegmentImprint(
                start=int(start),
                stop=int(stop),
                zmin=minmax[0],
                zmax=minmax[1],
                scheme=BinScheme(borders=borders),
                cdict=cdict,
                coverage=coverage,
            )
        )
        covered = stop
    if covered != n_rows:
        raise ImprintPersistError(
            f"{path}: segments cover {covered} rows, header says {n_rows}"
        )
    return SegmentedImprints.from_parts(
        column,
        vpc=int(vpc),
        segment_rows=int(segment_rows),
        n_rows=int(n_rows),
        segments=segments,
    )
