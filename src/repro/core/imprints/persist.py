"""Imprint persistence: save/restore built indexes with their table.

MonetDB persists imprints next to the BAT files so a restarted server
does not pay the (cheap, but not free) rebuild on first query.  The
format here mirrors the column files: a small header plus the raw arrays
of the bin scheme and the cacheline dictionary.

Format (``.imprint``)::

    magic    4 bytes  b"RIMP"
    version  u16
    vpc      u16      values per cacheline
    n_rows   u64      indexed snapshot length
    n_lines  u64
    4 framed arrays (dtype tag + length + raw bytes, as engine.storage):
      borders (f8), counters (i8), repeats (bool), vectors (u8 as u64)
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

import numpy as np

from ...engine.column import Column
from .dictionary import CachelineDict
from .histogram import BinScheme
from .index import ColumnImprints

PathLike = Union[str, Path]

_MAGIC = b"RIMP"
_VERSION = 1
_HEADER = struct.Struct("<4sHHQQ")


class ImprintPersistError(IOError):
    """Raised on corrupt or mismatched imprint files."""


def _frame(arr: np.ndarray) -> bytes:
    raw = np.ascontiguousarray(arr).tobytes()
    tag = arr.dtype.str.encode()
    return (
        len(tag).to_bytes(2, "little")
        + tag
        + len(raw).to_bytes(8, "little")
        + raw
    )


def _unframe(raw: bytes, pos: int):
    tag_len = int.from_bytes(raw[pos : pos + 2], "little")
    pos += 2
    dtype = np.dtype(raw[pos : pos + tag_len].decode())
    pos += tag_len
    n = int.from_bytes(raw[pos : pos + 8], "little")
    pos += 8
    data = raw[pos : pos + n]
    if len(data) != n:
        raise ImprintPersistError("truncated imprint array")
    return np.frombuffer(data, dtype=dtype), pos + n


def save_imprint(imprint: ColumnImprints, path: PathLike) -> int:
    """Persist a built imprint; returns bytes written."""
    header = _HEADER.pack(
        _MAGIC, _VERSION, imprint.vpc, imprint.n_rows, imprint.n_lines
    )
    payload = b"".join(
        [
            _frame(np.asarray(imprint.scheme.borders, dtype=np.float64)),
            _frame(imprint.cdict.counters),
            _frame(imprint.cdict.repeats),
            _frame(imprint.cdict.vectors),
        ]
    )
    path = Path(path)
    path.write_bytes(header + payload)
    return len(header) + len(payload)


def load_imprint(column: Column, path: PathLike) -> ColumnImprints:
    """Restore an imprint over its column.

    The stored snapshot length must not exceed the column; a longer column
    simply leaves the imprint ``stale`` (the manager will rebuild), but a
    *shorter* column means the file belongs to different data and is
    rejected.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise ImprintPersistError(f"no imprint file at {path}") from None
    if len(raw) < _HEADER.size:
        raise ImprintPersistError(f"{path}: truncated header")
    magic, version, vpc, n_rows, n_lines = _HEADER.unpack(raw[: _HEADER.size])
    if magic != _MAGIC:
        raise ImprintPersistError(f"{path}: bad magic {magic!r}")
    if version != _VERSION:
        raise ImprintPersistError(f"{path}: unsupported version {version}")
    if n_rows > len(column):
        raise ImprintPersistError(
            f"{path}: imprint indexes {n_rows} rows but column "
            f"{column.name!r} holds only {len(column)}"
        )

    pos = _HEADER.size
    borders, pos = _unframe(raw, pos)
    counters, pos = _unframe(raw, pos)
    repeats, pos = _unframe(raw, pos)
    vectors, pos = _unframe(raw, pos)

    imprint = ColumnImprints.__new__(ColumnImprints)
    imprint.column = column
    imprint.vpc = int(vpc)
    imprint.n_rows = int(n_rows)
    imprint.scheme = BinScheme(borders=borders.astype(np.float64))
    imprint.cdict = CachelineDict(
        counters=counters.astype(np.int64),
        repeats=repeats.astype(bool),
        vectors=vectors.astype(np.uint64),
        n_lines=int(n_lines),
    )
    imprint._coverage = imprint.cdict.coverage()
    if int(imprint._coverage.sum() if imprint._coverage.shape[0] else 0) != int(
        n_lines
    ):
        raise ImprintPersistError(f"{path}: dictionary does not cover {n_lines} lines")
    return imprint
