"""Lazy, per-column imprint management.

MonetDB creates an imprint "when it encounters a range query for the first
time" (Section 3.2).  :class:`ImprintsManager` reproduces that lifecycle:
the first :meth:`range_select` on a column builds its imprint as a side
effect; later queries reuse it; appends to the column mark it stale and the
next query rebuilds.  Queries through the manager are therefore always
exact, whatever the column's mutation history.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ...engine.column import Column
from ...engine.table import Table
from . import index as index_mod
from .index import ColumnImprints


class ImprintsManager:
    """Registry of lazily built imprints, keyed by (table, column) name.

    Parameters
    ----------
    build_kwargs:
        Forwarded to :class:`ColumnImprints` (bin budget, cacheline size...).
    """

    def __init__(self, **build_kwargs) -> None:
        self._build_kwargs = build_kwargs
        self._imprints: Dict[tuple, ColumnImprints] = {}
        self.builds = 0  # total index (re)builds, observable in benches

    def _key(self, table: Table, column_name: str) -> tuple:
        return (table.name, column_name)

    def get(self, table: Table, column_name: str) -> Optional[ColumnImprints]:
        """The current imprint for a column, or None if never built."""
        return self._imprints.get(self._key(table, column_name))

    def ensure(self, table: Table, column_name: str) -> ColumnImprints:
        """Return a fresh imprint, building or rebuilding as needed."""
        key = self._key(table, column_name)
        imp = self._imprints.get(key)
        if imp is None or imp.stale:
            imp = ColumnImprints(table.column(column_name), **self._build_kwargs)
            self._imprints[key] = imp
            self.builds += 1
        return imp

    def invalidate(self, table: Table, column_name: Optional[str] = None) -> None:
        """Drop imprints for one column or a whole table."""
        if column_name is not None:
            self._imprints.pop(self._key(table, column_name), None)
            return
        for key in [k for k in self._imprints if k[0] == table.name]:
            del self._imprints[key]

    def range_select(
        self,
        table: Table,
        column_name: str,
        lo,
        hi,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> np.ndarray:
        """Exact range select, building the imprint on first use."""
        imp = self.ensure(table, column_name)
        return imp.query(lo, hi, lo_inclusive, hi_inclusive)

    @property
    def nbytes(self) -> int:
        """Total bytes across all live imprints."""
        return sum(imp.nbytes for imp in self._imprints.values())

    def stats(self) -> Dict[tuple, index_mod.ImprintStats]:
        """Per-(table, column) imprint statistics."""
        return {key: imp.stats() for key, imp in self._imprints.items()}

    # -- persistence -----------------------------------------------------------

    def save(self, directory) -> int:
        """Persist every built imprint as ``<table>.<column>.imprint``.

        Returns total bytes written.  MonetDB keeps imprints next to the
        BAT files for the same reason: skip the rebuild after a restart.
        """
        from pathlib import Path

        from .persist import save_imprint

        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        total = 0
        for (table_name, column_name), imprint in self._imprints.items():
            path = root / f"{table_name}.{column_name}.imprint"
            total += save_imprint(imprint, path)
        return total

    def load(self, tables: Dict[str, Table], directory) -> int:
        """Restore imprints for the given tables; returns how many loaded.

        Files for unknown tables/columns or with mismatched snapshots are
        skipped — the lazy build then covers them as usual.
        """
        from pathlib import Path

        from .persist import ImprintPersistError, load_imprint

        root = Path(directory)
        if not root.is_dir():
            return 0
        loaded = 0
        for path in sorted(root.glob("*.imprint")):
            table_name, column_name, _suffix = path.name.rsplit(".", 2)
            table = tables.get(table_name)
            if table is None or column_name not in table:
                continue
            try:
                imprint = load_imprint(table.column(column_name), path)
            except ImprintPersistError:
                continue
            self._imprints[(table_name, column_name)] = imprint
            loaded += 1
        return loaded
