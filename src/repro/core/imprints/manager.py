"""Lazy, per-column imprint management.

MonetDB creates an imprint "when it encounters a range query for the first
time" (Section 3.2).  :class:`ImprintsManager` reproduces that lifecycle:
the first :meth:`range_select` on a column builds its imprint as a side
effect; later queries reuse it; appends to the column mark it stale and the
next query brings it up to date.  Queries through the manager are therefore
always exact, whatever the column's mutation history.

Since the morsel-parallel rework the managed index is a
:class:`~.segments.SegmentedImprints`: the initial build fans out across
the worker pool, and an append extends the index **incrementally** — only
the new (plus at most one trailing partial) segment is built, instead of
the old full O(n) rebuild.  ``builds`` still counts column-level build
events; ``segment_builds`` counts the per-segment work those events
actually did, which is what the append-cost benches watch.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np
from numpy.typing import NDArray

from ...engine.table import Table
from ...obs.metrics import get_registry
from ...obs.timing import now
from ...obs.trace import maybe_span
from . import index as index_mod
from .segments import DEFAULT_SEGMENT_ROWS, SegmentedImprints


class ImprintsManager:
    """Registry of lazily built imprints, keyed by (table, column) name.

    Parameters
    ----------
    threads:
        Default worker count for index builds and probes (``None`` =
        engine default, ``1`` = serial).  Individual calls may override.
    segment_rows:
        Segment granularity of new indexes.
    build_kwargs:
        Forwarded to :class:`SegmentedImprints` (bin budget, cacheline
        size...).
    """

    def __init__(
        self,
        threads: Optional[int] = None,
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        **build_kwargs: Any,
    ) -> None:
        self.threads = threads
        self.segment_rows = segment_rows
        self._build_kwargs = build_kwargs
        # Guards the imprint dict and build bookkeeping: two threads
        # racing range_select() on a cold column must not both build
        # (and double-count) the same index.
        self._lock = threading.Lock()
        self._imprints: Dict[Tuple[str, str], SegmentedImprints] = {}
        self.builds = 0  # column-level index (re)build events
        self.segment_builds = 0  # per-segment builds those events performed
        #: Paths of imprint files quarantined during :meth:`load`.
        self.quarantined: List[str] = []
        #: Seconds the most recent :meth:`ensure` spent building (0.0
        #: when the index was already current) — queries fold this into
        #: ``QueryStats.imprint_build_seconds``.
        self.last_build_seconds = 0.0

    def _key(self, table: Table, column_name: str) -> Tuple[str, str]:
        return (table.name, column_name)

    def get(self, table: Table, column_name: str) -> Optional[SegmentedImprints]:
        """The current imprint for a column, or None if never built."""
        return self._imprints.get(self._key(table, column_name))

    def ensure(
        self, table: Table, column_name: str, threads: Optional[int] = None
    ) -> SegmentedImprints:
        """Return a fresh imprint, building or extending as needed.

        Serialised under the manager lock so concurrent first queries on
        a cold column build its index exactly once; the build itself may
        still fan out across the worker pool (those workers never take
        this lock).
        """
        threads = threads if threads is not None else self.threads
        key = self._key(table, column_name)
        with self._lock:
            imp = self._imprints.get(key)
            self.last_build_seconds = 0.0
            if imp is None:
                with maybe_span(
                    "imprints.build", table=table.name, column=column_name
                ) as span:
                    t0 = now()
                    imp = SegmentedImprints(
                        table.column(column_name),
                        segment_rows=self.segment_rows,
                        threads=threads,
                        **self._build_kwargs,
                    )
                    self.last_build_seconds = now() - t0
                    span.set(segments_built=imp.n_segments)
                self._imprints[key] = imp
                self.builds += 1
                self.segment_builds += imp.n_segments
                self._record_build(imp.n_segments)
            elif imp.stale:
                # Incremental: only new (and one trailing partial) segments
                # are indexed — appends no longer pay O(n).
                with maybe_span(
                    "imprints.extend", table=table.name, column=column_name
                ) as span:
                    t0 = now()
                    built = imp.extend(threads=threads)
                    self.last_build_seconds = now() - t0
                    span.set(segments_built=built)
                self.segment_builds += built
                self.builds += 1
                self._record_build(built)
            return imp

    def _record_build(self, segments_built: int) -> None:
        registry = get_registry()
        registry.counter("imprints.builds").inc()
        registry.counter("imprints.segment_builds").inc(segments_built)
        registry.histogram("imprints.build_seconds").observe(
            self.last_build_seconds
        )

    def invalidate(self, table: Table, column_name: Optional[str] = None) -> None:
        """Drop imprints for one column or a whole table."""
        with self._lock:
            if column_name is not None:
                self._imprints.pop(self._key(table, column_name), None)
                return
            for key in [k for k in self._imprints if k[0] == table.name]:
                del self._imprints[key]

    def range_select(
        self,
        table: Table,
        column_name: str,
        lo: Optional[Any],
        hi: Optional[Any],
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
        threads: Optional[int] = None,
        stats: Optional[Any] = None,
    ) -> NDArray[Any]:
        """Exact range select, building the imprint on first use.

        ``stats`` (any object with ``n_segments_skipped`` /
        ``n_segments_probed`` counters) receives the zone-map accounting
        of the probe; when it also exposes ``imprint_build_seconds``
        (e.g. :class:`~repro.core.query.QueryStats`), the seconds a lazy
        build cost this call are added there.
        """
        threads = threads if threads is not None else self.threads
        builds_before = self.segment_builds
        imp = self.ensure(table, column_name, threads=threads)
        if stats is not None and self.segment_builds != builds_before:
            try:
                stats.imprint_build_seconds += self.last_build_seconds
            except AttributeError:
                pass  # duck-typed stats without the build field
        with maybe_span(
            "imprints.probe", table=table.name, column=column_name
        ) as span:
            oids = imp.query(
                lo, hi, lo_inclusive, hi_inclusive, threads=threads, stats=stats
            )
            span.set(rows_out=int(oids.shape[0]))
        return oids

    @property
    def nbytes(self) -> int:
        """Total bytes across all live imprints."""
        return sum(imp.nbytes for imp in self._imprints.values())

    def stats(self) -> Dict[Tuple[str, str], index_mod.ImprintStats]:
        """Per-(table, column) imprint statistics."""
        return {key: imp.stats() for key, imp in self._imprints.items()}

    # -- persistence -----------------------------------------------------------

    def save(self, directory: Union[str, Path]) -> int:
        """Persist every built imprint as one ``.imprint`` file per column.

        Returns total bytes written.  MonetDB keeps imprints next to the
        BAT files for the same reason: skip the rebuild after a restart.
        The ``(table, column)`` key is stored in each file's header — the
        file name is only a human-friendly hint.
        """
        from .persist import save_segmented

        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        total = 0
        for i, ((table_name, column_name), imprint) in enumerate(
            sorted(self._imprints.items())
        ):
            safe = "".join(
                ch if ch.isalnum() or ch in "-_" else "_"
                for ch in f"{table_name}.{column_name}"
            )
            path = root / f"{i:04d}.{safe}.imprint"
            total += save_segmented(imprint, table_name, column_name, path)
        return total

    def load(self, tables: Dict[str, Table], directory: Union[str, Path]) -> int:
        """Restore imprints for the given tables; returns how many loaded.

        The key comes from each file's header (never from the file name,
        which cannot round-trip dotted table names).  Degradation is
        graceful, never fatal: a corrupt, truncated or stale (foreign
        snapshot) imprint file is **quarantined** — renamed to
        ``<name>.quarantined`` with a warning and a
        ``durability.quarantines`` count — and the first query on that
        column simply rebuilds the index lazily, exactly as if it had
        never been persisted.  Legacy flat (v1) files and files for
        tables/columns this database does not know are skipped silently.
        """
        import warnings

        from ...engine.durable import quarantine_file
        from .persist import (
            ImprintPersistError,
            load_segmented,
            looks_like_segmented,
            read_segmented_key,
        )

        root = Path(directory)
        if not root.is_dir():
            return 0
        loaded = 0

        def _quarantine(path: Path, exc: Exception) -> None:
            target = quarantine_file(path, reason=str(exc))
            where = target if target is not None else path
            warnings.warn(
                f"quarantined corrupt imprint {path.name}: {exc} "
                f"(moved to {getattr(where, 'name', where)}; the index "
                f"will be rebuilt lazily)",
                RuntimeWarning,
                stacklevel=3,
            )
            with self._lock:
                self.quarantined.append(str(where))

        for path in sorted(root.glob("*.imprint")):
            if not looks_like_segmented(path):
                continue  # legacy v1 / foreign file: lazy build covers it
            try:
                table_name, column_name = read_segmented_key(path)
            except ImprintPersistError as exc:
                _quarantine(path, exc)
                continue
            table = tables.get(table_name)
            if table is None or column_name not in table:
                continue
            try:
                imprint = load_segmented(table.column(column_name), path)
            except ImprintPersistError as exc:
                _quarantine(path, exc)
                continue
            with self._lock:
                self._imprints[(table_name, column_name)] = imprint
            loaded += 1
        return loaded

    @staticmethod
    def verify_directory(directory: Union[str, Path]) -> List[str]:
        """Issues with the imprint files under ``directory`` (no load).

        Structural/checksum verification only — used by
        ``Database``-level health reports; an empty list means every
        segmented imprint file parses and checksums cleanly.
        """
        from .persist import (
            ImprintPersistError,
            looks_like_segmented,
            verify_segmented_file,
        )

        root = Path(directory)
        issues: List[str] = []
        if not root.is_dir():
            return issues
        for path in sorted(root.glob("*.imprint")):
            if not looks_like_segmented(path):
                continue
            try:
                verify_segmented_file(path)
            except ImprintPersistError as exc:
                issues.append(str(exc))
        return issues
