"""The regular grid used by the refinement step.

Section 3.3: "MonetDB creates a regular grid over the point geometries
selected in the filtering step and assigns each geometry to a grid cell."
The grid is rebuilt per query over the envelope of the filter output, so
its resolution adapts to the query, not the dataset.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..gis.envelope import Box

#: Default number of cells the refinement grid aims for.  A ~32x32 grid
#: keeps cell classification (tens of microseconds per cell) negligible
#: next to the per-point tests it saves.
DEFAULT_TARGET_CELLS = 1024


class RegularGrid:
    """A uniform nx x ny grid over an envelope.

    Parameters
    ----------
    extent:
        The area to cover (normally the envelope of the candidate points
        intersected with the query envelope).
    target_cells:
        Approximate total cell budget; the split between axes follows the
        extent's aspect ratio so cells stay near-square.
    """

    def __init__(self, extent: Box, target_cells: int = DEFAULT_TARGET_CELLS) -> None:
        if target_cells < 1:
            raise ValueError("target_cells must be >= 1")
        self.extent = extent
        width = max(extent.width, 1e-12)
        height = max(extent.height, 1e-12)
        aspect = width / height
        ny = max(1, int(round((target_cells / aspect) ** 0.5)))
        nx = max(1, int(round(target_cells / ny)))
        self.nx = nx
        self.ny = ny
        self._cell_w = width / nx
        self._cell_h = height / ny

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny

    def cell_ids(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Flat cell id (row-major) per point; points must lie in extent
        (boundary values clamp into the last row/column)."""
        cx = ((np.asarray(xs) - self.extent.xmin) / self._cell_w).astype(np.int64)
        cy = ((np.asarray(ys) - self.extent.ymin) / self._cell_h).astype(np.int64)
        np.clip(cx, 0, self.nx - 1, out=cx)
        np.clip(cy, 0, self.ny - 1, out=cy)
        return cy * self.nx + cx

    def cell_box(self, cell_id: int) -> Box:
        """The rectangle of one cell."""
        cy, cx = divmod(int(cell_id), self.nx)
        if not (0 <= cx < self.nx and 0 <= cy < self.ny):
            raise ValueError(f"cell id {cell_id} out of range")
        return Box(
            self.extent.xmin + cx * self._cell_w,
            self.extent.ymin + cy * self._cell_h,
            self.extent.xmin + (cx + 1) * self._cell_w,
            self.extent.ymin + (cy + 1) * self._cell_h,
        )

    def cell_boxes(self, cell_ids: np.ndarray):
        """Rectangles of many cells as (xmin, ymin, xmax, ymax) arrays —
        the input shape of the batched classifier."""
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        cy, cx = np.divmod(cell_ids, self.nx)
        xmin = self.extent.xmin + cx * self._cell_w
        ymin = self.extent.ymin + cy * self._cell_h
        return (xmin, ymin, xmin + self._cell_w, ymin + self._cell_h)

    def group_points(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> Dict[int, np.ndarray]:
        """Map non-empty cell id -> positions (into xs/ys) of its points."""
        ids = self.cell_ids(xs, ys)
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        boundaries = np.flatnonzero(
            np.concatenate([[True], sorted_ids[1:] != sorted_ids[:-1]])
        )
        groups: Dict[int, np.ndarray] = {}
        stops = np.append(boundaries[1:], sorted_ids.shape[0])
        for start, stop in zip(boundaries, stops):
            groups[int(sorted_ids[start])] = order[start:stop]
        return groups
