"""The two-step spatial query pipeline: imprint filter -> grid refinement.

This is the paper's query model (Section 3.3) end to end:

1. **Filter** — the query geometry's envelope gives one range per axis;
   the column imprints on X and Y return candidate rows ("the majority of
   points that do not satisfy the spatial predicate ... are identified and
   disregarded using a fast approximation").
2. **Refine** — the surviving candidates go through the regular grid +
   cell classification of :mod:`repro.core.refine`; only boundary-cell
   points are tested exactly.

:class:`SpatialSelect` binds the pipeline to one flat table and exposes
``query(geometry, predicate, distance)``.  Every stage can be toggled for
the ablation benches (pure scan, no grid, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..engine.parallel import resolve_threads
from ..engine.select import intersect_candidates, mask_select, range_select
from ..engine.table import Table
from ..gis.envelope import Box
from ..gis.predicates import geometry_envelope, points_satisfy
from ..obs import heat as _heat
from ..obs.metrics import get_registry
from ..obs.queries import current_query, get_queries
from ..obs.resources import ResourceTracker, ResourceUsage
from ..obs.timing import now
from ..obs.trace import maybe_span
from .grid import DEFAULT_TARGET_CELLS
from .imprints.manager import ImprintsManager
from .refine import RefineStats, refine, refine_exhaustive


@dataclass
class QueryStats:
    """Phase timings and cardinalities for one spatial query.

    The phase boundaries are the same ones the tracer's spans wrap
    (``query.filter`` / ``query.refine`` / ``imprints.build``), so these
    numbers agree with an exported trace of the same query.
    """

    #: Seconds in the imprint filter step, *net of* lazy index builds.
    filter_seconds: float = 0.0
    refine_seconds: float = 0.0
    #: Seconds spent lazily building/extending imprints this query
    #: triggered (0.0 when the indexes were already warm).
    imprint_build_seconds: float = 0.0
    n_rows: int = 0
    n_filter_candidates: int = 0
    n_results: int = 0
    used_imprints: bool = True
    #: Worker count the query ran with (1 = the serial path).
    n_threads: int = 1
    #: Imprint segments the zone maps answered outright (disjoint range or
    #: whole-segment accept) — no imprint probe, no data access.
    n_segments_skipped: int = 0
    #: Imprint segments that paid a probe + exact candidate verification.
    n_segments_probed: int = 0
    refine_stats: RefineStats = field(default_factory=RefineStats)
    #: What the query *consumed* (CPU seconds incl. morsel workers, peak
    #: allocations, rows/bytes touched) — see :mod:`repro.obs.resources`.
    resources: ResourceUsage = field(default_factory=ResourceUsage)
    #: Registry identity of this execution (``""`` for the untracked
    #: empty-table fast path) — the id ``/debug/queries``, the slow log
    #: and the flight recorder all report.
    query_id: str = ""

    @property
    def total_seconds(self) -> float:
        """Wall time of the whole query, lazy imprint builds included —
        a cold first query no longer under-reports its cost."""
        return (
            self.filter_seconds + self.refine_seconds + self.imprint_build_seconds
        )

    @property
    def filter_selectivity(self) -> float:
        """Candidates / table rows (how much the filter step discards).

        ``nan`` for an empty table: 0/0 is not "perfectly selective",
        and the CLI footer renders it as ``-``.
        """
        if self.n_rows == 0:
            return float("nan")
        return self.n_filter_candidates / self.n_rows


@dataclass
class QueryResult:
    """Row ids satisfying the predicate, plus execution statistics."""

    oids: np.ndarray
    stats: QueryStats

    def __len__(self) -> int:
        return int(self.oids.shape[0])


class SpatialSelect:
    """Spatial selection over a flat point-cloud table.

    Parameters
    ----------
    table:
        The flat table (one row per point).
    x_column, y_column:
        Names of the coordinate columns.
    manager:
        Shared :class:`ImprintsManager`; a private one is created when
        omitted.  Sharing a manager across query objects mirrors MonetDB,
        where imprints belong to the column, not to the query.
    target_cells:
        Refinement grid budget.
    threads:
        Default worker count for this select's queries (``None`` = engine
        default, i.e. all cores; ``1`` = the exact serial path).  Each
        ``query`` call may override it.
    """

    def __init__(
        self,
        table: Table,
        x_column: str = "x",
        y_column: str = "y",
        manager: Optional[ImprintsManager] = None,
        target_cells: int = DEFAULT_TARGET_CELLS,
        threads: Optional[int] = None,
    ) -> None:
        self.table = table
        self.x_column = x_column
        self.y_column = y_column
        self.manager = manager if manager is not None else ImprintsManager()
        self.target_cells = target_cells
        self.threads = threads

    # -- the two steps ---------------------------------------------------------

    def _filter(
        self,
        env: Box,
        use_imprints: bool,
        threads: Optional[int] = None,
        stats: Optional[QueryStats] = None,
    ) -> np.ndarray:
        """Candidate rows whose (x, y) lies in the query envelope.

        MonetDB-style cascade: the first select probes the column imprint,
        the second consumes the survivor candidate list and scans only
        those rows.  The imprint goes to the axis where the query covers
        the smaller fraction of the column's domain (most selective probe
        first).
        """
        x_col = self.table.column(self.x_column)
        y_col = self.table.column(self.y_column)
        x_lo, x_hi = x_col.minmax()
        y_lo, y_hi = y_col.minmax()
        x_fraction = (env.xmax - env.xmin) / max(float(x_hi) - float(x_lo), 1e-300)
        y_fraction = (env.ymax - env.ymin) / max(float(y_hi) - float(y_lo), 1e-300)
        if x_fraction <= y_fraction:
            first_name, first_lo, first_hi = self.x_column, env.xmin, env.xmax
            second_col, second_lo, second_hi = y_col, env.ymin, env.ymax
        else:
            first_name, first_lo, first_hi = self.y_column, env.ymin, env.ymax
            second_col, second_lo, second_hi = x_col, env.xmin, env.xmax

        if use_imprints:
            first = self.manager.range_select(
                self.table,
                first_name,
                first_lo,
                first_hi,
                threads=threads,
                stats=stats,
            )
        else:
            first = range_select(
                self.table.column(first_name), first_lo, first_hi, threads=threads
            )
        return range_select(
            second_col, second_lo, second_hi, candidates=first, threads=threads
        )

    def query(
        self,
        geometry,
        predicate: str = "contains",
        distance: float = 0.0,
        use_imprints: bool = True,
        use_grid: bool = True,
        z_column: Optional[str] = None,
        z_range: Optional[tuple] = None,
        threads: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> QueryResult:
        """Rows whose point satisfies ``predicate`` against ``geometry``.

        ``geometry`` may be any :mod:`repro.gis` geometry or a raw
        :class:`~repro.gis.envelope.Box`.  ``predicate`` is ``contains`` /
        ``intersects`` (synonyms for points) or ``dwithin`` with
        ``distance``.

        ``z_range=(zmin, zmax)`` (with ``z_column``, default ``"z"``)
        turns the selection into the 3-D box/prism query the paper's
        conclusions motivate ("enable 3D operations and analyses"): the
        elevation slab is filtered through the z column's imprint and
        intersected with the 2-D candidates before refinement.

        ``threads`` overrides the select's default worker count for this
        query only; whatever the value, the oid array is identical to the
        serial (``threads=1``) result.

        ``timeout_s`` arms a cooperative deadline, checked at morsel and
        segment boundaries: a query that outruns it raises
        :class:`~repro.obs.queries.QueryCancelled` and its registry
        record is marked ``cancelled``.
        """
        threads = threads if threads is not None else self.threads
        if len(self.table) == 0:
            return QueryResult(
                oids=np.empty(0, dtype=np.int64),
                stats=QueryStats(n_rows=0, used_imprints=use_imprints),
            )
        # The tracker accumulates this thread's CPU at exit and receives
        # worker CPU / scan volumes from run_tasks and the select
        # operators while open; the histogram is observed after exit,
        # once the caller-thread delta has landed.
        tracker = ResourceTracker()
        with get_queries().track(
            "spatial",
            detail={"table": self.table.name, "predicate": predicate},
            timeout_s=timeout_s,
            tracker=tracker,
        ) as active:
            with tracker:
                result = self._query_traced(
                    geometry,
                    predicate,
                    distance,
                    use_imprints,
                    use_grid,
                    z_column,
                    z_range,
                    threads,
                )
        result.stats.resources = tracker.usage
        result.stats.query_id = active.query_id
        get_registry().histogram("query.cpu_seconds").observe(
            tracker.usage.cpu_seconds
        )
        self._record_heat(geometry, predicate, distance, tracker.usage)
        return result

    def _record_heat(
        self,
        geometry,
        predicate: str,
        distance: float,
        usage: ResourceUsage,
    ) -> None:
        """Fold this query's bbox footprint into the workload heat map.

        Outside the tracker/track windows so the bookkeeping never counts
        against the query's own resource or latency accounting.
        """
        heat = _heat.maybe_heat()
        if heat is None:
            return
        env = geometry_envelope(geometry)
        if predicate == "dwithin":
            env = env.expand(distance)
        x_lo, x_hi = self.table.column(self.x_column).minmax()
        y_lo, y_hi = self.table.column(self.y_column).minmax()
        nbytes = int(usage.encoded_bytes + usage.materialized_bytes)
        if nbytes == 0:
            nbytes = int(usage.bytes_touched)
        heat.record_footprint(
            table=self.table.name,
            bbox=(env.xmin, env.ymin, env.xmax, env.ymax),
            domain=(float(x_lo), float(y_lo), float(x_hi), float(y_hi)),
            nbytes=nbytes,
        )

    def _query_traced(
        self,
        geometry,
        predicate: str,
        distance: float,
        use_imprints: bool,
        use_grid: bool,
        z_column: Optional[str],
        z_range: Optional[tuple],
        threads: Optional[int],
    ) -> QueryResult:
        with maybe_span(
            "query.spatial", table=self.table.name, predicate=predicate
        ) as query_span:
            active = current_query()
            if active is not None:
                query_span.set(query_id=active.query_id)
                trace_id = getattr(query_span, "trace_id", 0)
                if trace_id:
                    active.set_trace(int(trace_id))
                active.set_phase("filter")
            stats = QueryStats(
                n_rows=len(self.table),
                used_imprints=use_imprints,
                n_threads=resolve_threads(threads),
            )
            # The filter window opens before envelope derivation so that
            # geometry parsing counts toward the reported wall time.
            t0 = now()
            env = geometry_envelope(geometry)
            if predicate == "dwithin":
                env = env.expand(distance)

            with maybe_span("query.filter") as filter_span:
                candidates = self._filter(
                    env, use_imprints, threads=threads, stats=stats
                )
                if z_range is not None:
                    zmin, zmax = z_range
                    column_name = z_column if z_column is not None else "z"
                    if use_imprints:
                        z_cands = self.manager.range_select(
                            self.table,
                            column_name,
                            zmin,
                            zmax,
                            threads=threads,
                            stats=stats,
                        )
                        candidates = intersect_candidates(candidates, z_cands)
                    else:
                        candidates = range_select(
                            self.table.column(column_name),
                            zmin,
                            zmax,
                            candidates=candidates,
                            threads=threads,
                        )
                filter_span.set(
                    rows_in=stats.n_rows,
                    rows_out=int(candidates.shape[0]),
                    segments_skipped=stats.n_segments_skipped,
                    segments_probed=stats.n_segments_probed,
                )
            t1 = now()

            # Lazy builds were timed by the manager; report the filter
            # phase net of them so the phases sum to the wall clock.
            stats.filter_seconds = max(
                (t1 - t0) - stats.imprint_build_seconds, 0.0
            )
            stats.n_filter_candidates = int(candidates.shape[0])

            # A box query with a containment predicate *is* its own envelope
            # test: the filter step is already exact, skip refinement.
            if isinstance(geometry, Box) and predicate in (
                "contains",
                "intersects",
                "within",
            ):
                stats.n_results = int(candidates.shape[0])
                query_span.set(rows_out=stats.n_results)
                self._record_metrics(stats)
                return QueryResult(oids=candidates, stats=stats)

            if active is not None:
                active.set_phase("refine")
            with maybe_span("query.refine") as refine_span:
                xs = self.table.column(self.x_column).take(candidates)
                ys = self.table.column(self.y_column).take(candidates)
                if use_grid:
                    mask, refine_stats = refine(
                        xs,
                        ys,
                        geometry,
                        predicate,
                        distance,
                        target_cells=self.target_cells,
                        threads=threads,
                    )
                else:
                    mask, refine_stats = refine_exhaustive(
                        xs, ys, geometry, predicate, distance, threads=threads
                    )
                refine_span.set(
                    rows_in=int(candidates.shape[0]),
                    boundary_cells=refine_stats.boundary_cells,
                    points_tested_exact=refine_stats.points_tested_exact,
                )
            t2 = now()

            stats.refine_seconds = t2 - t1
            stats.refine_stats = refine_stats
            oids = mask_select(mask, candidates)
            stats.n_results = int(oids.shape[0])
            query_span.set(rows_out=stats.n_results)
            self._record_metrics(stats)
            return QueryResult(oids=oids, stats=stats)

    @staticmethod
    def _record_metrics(stats: QueryStats) -> None:
        """Fold one query's stats into the process-wide registry."""
        registry = get_registry()
        registry.counter("query.count").inc()
        registry.counter("query.segments_skipped").inc(stats.n_segments_skipped)
        registry.counter("query.segments_probed").inc(stats.n_segments_probed)
        registry.histogram("query.filter_seconds").observe(stats.filter_seconds)
        registry.histogram("query.refine_seconds").observe(stats.refine_seconds)
        registry.histogram("query.total_seconds").observe(stats.total_seconds)

    # -- reference path ----------------------------------------------------------

    def query_scan(
        self, geometry, predicate: str = "contains", distance: float = 0.0
    ) -> np.ndarray:
        """Brute-force evaluation over every row (correctness oracle)."""
        xs = np.asarray(self.table.column(self.x_column).values)
        ys = np.asarray(self.table.column(self.y_column).values)
        mask = points_satisfy(xs, ys, geometry, predicate, distance)
        return np.flatnonzero(mask).astype(np.int64)
