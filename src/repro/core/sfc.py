"""2-D space-filling curves: Morton (Z-order) and Hilbert.

Section 2.3: "Sorting the point cloud data using space filling curves is a
common technique used by spatial DBMS and file-based solutions ... useful
to exploit the spatial coherence of the data through spatial location
codes."  Oracle sorts point-cloud blocks along a Hilbert curve; LAStools'
``lassort`` uses a Z-order.  Both curves are implemented here, vectorised,
and drive ``lassort`` (:mod:`repro.lastools.lassort`) and block ordering in
the blockstore baseline.

Coordinates are unsigned cell indices on a 2^order x 2^order grid; use
:func:`quantize` to map world coordinates onto the grid.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Default grid refinement: 16 bits per axis -> 32-bit codes.
DEFAULT_ORDER = 16
MAX_ORDER = 31


def _check_order(order: int) -> None:
    if not 1 <= order <= MAX_ORDER:
        raise ValueError(f"curve order must be in [1, {MAX_ORDER}]")


def _check_cells(x: np.ndarray, y: np.ndarray, order: int) -> None:
    limit = 1 << order
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    if x.size and (
        x.min() < 0 or y.min() < 0 or x.max() >= limit or y.max() >= limit
    ):
        raise ValueError(f"cell indices must lie in [0, {limit})")


def quantize(
    coords: np.ndarray, lo: float, hi: float, order: int = DEFAULT_ORDER
) -> np.ndarray:
    """Map world coordinates in [lo, hi] to cells in [0, 2^order).

    Values on the upper boundary map to the last cell; out-of-range values
    are clipped (file bounding boxes are sometimes loose in practice).
    """
    _check_order(order)
    if not hi > lo:
        raise ValueError("quantize needs hi > lo")
    cells = (np.asarray(coords, dtype=np.float64) - lo) / (hi - lo)
    cells = (cells * (1 << order)).astype(np.int64)
    return np.clip(cells, 0, (1 << order) - 1)


# -- Morton (Z-order) ---------------------------------------------------------


def _part1by1(v: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of each value: abcd -> a0b0c0d0."""
    v = v.astype(np.uint64) & np.uint64(0xFFFFFFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


def _compact1by1(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by1`."""
    v = v.astype(np.uint64) & np.uint64(0x5555555555555555)
    v = (v | (v >> np.uint64(1))) & np.uint64(0x3333333333333333)
    v = (v | (v >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v >> np.uint64(16))) & np.uint64(0x00000000FFFFFFFF)
    return v


def morton_encode(
    x: np.ndarray, y: np.ndarray, order: int = DEFAULT_ORDER
) -> np.ndarray:
    """Interleave cell coordinates into Z-order codes (vectorised)."""
    _check_order(order)
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    _check_cells(x, y, order)
    return (_part1by1(x) | (_part1by1(y) << np.uint64(1))).astype(np.uint64)


def morton_decode(
    codes: np.ndarray, order: int = DEFAULT_ORDER
) -> Tuple[np.ndarray, np.ndarray]:
    """Z-order codes back to (x, y) cell coordinates."""
    _check_order(order)
    codes = np.asarray(codes, dtype=np.uint64)
    x = _compact1by1(codes)
    y = _compact1by1(codes >> np.uint64(1))
    return x.astype(np.int64), y.astype(np.int64)


# -- Hilbert ------------------------------------------------------------------


def hilbert_encode(
    x: np.ndarray, y: np.ndarray, order: int = DEFAULT_ORDER
) -> np.ndarray:
    """Hilbert curve distance of each (x, y) cell (vectorised).

    Iterative rotate-and-accumulate formulation (Sagan [15]; the classic
    Warren/Wikipedia ``xy2d``), processing one quadrant bit per level.
    """
    _check_order(order)
    x = np.asarray(x, dtype=np.int64).copy()
    y = np.asarray(y, dtype=np.int64).copy()
    _check_cells(x, y, order)
    d = np.zeros(x.shape, dtype=np.uint64)
    s = np.int64(1 << (order - 1))
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += np.uint64(s) * np.uint64(s) * ((3 * rx) ^ ry).astype(np.uint64)
        # Rotate the quadrant so the curve stays continuous.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x, y = np.where(swap, y_f, x_f), np.where(swap, x_f, y_f)
        s >>= 1
    return d


def hilbert_decode(
    codes: np.ndarray, order: int = DEFAULT_ORDER
) -> Tuple[np.ndarray, np.ndarray]:
    """Hilbert distances back to (x, y) cells (inverse of encode)."""
    _check_order(order)
    codes = np.asarray(codes, dtype=np.uint64).copy()
    x = np.zeros(codes.shape, dtype=np.int64)
    y = np.zeros(codes.shape, dtype=np.int64)
    t = codes.astype(np.uint64)
    s = np.uint64(1)
    top = np.uint64(1 << order)
    while s < top:
        rx = ((t // np.uint64(2)) & np.uint64(1)).astype(np.int64)
        ry = ((t ^ rx.astype(np.uint64)) & np.uint64(1)).astype(np.int64)
        # Rotate back.
        swap = ry == 0
        flip = swap & (rx == 1)
        s64 = np.int64(s)
        x_f = np.where(flip, s64 - 1 - x, x)
        y_f = np.where(flip, s64 - 1 - y, y)
        x, y = np.where(swap, y_f, x_f), np.where(swap, x_f, y_f)
        x += s64 * rx
        y += s64 * ry
        t //= np.uint64(4)
        s <<= np.uint64(1)
    return x, y


def sort_order(
    x: np.ndarray,
    y: np.ndarray,
    lo_x: float,
    hi_x: float,
    lo_y: float,
    hi_y: float,
    curve: str = "morton",
    order: int = DEFAULT_ORDER,
) -> np.ndarray:
    """Permutation sorting world points along a space-filling curve.

    The workhorse behind ``lassort`` and blockstore ordering: quantise both
    axes, encode, argsort.
    """
    cx = quantize(x, lo_x, hi_x, order)
    cy = quantize(y, lo_y, hi_y, order)
    if curve == "morton":
        codes = morton_encode(cx, cy, order)
    elif curve == "hilbert":
        codes = hilbert_encode(cx, cy, order)
    else:
        raise ValueError(f"unknown curve {curve!r} (use 'morton' or 'hilbert')")
    return np.argsort(codes, kind="stable")
