"""The refinement step: grid-based cell classification + exact point tests.

Section 3.3: after filtering produced "a superset of the solution", the
refinement step evaluates the precise predicate.  "Checking exhaustively
each point is not desirable", so candidate points are bucketed into a
regular grid, each non-empty cell is classified against the query geometry
in a single step, and only points in *boundary* cells are tested
individually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..engine import parallel
from ..gis import batch
from ..gis.envelope import Box
from ..gis.predicates import points_satisfy
from ..obs.trace import maybe_span
from .grid import DEFAULT_TARGET_CELLS, RegularGrid


@dataclass
class RefineStats:
    """Work accounting for one refinement pass (E5 bench metrics)."""

    n_candidates: int = 0
    n_cells: int = 0
    inside_cells: int = 0
    outside_cells: int = 0
    boundary_cells: int = 0
    points_accepted_wholesale: int = 0
    points_rejected_wholesale: int = 0
    points_tested_exact: int = 0
    used_grid: bool = True

    @property
    def exact_test_fraction(self) -> float:
        """Share of candidates that needed an individual predicate test —
        the quantity the grid exists to minimise."""
        if self.n_candidates == 0:
            return 0.0
        return self.points_tested_exact / self.n_candidates


def _parallel_point_tests(
    xs: np.ndarray,
    ys: np.ndarray,
    geom,
    predicate: str,
    distance: float,
    threads: Optional[int],
) -> np.ndarray:
    """``points_satisfy`` over morsels of the candidate arrays.

    Disjoint output slices make the parallel result bit-identical to the
    serial call; small inputs never touch the pool.
    """
    n = np.asarray(xs).shape[0]
    n_threads = parallel.resolve_threads(threads)
    if n_threads <= 1 or n < 2 * parallel.MIN_PARALLEL_ROWS:
        return points_satisfy(xs, ys, geom, predicate, distance)
    mask = np.empty(n, dtype=bool)

    def test(span):
        start, stop = span
        mask[start:stop] = points_satisfy(
            xs[start:stop], ys[start:stop], geom, predicate, distance
        )

    parallel.run_tasks(test, parallel.morsels(n), threads=n_threads)
    return mask


def refine_exhaustive(
    xs: np.ndarray,
    ys: np.ndarray,
    geom,
    predicate: str = "contains",
    distance: float = 0.0,
    threads: Optional[int] = None,
) -> tuple:
    """Baseline refinement: test every candidate point (no grid).

    Returns (boolean mask over candidates, stats).  Used as the ablation
    arm of E5 and as the per-cell kernel for boundary cells.
    """
    with maybe_span("refine.exhaustive") as span:
        mask = _parallel_point_tests(xs, ys, geom, predicate, distance, threads)
        stats = RefineStats(
            n_candidates=int(np.asarray(xs).shape[0]),
            points_tested_exact=int(np.asarray(xs).shape[0]),
            used_grid=False,
        )
        span.set(points_tested=stats.points_tested_exact)
    return mask, stats


def refine(
    xs: np.ndarray,
    ys: np.ndarray,
    geom,
    predicate: str = "contains",
    distance: float = 0.0,
    target_cells: int = DEFAULT_TARGET_CELLS,
    extent: Optional[Box] = None,
    threads: Optional[int] = None,
) -> tuple:
    """Grid-accelerated refinement over candidate coordinates.

    Parameters
    ----------
    xs, ys:
        Coordinates of the filter step's candidate points.
    geom, predicate, distance:
        The precise spatial predicate to enforce.
    target_cells:
        Grid resolution budget.
    extent:
        Grid extent override; defaults to the candidates' tight envelope.
    threads:
        Worker count for the boundary-cell exact tests (``None`` = engine
        default, ``1`` = serial).  Boundary cells are batched into
        morsel-sized groups of whole cells and fanned out; results are
        identical to the serial path.

    Returns ``(mask, stats)`` where ``mask`` is boolean over the candidate
    arrays — exactly what :func:`refine_exhaustive` returns, just cheaper.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    n = xs.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool), RefineStats()
    if extent is None:
        extent = Box(xs.min(), ys.min(), xs.max(), ys.max())

    grid = RegularGrid(extent, target_cells=target_cells)
    groups = grid.group_points(xs, ys)
    mask = np.zeros(n, dtype=bool)
    stats = RefineStats(n_candidates=n, n_cells=len(groups))

    # Classify every non-empty cell in one vectorised pass.
    with maybe_span("refine.classify") as classify_span:
        cell_ids = np.fromiter(groups.keys(), dtype=np.int64, count=len(groups))
        relations = batch.classify_boxes(
            grid.cell_boxes(cell_ids), geom, predicate, distance
        )

        boundary_members = []
        for relation, members in zip(relations, groups.values()):
            if relation == batch.INSIDE:
                mask[members] = True
                stats.inside_cells += 1
                stats.points_accepted_wholesale += members.shape[0]
            elif relation == batch.OUTSIDE:
                stats.outside_cells += 1
                stats.points_rejected_wholesale += members.shape[0]
            else:
                boundary_members.append(members)
                stats.boundary_cells += 1
                stats.points_tested_exact += members.shape[0]
        classify_span.set(
            n_cells=stats.n_cells,
            inside=stats.inside_cells,
            outside=stats.outside_cells,
            boundary=stats.boundary_cells,
        )

    # Exact tests for all boundary-cell points.  Whole cells are grouped
    # into morsel-sized batches and fanned out across the pool; each batch
    # writes a disjoint set of mask positions, so the outcome matches the
    # single-call serial evaluation exactly.
    if boundary_members:
        with maybe_span("refine.exact") as exact_span:
            batches = _cell_batches(boundary_members)

            def test_batch(tested: np.ndarray) -> None:
                mask[tested] = points_satisfy(
                    xs[tested], ys[tested], geom, predicate, distance
                )

            parallel.run_tasks(test_batch, batches, threads=threads)
            exact_span.set(
                points_tested=stats.points_tested_exact, batches=len(batches)
            )
    return mask, stats


def _cell_batches(
    members: list, batch_rows: int = parallel.MORSEL_ROWS // 4
) -> list:
    """Group per-cell index arrays into ~equal point-count batches.

    Cells stay whole within a batch (the fan-out unit is a *batch of
    cells*, never a split cell), so per-batch predicate evaluations see
    spatially coherent points.
    """
    batches = []
    bucket: list = []
    bucket_rows = 0
    for cell in members:
        bucket.append(cell)
        bucket_rows += cell.shape[0]
        if bucket_rows >= batch_rows:
            batches.append(np.concatenate(bucket))
            bucket, bucket_rows = [], 0
    if bucket:
        batches.append(np.concatenate(bucket))
    return batches
