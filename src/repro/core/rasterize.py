"""Elevation products from point clouds: DSM, DTM, CHM grids.

Section 1: airborne laser scanning collects "large amounts of point data
to be the base of digital surface or elevation models".  This module
derives those models from a flat-table cloud:

* **DSM** (digital surface model) — highest return per cell: terrain +
  buildings + canopy;
* **DTM** (digital terrain model) — ground-classified returns only,
  aggregated per cell and hole-filled from neighbours;
* **CHM** (canopy height model) — DSM minus DTM.

Rasterisation is a pure columnar pipeline: one pass to bin points into
cells (the same arithmetic as the refinement grid), then grouped
aggregation per cell — the kind of analysis the demo argues belongs in
the DBMS rather than in per-file scripts.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..gis.envelope import Box

#: ASPRS ground class used for DTM extraction.
GROUND_CLASS = 2


@dataclass
class ElevationGrid:
    """A regular elevation raster over a world extent.

    ``values`` is (ny, nx) float64 with NaN for empty cells; row 0 is the
    *south* edge (ascending y), matching the world-coordinate convention
    of :class:`~repro.core.grid.RegularGrid`.
    """

    values: np.ndarray
    extent: Box

    @property
    def shape(self) -> tuple:
        return self.values.shape

    @property
    def cell_size(self) -> tuple:
        ny, nx = self.values.shape
        return (self.extent.width / nx, self.extent.height / ny)

    @property
    def coverage(self) -> float:
        """Fraction of cells holding data."""
        return float(np.isfinite(self.values).mean())

    def filled(self, iterations: int = 4) -> "ElevationGrid":
        """Hole-fill NaN cells from the mean of their 8-neighbourhood.

        Iterative dilation: each pass fills cells adjacent to data; holes
        wider than ``iterations`` cells stay NaN (honest no-data).
        """
        values = self.values.copy()
        for _ in range(iterations):
            holes = ~np.isfinite(values)
            if not holes.any():
                break
            padded = np.pad(values, 1, constant_values=np.nan)
            neighbours = np.stack(
                [
                    padded[dy : dy + values.shape[0], dx : dx + values.shape[1]]
                    for dy in range(3)
                    for dx in range(3)
                    if not (dy == 1 and dx == 1)
                ]
            )
            import warnings

            with np.errstate(invalid="ignore"), warnings.catch_warnings():
                # All-NaN neighbourhoods legitimately yield NaN fills.
                warnings.simplefilter("ignore", category=RuntimeWarning)
                fill = np.nanmean(neighbours, axis=0)
            values[holes] = fill[holes]
        return ElevationGrid(values=values, extent=self.extent)

    def minus(self, other: "ElevationGrid") -> "ElevationGrid":
        """Cellwise difference (e.g. CHM = DSM - DTM)."""
        if self.values.shape != other.values.shape:
            raise ValueError("grids have different shapes")
        return ElevationGrid(
            values=self.values - other.values, extent=self.extent
        )


def _bin_points(
    xs: np.ndarray, ys: np.ndarray, extent: Box, nx: int, ny: int
) -> np.ndarray:
    """Flat cell id per point (row-major, row 0 = south)."""
    cx = ((np.asarray(xs) - extent.xmin) / extent.width * nx).astype(np.int64)
    cy = ((np.asarray(ys) - extent.ymin) / extent.height * ny).astype(np.int64)
    np.clip(cx, 0, nx - 1, out=cx)
    np.clip(cy, 0, ny - 1, out=cy)
    return cy * nx + cx


def _aggregate_to_grid(
    cell_ids: np.ndarray,
    zs: np.ndarray,
    n_cells: int,
    how: str,
) -> np.ndarray:
    out = np.full(n_cells, np.nan)
    if cell_ids.shape[0] == 0:
        return out
    order = np.argsort(cell_ids, kind="stable")
    sorted_ids = cell_ids[order]
    sorted_zs = np.asarray(zs, dtype=np.float64)[order]
    boundaries = np.flatnonzero(
        np.concatenate([[True], sorted_ids[1:] != sorted_ids[:-1]])
    )
    groups = sorted_ids[boundaries]
    if how == "max":
        values = np.maximum.reduceat(sorted_zs, boundaries)
    elif how == "min":
        values = np.minimum.reduceat(sorted_zs, boundaries)
    elif how == "mean":
        sums = np.add.reduceat(sorted_zs, boundaries)
        counts = np.diff(np.append(boundaries, sorted_ids.shape[0]))
        values = sums / counts
    else:
        raise ValueError(f"unknown aggregation {how!r}")
    out[groups] = values
    return out


def rasterize(
    xs: np.ndarray,
    ys: np.ndarray,
    zs: np.ndarray,
    extent: Box,
    cell_size: float,
    how: str = "max",
) -> ElevationGrid:
    """Aggregate points onto a regular grid.

    ``cell_size`` is in world units (metres); ``how`` is ``max`` (DSM
    convention), ``min`` or ``mean``.
    """
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    nx = max(1, int(round(extent.width / cell_size)))
    ny = max(1, int(round(extent.height / cell_size)))
    cell_ids = _bin_points(xs, ys, extent, nx, ny)
    flat = _aggregate_to_grid(cell_ids, zs, nx * ny, how)
    return ElevationGrid(values=flat.reshape(ny, nx), extent=extent)


def dsm(
    xs, ys, zs, extent: Box, cell_size: float
) -> ElevationGrid:
    """Digital surface model: highest return per cell."""
    return rasterize(xs, ys, zs, extent, cell_size, how="max")


def dtm(
    xs,
    ys,
    zs,
    classification,
    extent: Box,
    cell_size: float,
    fill_iterations: int = 4,
) -> ElevationGrid:
    """Digital terrain model: ground-class returns, hole-filled.

    Cells with no ground return (under buildings, dense canopy) are
    filled from neighbouring ground cells.
    """
    mask = np.asarray(classification) == GROUND_CLASS
    grid = rasterize(
        np.asarray(xs)[mask],
        np.asarray(ys)[mask],
        np.asarray(zs)[mask],
        extent,
        cell_size,
        how="mean",
    )
    return grid.filled(iterations=fill_iterations)


def chm(
    xs, ys, zs, classification, extent: Box, cell_size: float
) -> ElevationGrid:
    """Canopy height model: DSM minus DTM, clipped at zero."""
    surface = dsm(xs, ys, zs, extent, cell_size)
    terrain = dtm(xs, ys, zs, classification, extent, cell_size)
    diff = surface.minus(terrain)
    with np.errstate(invalid="ignore"):
        diff.values[diff.values < 0] = 0.0
    return diff


def hillshade(
    grid: ElevationGrid,
    azimuth_deg: float = 315.0,
    altitude_deg: float = 45.0,
    z_factor: float = 1.0,
) -> np.ndarray:
    """Lambertian hillshade of an elevation grid (0..1 per cell).

    Standard GIS formulation: surface normals from central differences,
    dotted with the sun vector.  NaN cells shade as 0.5 (flat grey).
    """
    values = grid.values
    dx, dy = grid.cell_size
    # axis 0 is y (row 0 = south, so +axis0 = north), axis 1 is x (east).
    gy, gx = np.gradient(np.nan_to_num(values, nan=np.nanmean(values)))
    dzdx = gx * z_factor / dx
    dzdy = gy * z_factor / dy
    # The standard (ESRI) formulation: math-convention sun azimuth,
    # aspect as the downslope direction.
    slope = np.arctan(np.hypot(dzdx, dzdy))
    aspect = np.arctan2(dzdy, -dzdx)
    azimuth_math = np.deg2rad((360.0 - azimuth_deg + 90.0) % 360.0)
    zenith = np.deg2rad(90.0 - altitude_deg)
    shaded = np.cos(zenith) * np.cos(slope) + np.sin(zenith) * np.sin(
        slope
    ) * np.cos(azimuth_math - aspect)
    shaded = np.clip(shaded, 0.0, 1.0)
    shaded[~np.isfinite(values)] = 0.5
    return shaded
