"""The paper's primary contribution: imprints + two-step spatial queries.

* :mod:`repro.core.imprints` — the column imprints secondary index.
* :mod:`repro.core.grid` / :mod:`repro.core.refine` — the regular-grid
  refinement step.
* :mod:`repro.core.query` — :class:`SpatialSelect`, the filter-refine
  pipeline over a flat table.
* :mod:`repro.core.sfc` — Morton/Hilbert space-filling curves (used by the
  baselines and ablations).
"""

from .grid import RegularGrid
from .imprints import ColumnImprints, ImprintsManager
from .query import QueryResult, QueryStats, SpatialSelect
from .rasterize import ElevationGrid, chm, dsm, dtm, hillshade, rasterize
from .refine import RefineStats, refine, refine_exhaustive

__all__ = [
    "ColumnImprints",
    "ElevationGrid",
    "ImprintsManager",
    "QueryResult",
    "QueryStats",
    "RefineStats",
    "RegularGrid",
    "SpatialSelect",
    "chm",
    "dsm",
    "dtm",
    "hillshade",
    "rasterize",
    "refine",
    "refine_exhaustive",
]
