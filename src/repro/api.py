"""The public facade: a "spatially-enabled DBMS" in one object.

:class:`PointCloudDB` wires the pieces of the paper's architecture
together — flat tables (Section 3.1), the binary bulk loader (Section
3.2), lazily built column imprints and the two-step spatial query model
(Section 3.3), and the SQL layer for ad-hoc spatio-thematic queries
(Section 4.2)::

    from repro import PointCloudDB

    db = PointCloudDB()
    db.create_pointcloud("ahn2")
    db.load_las("ahn2", las_paths)
    result = db.spatial_select("ahn2", polygon)
    rows = db.sql("SELECT avg(z) FROM ahn2 WHERE ...").rows
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Union

import numpy as np

from .core.imprints import ImprintsManager
from .core.query import QueryResult, SpatialSelect
from .engine.catalog import Database
from .engine.table import Table
from .las.binloader import LoadStats, create_flat_table, load_arrays, load_files
from .gis.predicates import geometry_envelope
from .obs.context import ObsContext, default_context
from .obs.slowlog import (
    DEFAULT_LOG_NAME,
    SlowQueryLog,
    path_from_env,
    threshold_from_env,
)
from .obs.trace import Tracer, get_tracer
from .sql.executor import Result, Session

PathLike = Union[str, Path]


def _query_hot_stacks(query_id: str) -> Optional[Dict[str, object]]:
    """The always-on profiler's hot stacks for one query, if sampled.

    ``maybe_profiler`` never creates — databases without serve-mode
    profiling pay one module-global read per slow-logged query.
    """
    from .obs.profiler import maybe_profiler

    profiler = maybe_profiler()
    if profiler is None:
        return None
    return profiler.query_summary(query_id)


class PointCloudDB:
    """A column-store point-cloud database with GIS functionality.

    Parameters
    ----------
    directory:
        Optional persistence root (forwarded to the engine catalog).
    threads:
        Default worker count for imprint builds and query execution
        (``None`` = all cores, ``1`` = serial).  Every query may override
        it with ``threads=``; results are identical either way.
    tracing:
        ``True`` enables this database's span tracer (``False`` disables
        it); ``None`` leaves it as-is (the ``REPRO_TRACE`` env var
        default).  Tracing off costs one attribute check per span site.
    slow_query_s:
        Arm the slow-query log: queries (spatial or SQL) taking at least
        this many wall-clock seconds append one structured JSONL record
        (identity, stats, resources, span tree) to ``slow_query_log``.
        ``None`` falls back to ``REPRO_SLOW_QUERY_S``; when neither is
        set the log is off and queries pay nothing.
    slow_query_log:
        The JSONL file for slow-query records.  Defaults to
        ``REPRO_SLOW_QUERY_LOG``, else ``slow-query.jsonl`` next to the
        database directory (or the working directory without one).
    obs:
        The :class:`~repro.obs.context.ObsContext` this database's
        queries run under — its tracer, metrics registry and query
        registry.  Defaults to the process-wide default context
        (wrapping the module singletons, the pre-context behaviour);
        pass ``ObsContext.fresh()`` to observe two databases in one
        process independently.
    """

    def __init__(
        self,
        directory: Optional[PathLike] = None,
        threads: Optional[int] = None,
        tracing: Optional[bool] = None,
        slow_query_s: Optional[float] = None,
        slow_query_log: Optional[PathLike] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.db = Database(directory=directory)
        self.threads = threads
        self.manager = ImprintsManager(threads=threads)
        self._selects: Dict[str, SpatialSelect] = {}
        self._vector_relations: Dict[str, Dict] = {}
        self.obs = obs if obs is not None else default_context()
        if tracing is not None:
            tracer = self.obs.tracer
            tracer.enable() if tracing else tracer.disable()
        if slow_query_s is None:
            slow_query_s = threshold_from_env()
        self.slow_log: Optional[SlowQueryLog] = None
        if slow_query_s is not None:
            log_path: Optional[PathLike] = (
                slow_query_log if slow_query_log is not None else path_from_env()
            )
            if log_path is None:
                root = Path(directory) if directory is not None else Path(".")
                log_path = root / DEFAULT_LOG_NAME
            self.slow_log = SlowQueryLog(slow_query_s, log_path)

    # -- point clouds ------------------------------------------------------------

    def create_pointcloud(self, name: str = "points") -> Table:
        """Create a 26-column flat point-cloud table."""
        table = create_flat_table(self.db, name)
        self._selects[name] = SpatialSelect(
            table, manager=self.manager, threads=self.threads
        )
        return table

    def load_las(
        self,
        name: str,
        paths: Iterable[PathLike],
        spool_dir: Optional[PathLike] = None,
    ) -> LoadStats:
        """Bulk-load LAS/LAZ tiles via the binary loader."""
        return load_files(self.db.table(name), paths, spool_dir=spool_dir)

    def load_points(self, name: str, columns: Dict[str, np.ndarray]) -> LoadStats:
        """Bulk-load an in-memory column batch (e.g. from the generator)."""
        return load_arrays(self.db.table(name), columns)

    def table(self, name: str) -> Table:
        return self.db.table(name)

    # -- spatial queries ------------------------------------------------------------

    def spatial_select(
        self,
        name: str,
        geometry,
        predicate: str = "contains",
        distance: float = 0.0,
        **kwargs,
    ) -> QueryResult:
        """Two-step (imprints filter + grid refine) spatial selection.

        Accepts the :meth:`SpatialSelect.query` keywords, including
        ``threads=`` to override the database default for one query and
        ``timeout_s=`` for a cooperative deadline.
        """
        select = self.select_for(name)
        with self.obs.activate():
            if self.slow_log is None:
                return select.query(geometry, predicate, distance, **kwargs)
            env = geometry_envelope(geometry)
            with self.slow_log.observe(
                "spatial",
                table=name,
                predicate=predicate,
                bbox=[env.xmin, env.ymin, env.xmax, env.ymax],
            ) as observation:
                result = select.query(geometry, predicate, distance, **kwargs)
                usage = result.stats.resources
                observation.set(
                    query_id=result.stats.query_id,
                    rows=len(result),
                    stats={
                        "filter_seconds": result.stats.filter_seconds,
                        "refine_seconds": result.stats.refine_seconds,
                        "imprint_build_seconds": result.stats.imprint_build_seconds,
                        "n_filter_candidates": result.stats.n_filter_candidates,
                        "n_segments_skipped": result.stats.n_segments_skipped,
                        "n_segments_probed": result.stats.n_segments_probed,
                    },
                    resources=usage.to_dict(),
                    encoded_bytes=usage.encoded_bytes,
                    materialized_bytes=usage.materialized_bytes,
                )
                hot = _query_hot_stacks(result.stats.query_id)
                if hot is not None:
                    observation.set(hot_stacks=hot)
        return result

    def select_for(self, name: str) -> SpatialSelect:
        """The cached :class:`SpatialSelect` over table ``name``.

        The building block :meth:`spatial_select` wraps; the query
        service calls it directly so each request can run ``query()``
        under its own request-scoped observability context instead of
        the database-wide one.
        """
        try:
            return self._selects[name]
        except KeyError:
            select = SpatialSelect(
                self.db.table(name), manager=self.manager, threads=self.threads
            )
            self._selects[name] = select
            return select

    # -- SQL ---------------------------------------------------------------------------

    def register_vector(self, name: str, columns: Dict[str, Sequence]) -> None:
        """Register a vector relation (roads, zones...) for SQL queries.

        Object columns (strings, geometries) are allowed; the relation is
        snapshotted at registration.
        """
        self._vector_relations[name] = columns

    @property
    def vector_relations(self) -> Dict[str, Dict]:
        """Registered vector relations (name -> columns), read-only use."""
        return self._vector_relations

    def _session(self) -> Session:
        """A session over the current tables and vector relations.

        Assembled per call so appended points are always visible;
        imprints persist across calls via the shared manager (they belong
        to the columns, not the session).
        """
        session = Session(manager=self.manager, obs=self.obs)
        for name in self.db.table_names:
            session.register_table(self.db.table(name))
        for name, columns in self._vector_relations.items():
            session.register_columns(name, columns)
        return session

    def sql(self, query: str, timeout_s: Optional[float] = None) -> Result:
        """Run a SQL query over the point clouds and vector relations.

        ``timeout_s`` arms a cooperative deadline; a query that outruns
        it raises :class:`~repro.obs.queries.QueryCancelled`.
        """
        session = self._session()
        with self.obs.activate():
            if self.slow_log is None:
                return session.execute(query, timeout_s=timeout_s)
            with self.slow_log.observe("sql", sql=query.strip()) as observation:
                result = session.execute(query, timeout_s=timeout_s)
                usage = session.last_resources
                observation.set(
                    query_id=session.last_query_id,
                    rows=len(result.rows),
                    profile=dict(session.last_profile),
                    resources=usage.to_dict() if usage is not None else None,
                    encoded_bytes=usage.encoded_bytes if usage is not None else 0,
                    materialized_bytes=(
                        usage.materialized_bytes if usage is not None else 0
                    ),
                )
                hot = _query_hot_stacks(session.last_query_id)
                if hot is not None:
                    observation.set(hot_stacks=hot)
        return result

    def explain(self, query: str) -> str:
        """The query's plan as text (which indexes it would use)."""
        return self._session().explain(query)

    def explain_analyze(self, query: str) -> str:
        """Run the query under the tracer; per-operator tree with timings,
        cardinalities and imprint segment counts."""
        return self._session().explain_analyze(query)

    # -- observability ----------------------------------------------------------------

    def request_context(
        self, traceparent: Optional[str] = None
    ) -> ObsContext:
        """A per-request observability context over this database.

        Shares this database's metrics registry, query registry and
        flight recorder — one request's counters land where every other
        query's do — but carries its *own* tracer, so a request adopting
        an inbound W3C ``traceparent`` joins the caller's trace without
        perturbing concurrent requests.  The query service builds one of
        these per HTTP request.
        """
        context = ObsContext(
            tracer=Tracer(enabled=self.obs.tracer.enabled),
            registry=self.obs.registry,
            queries=self.obs.queries,
            recorder=self.obs.recorder,
        )
        if traceparent is not None:
            context.adopt_traceparent(traceparent)
        return context

    def trace_spans(self):
        """Finished spans currently in this database's tracer ring."""
        return self.obs.tracer.spans()

    def metrics(self) -> Dict[str, Dict]:
        """Snapshot of this database's metrics registry."""
        return self.obs.registry.snapshot()

    def active_queries(self) -> Dict[str, list]:
        """Live view of this database's query registry: in-flight query
        records plus the recent finished ring (what ``/debug/queries``
        serves)."""
        return self.obs.queries.snapshot()

    # -- reporting ----------------------------------------------------------------------

    def storage_report(self) -> Dict[str, Dict[str, int]]:
        """Bytes per table plus imprint index bytes (the E2 accounting)."""
        report: Dict[str, Dict[str, int]] = {}
        for name in self.db.table_names:
            table = self.db.table(name)
            imprint_bytes = sum(
                stats.index_bytes
                for (tname, _col), stats in self.manager.stats().items()
                if tname == name
            )
            report[name] = {
                "rows": len(table),
                "column_bytes": table.nbytes,
                "imprint_bytes": imprint_bytes,
                "compressed_bytes": sum(
                    int(entry["nbytes"])
                    for entry in table.compression_report().values()
                ),
            }
        return report

    def compress(
        self,
        name: Optional[str] = None,
        columns: Optional[Sequence[str]] = None,
        segment_rows: Optional[int] = None,
        scheme: str = "auto",
    ) -> Dict[str, Dict[str, object]]:
        """Build compressed execution mirrors (see ``docs/compression.md``).

        Packs every column of ``name`` (or of every table when ``name``
        is ``None``) into per-segment :class:`CompressedBlock`\\ s the
        select kernels can scan without decompressing; mirrors persist
        as ``.colz`` sidecars at the next :meth:`save`.  Returns the
        per-table :meth:`~repro.engine.table.Table.compression_report`.
        """
        names = [name] if name is not None else self.db.table_names
        report: Dict[str, Dict[str, object]] = {}
        for table_name in names:
            table = self.db.table(table_name)
            table.compress(columns=columns, segment_rows=segment_rows, scheme=scheme)
            report[table_name] = dict(table.compression_report())
        return report

    def save(self, directory: Optional[PathLike] = None) -> int:
        """Persist all tables (per-column binaries) and built imprints."""
        total = self.db.save(directory)
        root = Path(directory) if directory is not None else self.db.directory
        total += self.manager.save(root / "_imprints")
        return total

    @classmethod
    def load(
        cls,
        directory: PathLike,
        threads: Optional[int] = None,
        obs: Optional[ObsContext] = None,
    ) -> "PointCloudDB":
        """Restore a persisted database, imprints included.

        The load degrades gracefully: tables with torn tails are rolled
        back to their last committed rows, unreadable tables are skipped,
        corrupt imprints are quarantined and rebuilt lazily — per-table
        outcomes land in :attr:`health` instead of killing the load.

        ``obs`` scopes the loaded database's observability; the query
        service passes its own context so every loaded snapshot
        generation reports into one registry.
        """
        instance = cls(directory=directory, threads=threads, obs=obs)
        instance.db = Database.load(directory)
        tables = {name: instance.db.table(name) for name in instance.db.table_names}
        instance.manager.load(tables, Path(directory) / "_imprints")
        return instance

    # -- durability ---------------------------------------------------------

    @property
    def health(self) -> Dict[str, Dict]:
        """Per-table load/recovery health (see :attr:`Database.health`)."""
        return self.db.health

    def verify(self, directory: Optional[PathLike] = None) -> Dict:
        """Check every on-disk artifact of the store; returns a report.

        ``{"ok": bool, "tables": {...}, "imprints": {"ok", "issues"}}`` —
        table metadata, column checksums and row counts via
        :meth:`Database.verify`, plus structural/checksum verification of
        the persisted imprint files.  Read-only.
        """
        report = self.db.verify(directory)
        root = Path(directory) if directory is not None else self.db.directory
        imprint_issues = (
            self.manager.verify_directory(root / "_imprints")
            if root is not None
            else []
        )
        report["imprints"] = {"ok": not imprint_issues, "issues": imprint_issues}
        if imprint_issues:
            report["ok"] = False
        return report

    @classmethod
    def recover(
        cls,
        directory: PathLike,
        threads: Optional[int] = None,
        obs: Optional[ObsContext] = None,
    ) -> "PointCloudDB":
        """Tolerant load + rewrite of everything that needed repair.

        Rolls torn table tails back and re-persists them
        (:meth:`Database.recover`); corrupt imprint files are quarantined
        by the imprint loader and rebuilt lazily on first use.
        """
        instance = cls(directory=directory, threads=threads, obs=obs)
        instance.db = Database.recover(directory)
        tables = {name: instance.db.table(name) for name in instance.db.table_names}
        instance.manager.load(tables, Path(directory) / "_imprints")
        return instance
