"""``lasclip``: spatial selection over a directory of LAS/LAZ files.

The file-based query path of Scenario 1: prune files via the catalog,
use each file's ``.lax`` quadtree (when present) to narrow to candidate
record intervals, decode those records, and evaluate the exact predicate.
Everything is timed and counted so the E3 bench can contrast it with the
DBMS paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..gis.envelope import Box
from ..gis.predicates import geometry_envelope, points_satisfy
from ..las.binloader import read_point_file
from .catalog import CatalogStats, FileCatalog
from .lasindex import LasIndex, lax_path_for

PathLike = Union[str, Path]


@dataclass
class ClipStats:
    """Work accounting for one lasclip run."""

    files_considered: int = 0
    files_read: int = 0
    points_decoded: int = 0
    points_tested: int = 0
    n_results: int = 0
    catalog: CatalogStats = field(default_factory=CatalogStats)
    seconds: float = 0.0
    index_hits: int = 0  # files narrowed through a .lax quadtree


class LasClip:
    """Spatial selections over a tile directory (the LAStools baseline).

    Parameters
    ----------
    directory:
        LAS/LAZ tile directory.
    catalog_mode:
        Forwarded to :class:`FileCatalog` (``metadata`` or ``headers``).
    use_index:
        Use ``.lax`` sidecars when present (built by
        :func:`repro.lastools.lassort.lasindex_file`).
    """

    def __init__(
        self,
        directory: PathLike,
        catalog_mode: str = "metadata",
        use_index: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.catalog = FileCatalog(self.directory, mode=catalog_mode)
        self.use_index = use_index

    def query(
        self,
        geometry,
        predicate: str = "contains",
        distance: float = 0.0,
        columns: Optional[List[str]] = None,
    ) -> tuple:
        """Points satisfying the predicate, as ``(columns_dict, stats)``.

        ``columns`` selects which attributes to return (default: x, y, z).
        Unlike the DBMS paths there are no global row ids — a file-based
        tool can only hand back point records.
        """
        wanted = columns if columns is not None else ["x", "y", "z"]
        t0 = time.perf_counter()
        env = geometry_envelope(geometry)
        if predicate == "dwithin":
            env = env.expand(distance)

        paths, catalog_stats = self.catalog.files_intersecting(env)
        stats = ClipStats(
            files_considered=self.catalog.n_files, catalog=catalog_stats
        )
        pieces: Dict[str, List[np.ndarray]] = {name: [] for name in wanted}

        for path in paths:
            lax = lax_path_for(path)
            if (
                self.use_index
                and lax.exists()
                and path.suffix.lower() == ".las"
            ):
                # The real lasclip path: seek to candidate record
                # intervals instead of decoding the whole tile.
                from ..las.reader import read_intervals

                index = LasIndex.load(lax)
                intervals = index.candidate_intervals(env)
                _header, cols = read_intervals(path, intervals)
                stats.index_hits += 1
                stats.files_read += 1
                n = cols["x"].shape[0]
                stats.points_decoded += n
                stats.points_tested += n
                mask = points_satisfy(
                    cols["x"], cols["y"], geometry, predicate, distance
                )
                hits = np.flatnonzero(mask)
            else:
                _header, cols = read_point_file(path)
                stats.files_read += 1
                n = cols["x"].shape[0]
                stats.points_decoded += n
                stats.points_tested += n
                mask = points_satisfy(
                    cols["x"], cols["y"], geometry, predicate, distance
                )
                hits = np.flatnonzero(mask)
            for name in wanted:
                if name not in cols:
                    raise KeyError(
                        f"{path.name} has no attribute {name!r} "
                        f"(point format too small?)"
                    )
                pieces[name].append(cols[name][hits])

        out = {
            name: (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=np.float64)
            )
            for name, parts in pieces.items()
        }
        stats.n_results = int(out[wanted[0]].shape[0])
        stats.seconds = time.perf_counter() - t0
        return out, stats

    def build_indexes(self, **index_kwargs) -> int:
        """Run lasindex over every tile; returns the number indexed."""
        from .lassort import lasindex_file

        count = 0
        for path in sorted(self.directory.iterdir()):
            if path.suffix.lower() == ".las":
                lasindex_file(path, **index_kwargs)
                count += 1
        return count
