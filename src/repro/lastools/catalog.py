"""File catalog for the file-based baseline.

Section 2.2: AHN2 "is stored and distributed in more than 60,000 LAZ
files.  It is already a large amount of files to be inspected for a simple
selection ... the authors for LAStools had to use a DBMS to store the
metadata of each file in order to avoid the inspection of each file
header."

The catalog supports both regimes:

* ``mode="headers"`` — every query opens every file and reads its header
  (the naive regime whose cost grows with the file count);
* ``mode="metadata"`` — a one-off scan persists per-file bounding boxes to
  a JSON metadata DB; queries prune against it without touching files.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..gis.envelope import Box
from ..las.reader import read_header

PathLike = Union[str, Path]

_METADATA_NAME = "catalog.json"


@dataclass
class CatalogStats:
    """Per-query pruning cost accounting."""

    headers_read: int = 0
    files_matched: int = 0
    prune_seconds: float = 0.0


class FileCatalog:
    """Bounding-box pruning over a directory of LAS/LAZ tiles.

    Parameters
    ----------
    directory:
        The tile directory.
    mode:
        ``"headers"`` (inspect every header per query) or ``"metadata"``
        (build/use the metadata DB).
    """

    def __init__(self, directory: PathLike, mode: str = "metadata") -> None:
        if mode not in ("headers", "metadata"):
            raise ValueError(f"unknown catalog mode {mode!r}")
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise FileNotFoundError(f"no tile directory at {self.directory}")
        self.mode = mode
        self._metadata: Optional[Dict[str, List[float]]] = None
        if mode == "metadata":
            self._metadata = self._load_or_build_metadata()

    # -- metadata DB -------------------------------------------------------------

    @property
    def metadata_path(self) -> Path:
        return self.directory / _METADATA_NAME

    def _tile_paths(self) -> List[Path]:
        return sorted(
            p
            for p in self.directory.iterdir()
            if p.suffix.lower() in (".las", ".laz")
        )

    def _load_or_build_metadata(self) -> Dict[str, List[float]]:
        if self.metadata_path.exists():
            return json.loads(self.metadata_path.read_text())
        return self.rebuild_metadata()

    def rebuild_metadata(self) -> Dict[str, List[float]]:
        """The ETL step: read every header once, persist the bboxes.

        [18]: "Such ETL process had the same cost as the data loading cost
        of a DBMS" — the E1/E3 benches time this against database loading.
        """
        metadata: Dict[str, List[float]] = {}
        for path in self._tile_paths():
            header = read_header(path)
            metadata[path.name] = [
                header.min_xyz[0],
                header.min_xyz[1],
                header.max_xyz[0],
                header.max_xyz[1],
                header.n_points,
            ]
        self.metadata_path.write_text(json.dumps(metadata))
        self._metadata = metadata
        return metadata

    # -- pruning ------------------------------------------------------------------

    def files_intersecting(self, query: Box) -> Tuple[List[Path], CatalogStats]:
        """Tiles whose bbox touches the query box, plus pruning stats."""
        stats = CatalogStats()
        t0 = time.perf_counter()
        matched: List[Path] = []
        if self.mode == "headers":
            for path in self._tile_paths():
                header = read_header(path)
                stats.headers_read += 1
                bbox = Box(
                    header.min_xyz[0],
                    header.min_xyz[1],
                    max(header.max_xyz[0], header.min_xyz[0]),
                    max(header.max_xyz[1], header.min_xyz[1]),
                )
                if bbox.intersects(query):
                    matched.append(path)
        else:
            assert self._metadata is not None
            for name, (xmin, ymin, xmax, ymax, _n) in sorted(
                self._metadata.items()
            ):
                bbox = Box(xmin, ymin, max(xmax, xmin), max(ymax, ymin))
                if bbox.intersects(query):
                    matched.append(self.directory / name)
        stats.files_matched = len(matched)
        stats.prune_seconds = time.perf_counter() - t0
        return matched, stats

    @property
    def n_files(self) -> int:
        return len(self._tile_paths())

    def total_points(self) -> int:
        """Total points across the catalog (metadata mode is free; header
        mode pays one header read per file)."""
        if self.mode == "metadata" and self._metadata is not None:
            return int(sum(int(v[4]) for v in self._metadata.values()))
        return int(sum(read_header(p).n_points for p in self._tile_paths()))
