"""Per-file quadtree index — the repo's ``lasindex``.

Rapidlasso's ``lasindex`` builds a quadtree over a LAS file and stores,
per quadtree cell, *intervals of point indices* that fall inside it
(Section 2.3 / [18]).  Interval lists are tiny when the file is spatially
sorted (``lassort`` first), and degenerate towards one interval per point
on unsorted data — a cost contrast the E3 bench shows.

The index is persisted next to the LAS file as ``<name>.lax`` (JSON).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from ..gis.envelope import Box

PathLike = Union[str, Path]

#: Default quadtree limits, mirroring lasindex's defaults in spirit.
DEFAULT_LEAF_CAPACITY = 1000
DEFAULT_MAX_DEPTH = 8


def _intervals_from_indices(indices: np.ndarray) -> List[Tuple[int, int]]:
    """Compress a sorted index array into [start, stop) interval pairs."""
    if indices.shape[0] == 0:
        return []
    breaks = np.flatnonzero(np.diff(indices) != 1)
    starts = np.concatenate([[0], breaks + 1])
    stops = np.concatenate([breaks, [indices.shape[0] - 1]])
    return [
        (int(indices[a]), int(indices[b]) + 1) for a, b in zip(starts, stops)
    ]


@dataclass
class QuadLeaf:
    """One quadtree leaf: its cell and the point-index intervals inside."""

    box: Box
    intervals: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def n_intervals(self) -> int:
        return len(self.intervals)

    @property
    def n_points(self) -> int:
        return sum(stop - start for start, stop in self.intervals)


class LasIndex:
    """A quadtree of point-index intervals over one file's points.

    Parameters
    ----------
    xs, ys:
        The file's point coordinates, in file order.
    extent:
        The file bounding box (from the LAS header).
    leaf_capacity / max_depth:
        Quadtree split limits.
    """

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        extent: Box,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be >= 1")
        self.extent = extent
        self.leaf_capacity = leaf_capacity
        self.max_depth = max_depth
        self.leaves: List[QuadLeaf] = []
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        self.n_points = xs.shape[0]
        if self.n_points:
            order = np.arange(self.n_points, dtype=np.int64)
            self._build(xs, ys, order, extent, 0)

    def _build(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        indices: np.ndarray,
        box: Box,
        depth: int,
    ) -> None:
        if indices.shape[0] == 0:
            return
        if indices.shape[0] <= self.leaf_capacity or depth >= self.max_depth:
            self.leaves.append(
                QuadLeaf(
                    box=box,
                    intervals=_intervals_from_indices(np.sort(indices)),
                )
            )
            return
        cx, cy = box.center
        west = xs < cx
        south = ys < cy
        quadrants = [
            (west & south, Box(box.xmin, box.ymin, cx, cy)),
            (~west & south, Box(cx, box.ymin, box.xmax, cy)),
            (west & ~south, Box(box.xmin, cy, cx, box.ymax)),
            (~west & ~south, Box(cx, cy, box.xmax, box.ymax)),
        ]
        for mask, sub_box in quadrants:
            self._build(xs[mask], ys[mask], indices[mask], sub_box, depth + 1)

    # -- query -----------------------------------------------------------------

    def candidate_intervals(self, query: Box) -> List[Tuple[int, int]]:
        """Merged point-index intervals of all leaves touching the box."""
        raw: List[Tuple[int, int]] = []
        for leaf in self.leaves:
            if leaf.box.intersects(query):
                raw.extend(leaf.intervals)
        if not raw:
            return []
        raw.sort()
        merged = [list(raw[0])]
        for start, stop in raw[1:]:
            if start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], stop)
            else:
                merged.append([start, stop])
        return [(a, b) for a, b in merged]

    def candidate_indices(self, query: Box) -> np.ndarray:
        """Candidate point indices (superset of exact hits), sorted."""
        intervals = self.candidate_intervals(query)
        if not intervals:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [np.arange(start, stop, dtype=np.int64) for start, stop in intervals]
        )

    # -- stats / persistence -----------------------------------------------------

    @property
    def total_intervals(self) -> int:
        return sum(leaf.n_intervals for leaf in self.leaves)

    def save(self, path: PathLike) -> None:
        """Persist as a ``.lax`` JSON sidecar."""
        doc = {
            "extent": [
                self.extent.xmin,
                self.extent.ymin,
                self.extent.xmax,
                self.extent.ymax,
            ],
            "leaf_capacity": self.leaf_capacity,
            "max_depth": self.max_depth,
            "n_points": self.n_points,
            "leaves": [
                {
                    "box": [
                        leaf.box.xmin,
                        leaf.box.ymin,
                        leaf.box.xmax,
                        leaf.box.ymax,
                    ],
                    "intervals": leaf.intervals,
                }
                for leaf in self.leaves
            ],
        }
        Path(path).write_text(json.dumps(doc))

    @classmethod
    def load(cls, path: PathLike) -> "LasIndex":
        """Load a persisted ``.lax`` sidecar."""
        doc = json.loads(Path(path).read_text())
        index = cls.__new__(cls)
        index.extent = Box(*doc["extent"])
        index.leaf_capacity = doc["leaf_capacity"]
        index.max_depth = doc["max_depth"]
        index.n_points = doc["n_points"]
        index.leaves = [
            QuadLeaf(
                box=Box(*leaf["box"]),
                intervals=[tuple(pair) for pair in leaf["intervals"]],
            )
            for leaf in doc["leaves"]
        ]
        return index


def lax_path_for(las_path: PathLike) -> Path:
    """The sidecar path lasindex would write for a LAS file."""
    las_path = Path(las_path)
    return las_path.with_suffix(".lax")
