"""The file-based baseline: a LAStools-like toolchain.

* :mod:`repro.lastools.catalog` — per-file bbox pruning (headers vs
  metadata DB).
* :mod:`repro.lastools.lasindex` — per-file quadtree of record intervals.
* :mod:`repro.lastools.lassort` — space-filling-curve file rewrite.
* :mod:`repro.lastools.clip` — ``lasclip``-style spatial selection.
"""

from .catalog import CatalogStats, FileCatalog
from .clip import ClipStats, LasClip
from .lasindex import LasIndex, lax_path_for
from .lassort import lasindex_file, lassort

__all__ = [
    "CatalogStats",
    "ClipStats",
    "FileCatalog",
    "LasClip",
    "LasIndex",
    "lasindex_file",
    "lassort",
    "lax_path_for",
]
