"""Spatial re-sorting of LAS files — the repo's ``lassort``.

[18] notes that the LAStools pipeline had to "run a lassort and lasindex
to boost query performance".  ``lassort`` rewrites a LAS file with its
points ordered along a space-filling curve so that spatially close points
sit in contiguous record ranges — which turns ``lasindex``'s per-cell
interval lists from thousands of singletons into a handful of runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..core.sfc import sort_order
from ..las.reader import read_las
from ..las.writer import write_las
from .lasindex import LasIndex, lax_path_for

PathLike = Union[str, Path]


def lassort(
    in_path: PathLike,
    out_path: PathLike,
    curve: str = "morton",
) -> int:
    """Rewrite a LAS file in space-filling-curve order.

    Returns the number of points written.  The output keeps the input's
    point format and scale grid, so the rewrite is lossless apart from
    record order.
    """
    header, columns = read_las(in_path)
    n = columns["x"].shape[0]
    if n == 0:
        raise ValueError(f"{in_path} holds no points")
    perm = sort_order(
        columns["x"],
        columns["y"],
        header.min_xyz[0],
        max(header.max_xyz[0], header.min_xyz[0] + 1e-9),
        header.min_xyz[1],
        max(header.max_xyz[1], header.min_xyz[1] + 1e-9),
        curve=curve,
    )
    sorted_columns = {name: arr[perm] for name, arr in columns.items()}
    write_las(
        out_path,
        sorted_columns,
        point_format=header.point_format,
        scale=header.scale,
        offset=header.offset,
    )
    return n


def lasindex_file(las_path: PathLike, **index_kwargs) -> LasIndex:
    """Build (and persist as ``.lax``) the quadtree index of a LAS file."""
    header, columns = read_las(las_path)
    from ..gis.envelope import Box

    extent = Box(
        header.min_xyz[0],
        header.min_xyz[1],
        max(header.max_xyz[0], header.min_xyz[0]),
        max(header.max_xyz[1], header.min_xyz[1]),
    )
    index = LasIndex(columns["x"], columns["y"], extent, **index_kwargs)
    index.save(lax_path_for(las_path))
    return index
