"""Rasterisation canvas: world-coordinate drawing onto an RGB image.

The demo visualises every query result "in real time using QGIS".  In this
reproduction the visualisation substrate is a small renderer that draws
point/line/polygon layers onto an RGB canvas and writes portable pixmaps
(PPM/PGM — stdlib-only formats any image viewer opens).
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple, Union

import numpy as np

from ..engine.durable import atomic_write_bytes
from ..gis.envelope import Box

PathLike = Union[str, Path]

Color = Tuple[int, int, int]

WHITE: Color = (255, 255, 255)
BLACK: Color = (0, 0, 0)


class Canvas:
    """An RGB raster mapped onto a world-coordinate extent.

    Parameters
    ----------
    extent:
        World rectangle rendered onto the image.
    width:
        Image width in pixels; height follows the extent's aspect ratio
        unless given explicitly.
    background:
        Fill colour.
    """

    def __init__(
        self,
        extent: Box,
        width: int = 512,
        height: int = 0,
        background: Color = WHITE,
    ) -> None:
        if width < 1:
            raise ValueError("width must be positive")
        self.extent = extent
        self.width = width
        if height < 1:
            aspect = extent.height / max(extent.width, 1e-12)
            height = max(1, int(round(width * aspect)))
        self.height = height
        self.pixels = np.empty((self.height, self.width, 3), dtype=np.uint8)
        self.pixels[:] = background

    # -- coordinate transform -------------------------------------------------------

    def to_pixel(self, xs: np.ndarray, ys: np.ndarray):
        """World -> pixel coordinates (row 0 is the north edge)."""
        fx = (np.asarray(xs) - self.extent.xmin) / max(self.extent.width, 1e-12)
        fy = (np.asarray(ys) - self.extent.ymin) / max(self.extent.height, 1e-12)
        px = np.clip((fx * (self.width - 1)).round(), 0, self.width - 1)
        py = np.clip(((1 - fy) * (self.height - 1)).round(), 0, self.height - 1)
        return px.astype(np.int64), py.astype(np.int64)

    # -- primitives -------------------------------------------------------------------

    def draw_points(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        color: Union[Color, np.ndarray] = BLACK,
        size: int = 1,
    ) -> None:
        """Scatter points; ``color`` may be per-point (n, 3) uint8."""
        px, py = self.to_pixel(xs, ys)
        colors = np.asarray(color, dtype=np.uint8)
        per_point = colors.ndim == 2
        for dy in range(-(size - 1), size):
            for dx in range(-(size - 1), size):
                qx = np.clip(px + dx, 0, self.width - 1)
                qy = np.clip(py + dy, 0, self.height - 1)
                self.pixels[qy, qx] = colors if per_point else colors[None, :]

    def draw_line(
        self, x1: float, y1: float, x2: float, y2: float, color: Color = BLACK
    ) -> None:
        """Bresenham line between two world points."""
        (px1, px2), (py1, py2) = self.to_pixel(
            np.array([x1, x2]), np.array([y1, y2])
        )
        x, y = int(px1), int(py1)
        x_end, y_end = int(px2), int(py2)
        dx = abs(x_end - x)
        dy = -abs(y_end - y)
        sx = 1 if x < x_end else -1
        sy = 1 if y < y_end else -1
        err = dx + dy
        while True:
            self.pixels[y, x] = color
            if x == x_end and y == y_end:
                break
            e2 = 2 * err
            if e2 >= dy:
                err += dy
                x += sx
            if e2 <= dx:
                err += dx
                y += sy

    def draw_polyline(self, coords: np.ndarray, color: Color = BLACK) -> None:
        for i in range(coords.shape[0] - 1):
            self.draw_line(
                coords[i, 0], coords[i, 1], coords[i + 1, 0], coords[i + 1, 1], color
            )

    def fill_polygon(self, polygon, color: Color) -> None:
        """Scanline fill of a :class:`~repro.gis.geometry.Polygon`."""
        from ..gis.algorithms import points_in_polygon

        env = polygon.envelope
        if not env.intersects(self.extent):
            return
        # Rasterise only the rows the polygon touches.
        px_min, py_max = self.to_pixel(np.array([env.xmin]), np.array([env.ymin]))
        px_max, py_min = self.to_pixel(np.array([env.xmax]), np.array([env.ymax]))
        for row in range(int(py_min[0]), int(py_max[0]) + 1):
            wy = self.extent.ymax - (row + 0.5) / self.height * self.extent.height
            cols = np.arange(int(px_min[0]), int(px_max[0]) + 1)
            wx = self.extent.xmin + (cols + 0.5) / self.width * self.extent.width
            inside = points_in_polygon(wx, np.full(cols.shape[0], wy), polygon)
            self.pixels[row, cols[inside]] = color

    # -- output ------------------------------------------------------------------------

    def write_ppm(self, path: PathLike) -> Path:
        """Write the canvas as a binary PPM (P6).

        Atomic (temp + fsync + rename): a crash mid-render never leaves
        a torn image for a viewer or a pipeline stage to trip over.
        """
        path = Path(path)
        header = f"P6\n{self.width} {self.height}\n255\n".encode()
        atomic_write_bytes(path, header + self.pixels.tobytes(), label="ppm")
        return path

    def to_ascii(self, columns: int = 80) -> str:
        """ASCII-art view of the canvas (see :func:`ascii_render`)."""
        return ascii_render(self.pixels, columns=columns)

    def write_pgm(self, path: PathLike) -> Path:
        """Write a grayscale PGM (P5) using luminance; atomic like
        :meth:`write_ppm`."""
        path = Path(path)
        gray = _luminance(self.pixels).astype(np.uint8)
        header = f"P5\n{self.width} {self.height}\n255\n".encode()
        atomic_write_bytes(path, header + gray.tobytes(), label="pgm")
        return path


#: Luminance ramp used by :meth:`Canvas.to_ascii` (dark -> bright).
_ASCII_RAMP = " .:-=+*#%@"


def _luminance(pixels: np.ndarray) -> np.ndarray:
    return (
        0.299 * pixels[:, :, 0]
        + 0.587 * pixels[:, :, 1]
        + 0.114 * pixels[:, :, 2]
    )


def ascii_render(pixels: np.ndarray, columns: int = 80) -> str:
    """Down-sample an RGB raster to an ASCII art string.

    Terminal-friendly output for headless demo runs; rows are halved to
    compensate for character aspect ratio.
    """
    if columns < 2:
        raise ValueError("need at least 2 columns")
    height, width, _ = pixels.shape
    rows = max(1, int(columns * height / width / 2))
    gray = _luminance(pixels)
    row_idx = np.linspace(0, height - 1, rows).astype(np.int64)
    col_idx = np.linspace(0, width - 1, columns).astype(np.int64)
    sampled = gray[np.ix_(row_idx, col_idx)]
    levels = (sampled / 256 * len(_ASCII_RAMP)).astype(np.int64)
    levels = np.clip(levels, 0, len(_ASCII_RAMP) - 1)
    return "\n".join(
        "".join(_ASCII_RAMP[level] for level in row) for row in levels
    )


def read_ppm(path: PathLike) -> np.ndarray:
    """Read back a binary PPM written by :meth:`Canvas.write_ppm`."""
    raw = Path(path).read_bytes()
    if not raw.startswith(b"P6"):
        raise ValueError(f"{path}: not a binary PPM")
    parts = raw.split(b"\n", 3)
    width, height = (int(v) for v in parts[1].split())
    pixels = np.frombuffer(parts[3], dtype=np.uint8)
    return pixels.reshape(height, width, 3)
