"""Level-of-detail point pyramids for interactive rendering.

The demo renders query results "in real time using QGIS".  At AHN2 scale
(640e9 points) no screen can draw every point, so point-cloud viewers
build a level-of-detail pyramid and draw only as many points as there are
pixels.  This module provides that substrate:

* :func:`build_pyramid` — reorder a cloud so that every *prefix* of the
  order is a spatially uniform subsample (an "importance order" built by
  stratified sampling over a coarsening grid hierarchy);
* :class:`PointPyramid` — pick the right prefix for a viewport and
  point budget, optionally restricted to a region.

The pyramid is pure row-id bookkeeping over the flat table — no point is
copied — so it composes with the imprints pipeline: query first, then
draw the result's LoD prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..gis.envelope import Box


@dataclass
class PointPyramid:
    """An importance ordering of a point set.

    Attributes
    ----------
    order:
        Row ids such that ``order[:k]`` is a spatially uniform sample of
        the whole cloud, for any k.
    level_sizes:
        Cumulative prefix sizes per pyramid level (coarsest first).
    extent:
        The cloud's envelope.
    """

    order: np.ndarray
    level_sizes: List[int]
    extent: Box
    _xs: np.ndarray
    _ys: np.ndarray

    @property
    def n_points(self) -> int:
        return int(self.order.shape[0])

    @property
    def n_levels(self) -> int:
        return len(self.level_sizes)

    def prefix(self, budget: int) -> np.ndarray:
        """Row ids of the best <=budget-point uniform subsample."""
        if budget <= 0:
            return self.order[:0]
        return self.order[: min(budget, self.n_points)]

    def level(self, level: int) -> np.ndarray:
        """Row ids of one full pyramid level (0 = coarsest)."""
        if not 0 <= level < self.n_levels:
            raise ValueError(f"level {level} out of range")
        return self.order[: self.level_sizes[level]]

    def for_viewport(
        self,
        viewport: Box,
        pixel_budget: int,
    ) -> np.ndarray:
        """Row ids to draw for a viewport: zoom in -> more local detail.

        Filters the importance order to the viewport, keeping order, and
        truncates at the pixel budget — the classic pyramid walk.
        """
        in_view = (
            (self._xs >= viewport.xmin)
            & (self._xs <= viewport.xmax)
            & (self._ys >= viewport.ymin)
            & (self._ys <= viewport.ymax)
        )
        visible = self.order[in_view[self.order]]
        return visible[: max(pixel_budget, 0)]


def build_pyramid(
    xs: np.ndarray,
    ys: np.ndarray,
    base_cells: int = 64,
    levels: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> PointPyramid:
    """Build the importance order by stratified grid sampling.

    Level 0 picks one point per cell of a coarse ``base_cells``-target
    grid; each further level quadruples the grid and picks one new point
    per newly non-empty cell; remaining points append in random order.
    Every prefix is therefore close to spatially uniform.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    n = xs.shape[0]
    if n == 0:
        raise ValueError("cannot build a pyramid over no points")
    if rng is None:
        rng = np.random.default_rng(0x10D)
    extent = Box(xs.min(), ys.min(), xs.max(), ys.max())
    if levels is None:
        levels = 1
        while base_cells * 4**levels < n and levels < 12:
            levels += 1

    chosen = np.zeros(n, dtype=bool)
    order_parts: List[np.ndarray] = []
    level_sizes: List[int] = []
    width = max(extent.width, 1e-12)
    height = max(extent.height, 1e-12)

    for level in range(levels):
        target = base_cells * 4**level
        nx = max(1, int(np.sqrt(target * width / height)))
        ny = max(1, int(target / nx))
        cx = np.clip(((xs - extent.xmin) / width * nx).astype(np.int64), 0, nx - 1)
        cy = np.clip(
            ((ys - extent.ymin) / height * ny).astype(np.int64), 0, ny - 1
        )
        cells = cy * nx + cx
        # One not-yet-chosen point per cell, random within the cell.
        available = np.flatnonzero(~chosen)
        if available.shape[0] == 0:
            break
        shuffled = rng.permutation(available)
        _uniq, first = np.unique(cells[shuffled], return_index=True)
        picks = shuffled[first]
        chosen[picks] = True
        order_parts.append(picks)
        level_sizes.append(int(chosen.sum()))

    rest = np.flatnonzero(~chosen)
    if rest.shape[0]:
        order_parts.append(rng.permutation(rest))
    order = np.concatenate(order_parts).astype(np.int64)
    return PointPyramid(
        order=order,
        level_sizes=level_sizes,
        extent=extent,
        _xs=xs,
        _ys=ys,
    )


def uniformity(xs: np.ndarray, ys: np.ndarray, extent: Box, cells: int = 64) -> float:
    """A [0, 1] spatial-uniformity score for a point subset.

    Fraction of occupied cells relative to the ideal for this sample size
    — the metric the pyramid tests assert on (1.0 = perfectly spread).
    """
    xs = np.asarray(xs)
    ys = np.asarray(ys)
    n = xs.shape[0]
    if n == 0:
        return 0.0
    side = max(1, int(np.sqrt(cells)))
    cx = np.clip(
        ((xs - extent.xmin) / max(extent.width, 1e-12) * side).astype(np.int64),
        0,
        side - 1,
    )
    cy = np.clip(
        ((ys - extent.ymin) / max(extent.height, 1e-12) * side).astype(np.int64),
        0,
        side - 1,
    )
    occupied = np.unique(cy * side + cx).shape[0]
    ideal = min(n, side * side)
    return occupied / ideal
