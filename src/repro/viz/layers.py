"""Map layers: styled point, line and polygon collections.

QGIS "allows users to create custom maps that consist of various layers"
(Section 4); :class:`LayeredMap` is the equivalent composition primitive —
layers render bottom-up onto one :class:`~repro.viz.raster.Canvas`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from ..gis.envelope import Box
from ..gis.geometry import LineString, MultiLineString, MultiPolygon, Polygon
from .raster import Canvas, Color


@dataclass
class PointLayer:
    """A scatter of points, optionally coloured per point."""

    xs: np.ndarray
    ys: np.ndarray
    color: Union[Color, np.ndarray] = (30, 30, 30)
    size: int = 1

    def render(self, canvas: Canvas) -> None:
        if np.asarray(self.xs).shape[0]:
            canvas.draw_points(self.xs, self.ys, self.color, self.size)


@dataclass
class LineLayer:
    """Polylines with one colour (roads of one class, a river...)."""

    lines: Sequence[Union[LineString, MultiLineString]]
    color: Color = (0, 0, 0)

    def render(self, canvas: Canvas) -> None:
        for geom in self.lines:
            parts = geom.lines if isinstance(geom, MultiLineString) else [geom]
            for line in parts:
                canvas.draw_polyline(line.coords, self.color)


@dataclass
class PolygonLayer:
    """Filled polygons (land-use zones)."""

    polygons: Sequence[Union[Polygon, MultiPolygon]]
    color: Color = (200, 200, 200)
    outline: Optional[Color] = None

    def render(self, canvas: Canvas) -> None:
        for geom in self.polygons:
            parts = (
                geom.polygons if isinstance(geom, MultiPolygon) else [geom]
            )
            for polygon in parts:
                canvas.fill_polygon(polygon, self.color)
                if self.outline is not None:
                    canvas.draw_polyline(polygon.shell, self.outline)


@dataclass
class LayeredMap:
    """A QGIS-like map: an extent plus bottom-up layers."""

    extent: Box
    width: int = 512
    background: Color = (255, 255, 255)
    layers: List = field(default_factory=list)

    def add(self, layer) -> "LayeredMap":
        self.layers.append(layer)
        return self

    def render(self) -> Canvas:
        canvas = Canvas(self.extent, width=self.width, background=self.background)
        for layer in self.layers:
            layer.render(canvas)
        return canvas
