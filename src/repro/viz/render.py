"""Figure-level renderers: the paper's two dataset visualisations.

* :func:`render_pointcloud` — Figure 1, "LIDAR point cloud dataset":
  an elevation-and-class coloured, hillshaded point rendering.
* :func:`render_basemap` — Figure 2, "Roads, rivers and land cover data
  from the OpenStreetMap and Urban Atlas datasets": land-use fills with
  the road/river networks on top.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..datasets.osm import OsmData
from ..datasets.urbanatlas import UrbanAtlasData
from ..gis.envelope import Box
from .layers import LayeredMap, LineLayer, PointLayer, PolygonLayer
from .raster import Canvas

#: Fill colours per Urban Atlas code (Figure 2 palette).
UA_COLORS = {
    11100: (190, 60, 60),
    11210: (220, 120, 100),
    12100: (160, 120, 160),
    12210: (90, 90, 90),
    14100: (140, 210, 140),
    21000: (235, 225, 160),
    31000: (60, 140, 70),
    51000: (120, 160, 230),
}

#: Point colours per ASPRS class (Figure 1 palette).
CLASS_COLORS = {
    2: (150, 130, 90),
    3: (110, 180, 90),
    4: (80, 160, 70),
    5: (40, 130, 50),
    6: (200, 80, 70),
    9: (90, 130, 220),
}


def _elevation_shade(zs: np.ndarray) -> np.ndarray:
    """Brightness factor from elevation: higher = brighter (fake
    hillshade, enough to make relief readable in a still image)."""
    zs = np.asarray(zs, dtype=np.float64)
    lo, hi = zs.min(), zs.max()
    if hi - lo < 1e-9:
        return np.ones(zs.shape[0])
    return 0.55 + 0.45 * (zs - lo) / (hi - lo)


def render_pointcloud(
    columns: Dict[str, np.ndarray],
    extent: Optional[Box] = None,
    width: int = 512,
) -> Canvas:
    """Figure 1: the LIDAR cloud coloured by class, shaded by elevation.

    ``columns`` needs ``x``, ``y``, ``z`` and (optionally)
    ``classification``.
    """
    xs, ys, zs = columns["x"], columns["y"], columns["z"]
    if extent is None:
        extent = Box(xs.min(), ys.min(), xs.max(), ys.max())
    base = np.full((xs.shape[0], 3), 128, dtype=np.float64)
    if "classification" in columns:
        for code, color in CLASS_COLORS.items():
            mask = columns["classification"] == code
            base[mask] = color
    shade = _elevation_shade(zs)[:, None]
    colors = np.clip(base * shade, 0, 255).astype(np.uint8)

    canvas = Canvas(extent, width=width, background=(15, 15, 25))
    # Draw lowest first so high points (roofs, canopies) stay visible.
    order = np.argsort(zs)
    canvas.draw_points(xs[order], ys[order], colors[order])
    return canvas


def render_basemap(
    osm: Optional[OsmData] = None,
    urban_atlas: Optional[UrbanAtlasData] = None,
    extent: Optional[Box] = None,
    width: int = 512,
) -> Canvas:
    """Figure 2: Urban Atlas land cover under the OSM road/river network."""
    if extent is None:
        if urban_atlas is not None:
            extent = urban_atlas.extent
        elif osm is not None:
            extent = osm.extent
        else:
            raise ValueError("need an extent or at least one dataset")

    road_colors = {
        "motorway": (220, 60, 30),
        "primary": (230, 140, 40),
        "secondary": (120, 120, 120),
        "residential": (180, 180, 180),
    }

    world = LayeredMap(extent, width=width, background=(245, 245, 240))
    if urban_atlas is not None:
        for zone in urban_atlas.zones:
            world.add(
                PolygonLayer(
                    [zone.geometry],
                    color=UA_COLORS.get(zone.code, (210, 210, 210)),
                )
            )
    if osm is not None:
        for road_class in ("residential", "secondary", "primary", "motorway"):
            roads = [
                r.geometry for r in osm.roads if r.road_class == road_class
            ]
            if roads:
                world.add(LineLayer(roads, color=road_colors[road_class]))
        if osm.rivers:
            world.add(
                LineLayer([r.geometry for r in osm.rivers], color=(40, 90, 200))
            )
        if osm.pois:
            world.add(
                PointLayer(
                    np.array([p.geometry.x for p in osm.pois]),
                    np.array([p.geometry.y for p in osm.pois]),
                    color=(20, 20, 20),
                    size=2,
                )
            )
    return world.render()


def render_query_overlay(
    background: Canvas,
    xs: np.ndarray,
    ys: np.ndarray,
    color=(255, 0, 0),
) -> Canvas:
    """Highlight a query's result points on an existing rendering — the
    demo's visual feedback loop (run query, see the selection light up)."""
    background.draw_points(xs, ys, color=color, size=1)
    return background
