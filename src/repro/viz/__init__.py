"""Visualisation substrate: the QGIS stand-in.

Layered world-coordinate rendering to PPM/PGM images —
:class:`~repro.viz.raster.Canvas` primitives,
:class:`~repro.viz.layers.LayeredMap` composition, and the two
figure-level renderers of :mod:`repro.viz.render`.
"""

from .layers import LayeredMap, LineLayer, PointLayer, PolygonLayer
from .lod import PointPyramid, build_pyramid
from .raster import Canvas, ascii_render, read_ppm
from .render import render_basemap, render_pointcloud, render_query_overlay

__all__ = [
    "Canvas",
    "LayeredMap",
    "LineLayer",
    "PointLayer",
    "PointPyramid",
    "PolygonLayer",
    "ascii_render",
    "build_pyramid",
    "read_ppm",
    "render_basemap",
    "render_pointcloud",
    "render_query_overlay",
]
