"""`repro-check`: AST-based static analysis for the project's invariants.

PRs layered threads, tracing and crash-safe persistence onto the flat
table/imprint engine, and each layer came with invariants nothing used
to enforce:

* all persistence routes through :mod:`repro.engine.durable` (R1),
* :class:`~repro.engine.durable.InjectedCrash` — a ``BaseException`` —
  must never be silently absorbed (R2),
* shared state is mutated under its lock, and locks are acquired in a
  consistent order (R3),
* ``struct`` format strings agree with their declared header-size
  constants and pack/unpack call shapes (R4),
* hot-path modules time themselves through :mod:`repro.obs` helpers,
  not raw ``time.perf_counter`` (R5),
* every metric name used in ``src/`` is declared in
  :mod:`repro.obs.names` (R6).

The framework is zero-dependency (stdlib ``ast`` only): rules register
in a global registry, findings can be grandfathered into a committed
baseline file with a justification, and reports render as text or
JSON.  Run it as ``repro-gis check`` or ``python -m repro.analysis``.
"""

from .engine import Project, run_check
from .findings import Finding, Severity
from .registry import Rule, all_rules, get_rule, register

# Importing the rule modules registers them.
from .rules import (  # noqa: F401
    counter_registry,
    crash_transparency,
    durable_write,
    lock_discipline,
    span_discipline,
    struct_format,
)

__all__ = [
    "Finding",
    "Severity",
    "Rule",
    "Project",
    "all_rules",
    "get_rule",
    "register",
    "run_check",
]
