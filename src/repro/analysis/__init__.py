"""`repro-check`: AST-based static analysis for the project's invariants.

PRs layered threads, tracing and crash-safe persistence onto the flat
table/imprint engine, and each layer came with invariants nothing used
to enforce:

* all persistence routes through :mod:`repro.engine.durable` (R1),
* :class:`~repro.engine.durable.InjectedCrash` — a ``BaseException`` —
  must never be silently absorbed (R2),
* shared state is mutated under its lock, and locks are acquired in a
  consistent order (R3),
* ``struct`` format strings agree with their declared header-size
  constants and pack/unpack call shapes (R4),
* hot-path modules time themselves through :mod:`repro.obs` helpers,
  not raw ``time.perf_counter`` (R5),
* every metric name used in ``src/`` is declared in
  :mod:`repro.obs.names` (R6).

PRs 7-8 added code whose bugs are *paths*, not statements — leaked
admission slots, unmapped exception classes, blocking I/O inside a
critical section — so the framework also builds intraprocedural
control-flow graphs (:mod:`repro.analysis.cfg`) and runs a generic
acquire/release dataflow (:mod:`repro.analysis.dataflow`) under five
flow-aware rules:

* acquired resources (slots, pins, checkouts, file handles) reach
  their release on every exit path (R7),
* typed exceptions raised in ``serve/*`` and the cancellation path
  have an explicit HTTP status mapping (R8),
* no fsync/socket/sleep/subprocess while a lock is held (R9),
* raw ``threading.Thread`` in hot paths carries contextvars (R10),
* segment scan loops reach a cooperative deadline check (R11).

The framework is zero-dependency (stdlib ``ast`` only): rules register
in a global registry and run over one shared module walk with a cached
per-module CFG store, findings can be grandfathered into a committed
baseline file with a justification, and reports render as text, JSON
or SARIF.  Run it as ``repro-gis check`` or ``python -m repro.analysis``.
"""

from .cfg import CFG, build_cfg, function_cfgs
from .dataflow import Leak, find_leaks
from .engine import AnalysisContext, Config, Project, run_check
from .findings import Finding, Severity
from .registry import Rule, all_rules, get_rule, register

# Importing the rule modules registers them.
from .rules import (  # noqa: F401
    blocking_under_lock,
    cancellation_coverage,
    counter_registry,
    crash_transparency,
    durable_write,
    exception_status,
    lock_discipline,
    resource_leak,
    span_discipline,
    struct_format,
    thread_boundary,
)

__all__ = [
    "AnalysisContext",
    "CFG",
    "Config",
    "Finding",
    "Leak",
    "Project",
    "Rule",
    "Severity",
    "all_rules",
    "build_cfg",
    "find_leaks",
    "function_cfgs",
    "get_rule",
    "register",
    "run_check",
]
