"""Finding records and severities shared by every rule and reporter."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict


class Severity(str, enum.Enum):
    """How bad a finding is; ``ERROR`` findings fail the check.

    ``NOTE`` is the informational tier: the CI run over ``tests/``
    demotes everything to it, so the findings land in the SARIF
    artifact without failing the job.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``snippet`` is the stripped source line the finding points at; the
    baseline keys on ``(rule, path, snippet)`` rather than the line
    number, so unrelated edits that shift lines do not invalidate
    grandfathered findings.
    """

    rule: str
    severity: Severity
    path: str  # posix path relative to the scan root's parent
    line: int
    col: int
    message: str
    snippet: str = ""

    @property
    def key(self) -> str:
        """Stable identity used for baseline matching."""
        return f"{self.rule}::{self.path}::{self.snippet}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: list = field(default_factory=list)  # unsuppressed, sorted
    suppressed: list = field(default_factory=list)  # matched the baseline
    unused_baseline: list = field(default_factory=list)  # stale entries
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        """True when no unsuppressed ERROR finding remains."""
        return not any(f.severity is Severity.ERROR for f in self.findings)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)
