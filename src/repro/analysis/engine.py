"""Project model, the analysis context and the check driver.

:func:`run_check` walks a source tree, parses every ``.py`` file once,
then drives every selected rule through one shared module walk:
``prepare`` once, ``check_module`` per file, ``finish`` once.  The
walk owns an :class:`AnalysisContext` that carries the configuration,
per-rule scratch state and a lazy per-module CFG cache, so a module's
control-flow graphs are built at most once no matter how many
flow-aware rules ask for them.  Everything a rule needs — source, AST,
per-line text, CFG facts, project-level lookups — lives on
:class:`ModuleInfo` / :class:`Project` / :class:`AnalysisContext`, so
rules never touch the filesystem themselves (which is what makes them
trivially testable on synthetic fixture trees).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .baseline import Baseline
from .cfg import CFG, function_cfgs
from .findings import Finding, Report
from .registry import Rule, select_rules


def _default_metric_names() -> Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]:
    from ..obs import names

    return (names.COUNTERS, names.GAUGES, names.HISTOGRAMS)


#: Modules the service layer contributes to the concurrency-sensitive
#: scan sets (R8/R9/R10 defaults below).
_SERVE_MODULES = (
    "repro/serve/admission.py",
    "repro/serve/http.py",
    "repro/serve/quotas.py",
    "repro/serve/service.py",
    "repro/serve/sessions.py",
    "repro/serve/snapshot.py",
    "repro/serve/wire.py",
)


@dataclass
class Config:
    """Tunable rule configuration.

    Paths are posix, relative to the scan root's *parent* (so for the
    real tree they read ``repro/engine/durable.py``).  Tests point these
    at fixture trees.
    """

    #: R1: the only modules allowed to open files for writing / rename.
    durable_allowed: FrozenSet[str] = frozenset({"repro/engine/durable.py"})
    #: R3: modules included in the lock-graph analysis.
    lock_modules: FrozenSet[str] = frozenset(
        {
            "repro/obs/metrics.py",
            "repro/obs/trace.py",
            "repro/obs/context.py",
            "repro/obs/queries.py",
            "repro/engine/parallel.py",
            "repro/core/imprints/manager.py",
        }
    )
    #: R5: hot-path modules that must use obs timing helpers.
    hotpath_modules: FrozenSet[str] = frozenset(
        {
            "repro/core/query.py",
            "repro/core/imprints/manager.py",
            "repro/engine/select.py",
            "repro/engine/parallel.py",
            "repro/engine/aggregate.py",
            "repro/engine/join.py",
            "repro/engine/compression.py",
            "repro/engine/compressed.py",
            "repro/engine/kernels.py",
            "repro/sql/executor.py",
        }
    )
    #: R5/R6: obs modules themselves are exempt (they *are* the helpers).
    #: Deliberately narrow: ``repro/obs/queries.py`` is *not* here, so
    #: the lifecycle counters it emits stay subject to the R6 registry.
    obs_modules: FrozenSet[str] = frozenset(
        {
            "repro/obs/__init__.py",
            "repro/obs/trace.py",
            "repro/obs/metrics.py",
            "repro/obs/timing.py",
            "repro/obs/names.py",
            "repro/obs/_context_state.py",
            "repro/obs/context.py",
        }
    )
    #: R6: declared metric names; ``None`` loads :mod:`repro.obs.names`.
    metric_names: Optional[
        Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]
    ] = None

    #: R7: acquire-method -> release-method pairs the leak analysis
    #: tracks (the admission slot, snapshot pin, session checkout and
    #: hand-driven context-manager protocols, plus bare Lock.acquire).
    resource_pairs: Tuple[Tuple[str, str], ...] = (
        ("acquire", "release"),
        ("pin", "unpin"),
        ("_pin", "_unpin"),
        ("checkout", "checkin"),
        ("__enter__", "__exit__"),
    )
    #: R8: modules whose typed exceptions must be status-mapped, and the
    #: front-end module whose handlers define the mapping.
    serve_modules: FrozenSet[str] = frozenset(_SERVE_MODULES)
    status_module: str = "repro/serve/http.py"
    #: R8: exception classes defined elsewhere that the serve layer must
    #: still map (``relpath::ClassName``) — the cancellation path.
    extra_status_exceptions: FrozenSet[str] = frozenset(
        {"repro/obs/queries.py::QueryCancelled"}
    )
    #: R9: modules scanned for blocking calls under a held lock (the
    #: R3 set plus the service layer's lock-owning modules).
    blocking_scan_modules: FrozenSet[str] = frozenset(
        {
            "repro/obs/metrics.py",
            "repro/obs/trace.py",
            "repro/obs/context.py",
            "repro/obs/queries.py",
            "repro/engine/parallel.py",
            "repro/core/imprints/manager.py",
        }
        | set(_SERVE_MODULES)
    )
    #: R10: modules where a raw ``threading.Thread`` spawn must copy
    #: contextvars or go through ``parallel.run_tasks``.
    thread_modules: FrozenSet[str] = frozenset(
        {
            "repro/core/query.py",
            "repro/core/imprints/manager.py",
            "repro/engine/select.py",
            "repro/engine/parallel.py",
            "repro/engine/aggregate.py",
            "repro/engine/join.py",
            "repro/engine/compression.py",
            "repro/engine/compressed.py",
            "repro/engine/kernels.py",
            "repro/sql/executor.py",
        }
        | set(_SERVE_MODULES)
    )
    #: R11: modules whose segment/morsel scan loops must reach a
    #: cooperative deadline check (the hot-path set plus the imprint
    #: segment store, which is where the scan loops actually live).
    cancellation_modules: Optional[FrozenSet[str]] = None

    def metrics(self) -> Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]:
        if self.metric_names is not None:
            return self.metric_names
        return _default_metric_names()

    def cancellation_scan_modules(self) -> FrozenSet[str]:
        if self.cancellation_modules is not None:
            return self.cancellation_modules
        return self.hotpath_modules | {"repro/core/imprints/segments.py"}


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path  # absolute
    relpath: str  # posix, relative to scan root's parent
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, relpath: str) -> "ModuleInfo":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )


class Project:
    """All parsed modules plus the rule configuration."""

    def __init__(
        self, modules: Sequence[ModuleInfo], config: Optional[Config] = None
    ) -> None:
        self.modules = list(modules)
        self.config = config if config is not None else Config()
        self._by_relpath: Dict[str, ModuleInfo] = {
            m.relpath: m for m in self.modules
        }

    def module(self, relpath: str) -> Optional[ModuleInfo]:
        return self._by_relpath.get(relpath)

    @classmethod
    def load(
        cls,
        root: Path,
        config: Optional[Config] = None,
        paths: Optional[Sequence[Path]] = None,
    ) -> "Project":
        """Parse ``root``'s tree (or an explicit file list).

        ``relpath`` is computed against ``root.parent`` so the root
        directory's own name leads every path (``repro/...``).
        """
        root = Path(root).resolve()
        if paths is None:
            files = sorted(p for p in root.rglob("*.py") if p.is_file())
        else:
            files = sorted(Path(p).resolve() for p in paths)
        modules = []
        for path in files:
            try:
                rel = path.relative_to(root.parent).as_posix()
            except ValueError:
                rel = path.name
            modules.append(ModuleInfo.parse(path, rel))
        return cls(modules, config=config)


class AnalysisContext:
    """Shared state for one :func:`run_check` run.

    ``state`` is per-rule scratch keyed by rule id — rule instances are
    global singletons, so anything accumulated across modules (lock
    edges, raised-exception inventories) must live here, not on the
    rule.  ``cfgs``/``cfg`` expose the lazily built, cached control-flow
    graphs; the first flow-aware rule to ask pays the construction cost
    for a module, everyone after reads the cache.
    """

    def __init__(self, project: Project) -> None:
        self.project = project
        self.config = project.config
        self.state: Dict[str, Any] = {}
        self._cfg_cache: Dict[str, Dict[int, CFG]] = {}

    def cfgs(self, module: ModuleInfo) -> Dict[int, CFG]:
        """Every function CFG in ``module``, keyed by ``id(func_node)``."""
        cached = self._cfg_cache.get(module.relpath)
        if cached is None:
            cached = function_cfgs(module.tree)
            self._cfg_cache[module.relpath] = cached
        return cached

    def cfg(self, module: ModuleInfo, func: ast.AST) -> Optional[CFG]:
        """The CFG of one function node in ``module`` (None for nodes
        that are not function definitions of this module)."""
        return self.cfgs(module).get(id(func))


def default_root() -> Path:
    """The installed ``repro`` package directory (the default scan root)."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_baseline_path(root: Optional[Path] = None) -> Path:
    """``repro-check.baseline.json`` next to the source tree.

    For a ``src/repro`` layout that is the repository root; for an
    installed package it degrades to a path that simply does not exist,
    which the loader treats as an empty baseline.
    """
    root = Path(root) if root is not None else default_root()
    return root.parent.parent / "repro-check.baseline.json"


def run_check(
    root: Optional[Path] = None,
    *,
    config: Optional[Config] = None,
    baseline: Optional[Baseline] = None,
    baseline_path: Optional[Path] = None,
    rule_ids: Optional[Iterable[str]] = None,
    paths: Optional[Sequence[Path]] = None,
) -> Report:
    """Run the registered rules over one shared module walk and fold in
    the baseline.

    ``rule_ids`` accepts long ids and short codes (``R7``).  ``paths``
    restricts the scan to an explicit file list (the CLI's ``--path``
    filter resolves directories to their ``.py`` files first).
    ``baseline`` wins over ``baseline_path``; passing neither loads the
    committed default (missing file = empty baseline).
    """
    root = Path(root) if root is not None else default_root()
    project = Project.load(root, config=config, paths=paths)
    if baseline is None:
        path = (
            Path(baseline_path)
            if baseline_path is not None
            else default_baseline_path(root)
        )
        baseline = Baseline.load(path)

    rules = select_rules(rule_ids)
    ctx = AnalysisContext(project)
    findings: List[Finding] = []
    for rule in rules:
        rule.prepare(ctx)
    for module in project.modules:
        for rule in rules:
            findings.extend(rule.check_module(module, ctx))
    for rule in rules:
        findings.extend(rule.finish(ctx))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report = Report(files_scanned=len(project.modules))
    for finding in findings:
        if baseline.matches(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    if paths is None:
        # Stale-entry detection only means something on a full-tree
        # scan; a --path run legitimately never touches most entries.
        report.unused_baseline = baseline.unused()
    return report
