"""Project model and the check driver.

:func:`run_check` walks a source tree, parses every ``.py`` file once,
hands the parsed modules to each registered rule, applies the baseline
and returns a :class:`~repro.analysis.findings.Report`.  Everything a
rule needs — source, AST, per-line text, project-level lookups — lives
on :class:`ModuleInfo` / :class:`Project`, so rules never touch the
filesystem themselves (which is what makes them trivially testable on
synthetic fixture trees).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .baseline import Baseline
from .findings import Finding, Report, Severity
from .registry import Rule, select_rules


def _default_metric_names() -> Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]:
    from ..obs import names

    return (names.COUNTERS, names.GAUGES, names.HISTOGRAMS)


@dataclass
class Config:
    """Tunable rule configuration.

    Paths are posix, relative to the scan root's *parent* (so for the
    real tree they read ``repro/engine/durable.py``).  Tests point these
    at fixture trees.
    """

    #: R1: the only modules allowed to open files for writing / rename.
    durable_allowed: FrozenSet[str] = frozenset({"repro/engine/durable.py"})
    #: R3: modules included in the lock-graph analysis.
    lock_modules: FrozenSet[str] = frozenset(
        {
            "repro/obs/metrics.py",
            "repro/obs/trace.py",
            "repro/obs/context.py",
            "repro/obs/queries.py",
            "repro/engine/parallel.py",
            "repro/core/imprints/manager.py",
        }
    )
    #: R5: hot-path modules that must use obs timing helpers.
    hotpath_modules: FrozenSet[str] = frozenset(
        {
            "repro/core/query.py",
            "repro/core/imprints/manager.py",
            "repro/engine/select.py",
            "repro/engine/parallel.py",
            "repro/engine/aggregate.py",
            "repro/engine/join.py",
            "repro/engine/compression.py",
            "repro/engine/compressed.py",
            "repro/engine/kernels.py",
            "repro/sql/executor.py",
        }
    )
    #: R5/R6: obs modules themselves are exempt (they *are* the helpers).
    #: Deliberately narrow: ``repro/obs/queries.py`` is *not* here, so
    #: the lifecycle counters it emits stay subject to the R6 registry.
    obs_modules: FrozenSet[str] = frozenset(
        {
            "repro/obs/__init__.py",
            "repro/obs/trace.py",
            "repro/obs/metrics.py",
            "repro/obs/timing.py",
            "repro/obs/names.py",
            "repro/obs/_context_state.py",
            "repro/obs/context.py",
        }
    )
    #: R6: declared metric names; ``None`` loads :mod:`repro.obs.names`.
    metric_names: Optional[
        Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]
    ] = None

    def metrics(self) -> Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]:
        if self.metric_names is not None:
            return self.metric_names
        return _default_metric_names()


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path  # absolute
    relpath: str  # posix, relative to scan root's parent
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, relpath: str) -> "ModuleInfo":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )


class Project:
    """All parsed modules plus the rule configuration."""

    def __init__(self, modules: Sequence[ModuleInfo], config: Optional[Config] = None):
        self.modules = list(modules)
        self.config = config if config is not None else Config()
        self._by_relpath: Dict[str, ModuleInfo] = {
            m.relpath: m for m in self.modules
        }

    def module(self, relpath: str) -> Optional[ModuleInfo]:
        return self._by_relpath.get(relpath)

    @classmethod
    def load(
        cls,
        root: Path,
        config: Optional[Config] = None,
        paths: Optional[Sequence[Path]] = None,
    ) -> "Project":
        """Parse ``root``'s tree (or an explicit file list).

        ``relpath`` is computed against ``root.parent`` so the root
        directory's own name leads every path (``repro/...``).
        """
        root = Path(root).resolve()
        if paths is None:
            files = sorted(p for p in root.rglob("*.py") if p.is_file())
        else:
            files = [Path(p).resolve() for p in paths]
        modules = []
        for path in files:
            try:
                rel = path.relative_to(root.parent).as_posix()
            except ValueError:
                rel = path.name
            modules.append(ModuleInfo.parse(path, rel))
        return cls(modules, config=config)


def default_root() -> Path:
    """The installed ``repro`` package directory (the default scan root)."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_baseline_path(root: Optional[Path] = None) -> Path:
    """``repro-check.baseline.json`` next to the source tree.

    For a ``src/repro`` layout that is the repository root; for an
    installed package it degrades to a path that simply does not exist,
    which the loader treats as an empty baseline.
    """
    root = Path(root) if root is not None else default_root()
    return root.parent.parent / "repro-check.baseline.json"


def run_check(
    root: Optional[Path] = None,
    *,
    config: Optional[Config] = None,
    baseline: Optional[Baseline] = None,
    baseline_path: Optional[Path] = None,
    rule_ids: Optional[Iterable[str]] = None,
    paths: Optional[Sequence[Path]] = None,
) -> Report:
    """Run the registered rules and fold in the baseline.

    ``baseline`` wins over ``baseline_path``; passing neither loads the
    committed default (missing file = empty baseline).
    """
    root = Path(root) if root is not None else default_root()
    project = Project.load(root, config=config, paths=paths)
    if baseline is None:
        path = (
            Path(baseline_path)
            if baseline_path is not None
            else default_baseline_path(root)
        )
        baseline = Baseline.load(path)

    rules = select_rules(rule_ids)
    findings: List[Finding] = []
    for rule in rules:
        for module in project.modules:
            findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(project))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report = Report(files_scanned=len(project.modules))
    for finding in findings:
        if baseline.matches(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    report.unused_baseline = baseline.unused()
    return report
