"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``os.path.join`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def string_literal(node: ast.AST) -> Optional[str]:
    """The value of a plain string constant, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def int_literal(node: ast.AST) -> Optional[int]:
    """The value of a plain int constant, else None."""
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    ):
        return node.value
    return None


def walk_functions(
    tree: ast.AST,
) -> Iterator[Tuple[Optional[str], ast.AST]]:
    """Yield ``(enclosing_class_name, function_node)`` for every
    function/method in the tree (class name is None at module level)."""
    stack: list = [(None, tree)]
    while stack:
        class_name, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                stack.append((child.name, child))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield class_name, child
                stack.append((class_name, child))
            else:
                stack.append((class_name, child))


def is_self_attribute(node: ast.AST, attr: Optional[str] = None) -> bool:
    """True for ``self.<attr>`` (any attribute when ``attr`` is None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )
