"""R4 ``struct-format``: format strings must match their declared shape.

The ``.col`` / ``.imprint`` / LAS headers are hand-packed binary
layouts; a format-string edit that drifts from the module's declared
size constant (or from a ``pack``/``unpack`` call shape) currently only
surfaces as a checksum failure at load time, far from the edit.  This
rule makes the drift a lint error at the definition site:

* every literal ``struct.Struct("...")`` / ``struct.calcsize("...")``
  format must parse,
* a static comparison ``NAME.size == CONST`` (e.g. the
  ``assert _STRUCT.size == HEADER_SIZE`` guard in ``las/header.py``)
  is evaluated against the computed size,
* ``NAME.pack(a, b, ...)`` must pass exactly as many values as the
  format has fields,
* ``a, b, c = NAME.unpack(...)`` must bind exactly as many names as the
  format yields.
"""

from __future__ import annotations

import ast
import re
import struct
from typing import TYPE_CHECKING, Dict, Iterator, Optional

from ..astutil import dotted_name, int_literal, string_literal
from ..findings import Finding
from ..registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import AnalysisContext, ModuleInfo

_FIELD_RE = re.compile(r"(\d*)([xcbB?hHiIlLqQnNefdspP])")


def field_count(fmt: str) -> int:
    """Number of values ``pack`` consumes / ``unpack`` yields for ``fmt``.

    ``s``/``p`` consume their repeat count as one bytes value; ``x`` pad
    bytes consume none; every other code repeats element-wise.
    """
    body = fmt
    if body and body[0] in "@=<>!":
        body = body[1:]
    count = 0
    for match in _FIELD_RE.finditer(body.replace(" ", "")):
        repeat_text, code = match.groups()
        repeat = int(repeat_text) if repeat_text else 1
        if code == "x":
            pass
        elif code in "sp":
            count += 1
        else:
            count += repeat
    return count


@register
class StructFormatRule(Rule):
    id = "struct-format"
    code = "R4"
    doc = (
        "struct format strings inconsistent with size constants or "
        "pack/unpack call shapes"
    )

    def check_module(
        self, module: "ModuleInfo", ctx: "AnalysisContext"
    ) -> Iterator[Finding]:
        if "struct" not in module.source:
            return
        structs: Dict[str, str] = {}  # local name -> format literal
        constants: Dict[str, int] = {}  # module-level int constants

        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = int_literal(stmt.value)
                if value is not None:
                    constants[target.id] = value
                fmt = self._struct_literal(stmt.value)
                if fmt is not None:
                    structs[target.id] = fmt

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, structs)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(module, node, structs, constants)
            elif isinstance(node, ast.Assign):
                yield from self._check_unpack_assign(module, node, structs)

    # -- pieces ------------------------------------------------------------

    @staticmethod
    def _struct_literal(node: ast.AST) -> Optional[str]:
        """The format of a ``struct.Struct("<...>")`` call, else None."""
        if not isinstance(node, ast.Call):
            return None
        if dotted_name(node.func) not in ("struct.Struct", "Struct"):
            return None
        if len(node.args) != 1:
            return None
        return string_literal(node.args[0])

    def _check_call(
        self, module: "ModuleInfo", node: ast.Call, structs: Dict[str, str]
    ) -> Iterator[Finding]:
        # Invalid format literal anywhere it is declared or used inline.
        fmt = self._struct_literal(node)
        name = dotted_name(node.func)
        if fmt is None and name in ("struct.calcsize", "struct.pack", "struct.unpack"):
            if node.args:
                fmt = string_literal(node.args[0])
        if fmt is not None:
            try:
                struct.calcsize(fmt)
            except struct.error as exc:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"invalid struct format {fmt!r}: {exc}",
                )
                return

        # NAME.pack(...) arity against the declared format.
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "pack"
            and isinstance(func.value, ast.Name)
            and func.value.id in structs
        ):
            if any(isinstance(a, ast.Starred) for a in node.args):
                return  # *args: arity unknowable statically
            expected = field_count(structs[func.value.id])
            got = len(node.args)
            if got != expected:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"{func.value.id}.pack() passes {got} values but format "
                    f"{structs[func.value.id]!r} has {expected} fields",
                )

    def _check_compare(
        self,
        module: "ModuleInfo",
        node: ast.Compare,
        structs: Dict[str, str],
        constants: Dict[str, int],
    ) -> Iterator[Finding]:
        """Statically evaluate ``NAME.size == CONST`` comparisons."""
        if len(node.ops) != 1 or not isinstance(node.ops[0], ast.Eq):
            return
        sides = [node.left, node.comparators[0]]
        size: Optional[int] = None
        const: Optional[int] = None
        const_name = struct_name = ""
        for side in sides:
            name = dotted_name(side)
            if name and name.endswith(".size") and name[: -len(".size")] in structs:
                struct_name = name[: -len(".size")]
                fmt = structs[struct_name]
                try:
                    size = struct.calcsize(fmt)
                except struct.error:
                    return  # reported by _check_call at the declaration
            elif isinstance(side, ast.Name) and side.id in constants:
                const = constants[side.id]
                const_name = side.id
            elif int_literal(side) is not None:
                const = int_literal(side)
                const_name = str(const)
        if size is not None and const is not None and size != const:
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"{struct_name}.size is {size} but {const_name} is "
                f"{const}: the format string and the declared header size "
                "have drifted apart",
            )

    def _check_unpack_assign(
        self, module: "ModuleInfo", node: ast.Assign, structs: Dict[str, str]
    ) -> Iterator[Finding]:
        """``a, b, c = NAME.unpack(...)`` arity check."""
        if len(node.targets) != 1 or not isinstance(node.value, ast.Call):
            return
        target = node.targets[0]
        if not isinstance(target, (ast.Tuple, ast.List)):
            return
        if any(isinstance(e, ast.Starred) for e in target.elts):
            return
        func = node.value.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("unpack", "unpack_from")
            and isinstance(func.value, ast.Name)
            and func.value.id in structs
        ):
            return
        expected = field_count(structs[func.value.id])
        got = len(target.elts)
        if got != expected:
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"unpacking {func.value.id} ({structs[func.value.id]!r}, "
                f"{expected} fields) into {got} names",
            )
