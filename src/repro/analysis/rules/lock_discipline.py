"""R3 ``lock-discipline``: mutate shared state under its lock, in order.

Over the configured concurrency modules this rule builds a static
model of lock usage:

* **Lock inventory** — ``self._lock = threading.Lock()`` (or ``RLock``)
  in ``__init__`` declares an instance lock ``Class.<attr>``;
  ``NAME = threading.Lock()`` at module level declares a module lock
  ``<module>.<NAME>``.
* **Guarded-write analysis** — for every class owning a lock, each
  write to ``self.<attr>`` (assignment, augmented assignment, subscript
  store, or a mutating method call like ``.append``/``.pop``) is
  recorded together with the locks statically held at that point.
  An attribute written *both* under the class's own lock *and* with no
  lock held — outside ``__init__``, where the object is not yet shared
  — is flagged at the unguarded site.
* **Lock-order graph** — acquiring lock B while holding lock A adds the
  edge A→B; any cycle in the combined graph across the configured
  modules (a potential ABBA deadlock) is flagged once per cycle.

The analysis is intraprocedural and name-based — it cannot see a lock
passed through a helper — which is exactly enough for this codebase's
convention of ``with self._lock:`` blocks around plain attribute state.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from ..astutil import dotted_name
from ..findings import Finding
from ..registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import AnalysisContext, ModuleInfo

#: Method calls treated as mutations of ``self.<attr>``.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "popleft",
        "remove",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "appendleft",
    }
)

_LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "Lock",
        "RLock",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)


class _Write:
    __slots__ = ("attr", "held", "lineno", "col", "function", "kind")

    def __init__(
        self,
        attr: str,
        held: FrozenSet[str],
        lineno: int,
        col: int,
        function: str,
        kind: str,
    ) -> None:
        self.attr = attr
        self.held = held  # frozenset of lock ids held at the write
        self.lineno = lineno
        self.col = col
        self.function = function
        self.kind = kind  # "assign" | "mutate"


class _ModuleLockModel(ast.NodeVisitor):
    """Collect locks, guarded writes and acquisition edges for a module."""

    def __init__(self, module_label: str) -> None:
        self.module_label = module_label
        self.module_locks: Dict[str, str] = {}  # local name -> lock id
        self.class_locks: Dict[str, Dict[str, str]] = {}  # class -> attr -> id
        self.writes: Dict[str, List[_Write]] = {}  # class -> writes
        self.edges: Dict[Tuple[str, str], Tuple[int, str]] = {}
        self._class: Optional[str] = None
        self._function: Optional[str] = None
        self._held: Tuple[str, ...] = ()

    # -- inventory ---------------------------------------------------------

    def _lock_id_for_with_item(self, expr: ast.AST) -> Optional[str]:
        """The lock id acquired by ``with <expr>:``, if we know it."""
        name = dotted_name(expr)
        if name is None:
            return None
        if name.startswith("self."):
            attr = name[len("self."):]
            if self._class and attr in self.class_locks.get(self._class, {}):
                return self.class_locks[self._class][attr]
            return None
        return self.module_locks.get(name)

    def visit_Module(self, node: ast.Module) -> None:
        # Pass 1: module-level locks and per-class lock attributes, so
        # later `with` lookups resolve regardless of definition order.
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                factory = dotted_name(stmt.value.func)
                if factory in _LOCK_FACTORIES:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.module_locks[target.id] = (
                                f"{self.module_label}.{target.id}"
                            )
            if isinstance(stmt, ast.ClassDef):
                self._collect_class_locks(stmt)
        self.generic_visit(node)

    def _collect_class_locks(self, node: ast.ClassDef) -> None:
        locks: Dict[str, str] = {}
        for child in ast.walk(node):
            if not isinstance(child, ast.Assign):
                continue
            if not isinstance(child.value, ast.Call):
                continue
            if dotted_name(child.value.func) not in _LOCK_FACTORIES:
                continue
            for target in child.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    locks[target.attr] = f"{node.name}.{target.attr}"
        if locks:
            self.class_locks[node.name] = locks

    # -- traversal state ---------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        previous = self._class
        self._class = node.name
        self.generic_visit(node)
        self._class = previous

    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        previous, held = self._function, self._held
        self._function = node.name
        self._held = ()  # a new frame does not inherit `with` blocks
        self.generic_visit(node)
        self._function, self._held = previous, held

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock_id = self._lock_id_for_with_item(item.context_expr)
            if lock_id is not None:
                for holder in self._held:
                    if holder != lock_id:
                        self.edges.setdefault(
                            (holder, lock_id),
                            (node.lineno, self.module_label),
                        )
                acquired.append(lock_id)
        self._held = self._held + tuple(acquired)
        self.generic_visit(node)
        if acquired:
            self._held = self._held[: len(self._held) - len(acquired)]

    # -- writes ------------------------------------------------------------

    def _record_write(self, attr: str, node: ast.AST, kind: str) -> None:
        if self._class is None or self._function is None:
            return
        self.writes.setdefault(self._class, []).append(
            _Write(
                attr,
                frozenset(self._held),
                node.lineno,
                node.col_offset,
                self._function,
                kind,
            )
        )

    def _write_target_attr(self, target: ast.AST) -> Optional[str]:
        """``self.x`` or ``self.x[...]`` as a write to attr ``x``."""
        if isinstance(target, ast.Subscript):
            target = target.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = self._write_target_attr(target)
            if attr is not None:
                self._record_write(attr, node, "assign")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self._write_target_attr(node.target)
        if attr is not None:
            self._record_write(attr, node, "assign")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = self._write_target_attr(target)
            if attr is not None:
                self._record_write(attr, node, "assign")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            self._record_write(func.value.attr, node, "mutate")
        self.generic_visit(node)


def _find_cycles(edges: Dict[Tuple[str, str], Tuple[int, str]]) -> List[List[str]]:
    """Simple cycles in the lock-order graph (DFS, deduplicated by the
    cycle's sorted node set)."""
    graph: Dict[str, Set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    cycles: List[List[str]] = []
    seen_sets: Set[FrozenSet[str]] = set()

    def dfs(start: str, node: str, path: List[str], visited: Set[str]) -> None:
        for succ in sorted(graph.get(node, ())):
            if succ == start:
                key = frozenset(path)
                if key not in seen_sets:
                    seen_sets.add(key)
                    cycles.append(path + [start])
            elif succ not in visited:
                visited.add(succ)
                dfs(start, succ, path + [succ], visited)
                visited.discard(succ)

    for start in sorted(graph):
        dfs(start, start, [start], {start})
    return cycles


@register
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    code = "R3"
    doc = (
        "shared attributes written both inside and outside their lock; "
        "inconsistent lock-acquisition order"
    )

    def prepare(self, ctx: "AnalysisContext") -> None:
        # The lock-order graph spans modules; the edges accumulate on
        # the context during the shared walk and the cycle check runs
        # once at finish().
        ctx.state[self.id] = {"edges": {}, "edge_modules": {}}

    def check_module(
        self, module: "ModuleInfo", ctx: "AnalysisContext"
    ) -> Iterator[Finding]:
        if module.relpath not in ctx.config.lock_modules:
            return
        state = ctx.state[self.id]
        label = module.relpath.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        model = _ModuleLockModel(label)
        model.visit(module.tree)
        yield from self._check_guarded_writes(module, model)
        for edge, site in model.edges.items():
            if edge not in state["edges"]:
                state["edges"][edge] = site
                state["edge_modules"][edge] = module

    def finish(self, ctx: "AnalysisContext") -> Iterator[Finding]:
        state = ctx.state[self.id]
        all_edges: Dict[Tuple[str, str], Tuple[int, str]] = state["edges"]
        for cycle in _find_cycles(all_edges):
            first_edge = (cycle[0], cycle[1])
            lineno, _ = all_edges.get(first_edge, (1, ""))
            module = state["edge_modules"].get(first_edge)
            if module is None:
                continue
            yield self.finding(
                module,
                lineno,
                0,
                "inconsistent lock order: "
                + " -> ".join(cycle)
                + " forms a cycle (potential ABBA deadlock); pick one "
                "global acquisition order",
            )

    def _check_guarded_writes(
        self, module: "ModuleInfo", model: _ModuleLockModel
    ) -> Iterator[Finding]:
        for class_name, writes in model.writes.items():
            class_lock_ids = set(
                model.class_locks.get(class_name, {}).values()
            )
            if not class_lock_ids:
                continue  # lock-free class: nothing to hold
            lock_attrs = set(model.class_locks.get(class_name, {}))
            by_attr: Dict[str, List[_Write]] = {}
            for write in writes:
                if write.attr in lock_attrs:
                    continue  # assigning the lock itself
                by_attr.setdefault(write.attr, []).append(write)
            for attr, attr_writes in sorted(by_attr.items()):
                locked = [
                    w
                    for w in attr_writes
                    if w.held & class_lock_ids
                ]
                unlocked = [
                    w
                    for w in attr_writes
                    if not w.held
                    and w.function not in ("__init__", "__new__")
                ]
                if locked and unlocked:
                    for write in unlocked:
                        yield self.finding(
                            module,
                            write.lineno,
                            write.col,
                            f"{class_name}.{attr} is written under "
                            f"{sorted(w for l in locked for w in l.held)[0]} "
                            f"elsewhere but mutated here in "
                            f"{write.function}() with no lock held",
                        )
