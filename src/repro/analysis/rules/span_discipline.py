"""R5 ``span-discipline``: hot paths time themselves through ``obs``.

The observability layer promises that disabled tracing costs one
attribute check; that only holds while hot-path code takes its wall
clock through :mod:`repro.obs` (``maybe_span``, ``obs.timing.now`` /
``Stopwatch``) rather than scattering raw ``time.time()`` /
``time.perf_counter()`` calls that the tracer can never see.  This rule
flags direct clock calls in the configured hot-path modules; the obs
modules themselves are exempt because they *are* the helpers.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..astutil import dotted_name
from ..findings import Finding
from ..registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import AnalysisContext, ModuleInfo

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "_time.time",
        "_time.perf_counter",
        "_time.monotonic",
    }
)


@register
class SpanDisciplineRule(Rule):
    id = "span-discipline"
    code = "R5"
    doc = (
        "direct time.time/perf_counter calls in hot-path modules "
        "(use repro.obs timing helpers)"
    )

    def check_module(
        self, module: "ModuleInfo", ctx: "AnalysisContext"
    ) -> Iterator[Finding]:
        hot = ctx.config.hotpath_modules
        exempt = ctx.config.obs_modules
        if module.relpath not in hot or module.relpath in exempt:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _CLOCK_CALLS:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"hot-path module calls {name}() directly: use "
                    "repro.obs.timing.now()/Stopwatch (or maybe_span) "
                    "so timing stays observable and consistent",
                )
