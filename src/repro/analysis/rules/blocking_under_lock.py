"""R9 ``blocking-under-lock``: no slow syscalls inside a critical section.

R3's lock-order graph catches ABBA deadlocks, but a single lock held
across ``fsync``, a socket send, ``time.sleep`` or a subprocess spawn
is invisible to it — and under load that is the difference between a
microsecond critical section and every admission/metrics/quota caller
convoying behind one disk flush.  The serve layer makes this concrete:
the admission controller's condition guards *counters*, not I/O, and
must stay that way.

Per configured module this rule inventories locks exactly like R3
(``threading.Lock``/``RLock``/``Condition`` factories, module-level or
``self.<attr>``), then walks each function tracking the lexically held
set through ``with`` blocks; name-based fallback treats any
``with self._lock:`` / ``with x.lock:``-shaped item as a lock even
without a visible factory.  Inside a held region it flags:

* ``os.fsync`` / ``os.fdatasync`` and ``.fsync()`` on anything,
* ``time.sleep``,
* ``subprocess.run/call/check_call/check_output/Popen`` and
  ``os.system``,
* socket traffic: ``.sendall()`` / ``.recv()`` / ``.connect()`` /
  ``.accept()`` / ``socket.create_connection``.

``Condition.wait`` is exempt by design — ``wait`` *releases* the lock
while blocking; that is the one sanctioned way to sleep inside a
critical section (the admission controller's bounded
``_cond.wait(remaining)`` loop is the canonical use).
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple, Union

from ..astutil import dotted_name
from ..findings import Finding
from ..registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import AnalysisContext, ModuleInfo

_LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "Lock",
        "RLock",
        "Condition",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)

#: Attribute names that read as locks even when the factory assignment
#: is out of lexical sight (fixtures, locks passed in, re-exports).
_LOCKISH_NAME_RE = re.compile(r"(^|_)(lock|cond|condition|mutex)$", re.I)

_BLOCKING_DOTTED = frozenset(
    {
        "os.fsync",
        "os.fdatasync",
        "os.system",
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
    }
)

_BLOCKING_METHODS = frozenset(
    {"fsync", "fdatasync", "sendall", "recv", "connect", "accept"}
)


class _HeldLockVisitor(ast.NodeVisitor):
    """Walk one module tracking which locks are lexically held."""

    def __init__(self) -> None:
        self.module_locks: Dict[str, bool] = {}
        self.class_lock_attrs: Dict[str, Set[str]] = {}
        self._class: Optional[str] = None
        self._held: Tuple[str, ...] = ()
        #: (lineno, col, blocking call text, lock name) hits
        self.hits: List[Tuple[int, int, str, str]] = []

    # -- inventory ---------------------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                if dotted_name(stmt.value.func) in _LOCK_FACTORIES:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.module_locks[target.id] = True
            if isinstance(stmt, ast.ClassDef):
                attrs: Set[str] = set()
                for child in ast.walk(stmt):
                    if (
                        isinstance(child, ast.Assign)
                        and isinstance(child.value, ast.Call)
                        and dotted_name(child.value.func) in _LOCK_FACTORIES
                    ):
                        for target in child.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                attrs.add(target.attr)
                if attrs:
                    self.class_lock_attrs[stmt.name] = attrs
        self.generic_visit(node)

    def _lock_name(self, expr: ast.expr) -> Optional[str]:
        """The display name of the lock a ``with`` item acquires."""
        name = dotted_name(expr)
        if name is None:
            return None
        last = name.rsplit(".", 1)[-1]
        if name in self.module_locks:
            return name
        if name.startswith("self.") and self._class is not None:
            if last in self.class_lock_attrs.get(self._class, set()):
                return f"{self._class}.{last}"
        if _LOCKISH_NAME_RE.search(last):
            return name
        return None

    # -- traversal ---------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        previous = self._class
        self._class = node.name
        self.generic_visit(node)
        self._class = previous

    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        held = self._held
        self._held = ()  # a new frame does not inherit `with` blocks
        self.generic_visit(node)
        self._held = held

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_With(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        acquired = tuple(
            name
            for item in node.items
            if (name := self._lock_name(item.context_expr)) is not None
        )
        self._held = self._held + acquired
        self.generic_visit(node)
        if acquired:
            self._held = self._held[: len(self._held) - len(acquired)]

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        if self._held:
            blocking = self._blocking_label(node)
            if blocking is not None:
                self.hits.append(
                    (node.lineno, node.col_offset, blocking, self._held[-1])
                )
        self.generic_visit(node)

    @staticmethod
    def _blocking_label(node: ast.Call) -> Optional[str]:
        name = dotted_name(node.func)
        if name in _BLOCKING_DOTTED:
            return f"{name}()"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _BLOCKING_METHODS
        ):
            return f".{node.func.attr}()"
        return None


@register
class BlockingUnderLockRule(Rule):
    id = "blocking-under-lock"
    code = "R9"
    doc = (
        "fsync/socket send/time.sleep/subprocess while holding a "
        "Lock/Condition (Condition.wait exempt)"
    )

    def check_module(
        self, module: "ModuleInfo", ctx: "AnalysisContext"
    ) -> Iterator[Finding]:
        if module.relpath not in ctx.config.blocking_scan_modules:
            return
        visitor = _HeldLockVisitor()
        visitor.visit(module.tree)
        for lineno, col, blocking, lock in visitor.hits:
            yield self.finding(
                module,
                lineno,
                col,
                f"{blocking} while holding {lock}: every other waiter "
                "convoys behind this blocking call — move the I/O "
                "outside the critical section (Condition.wait is the "
                "sanctioned way to block holding a lock)",
            )
