"""The project-specific rules (importing a module registers its rule)."""
