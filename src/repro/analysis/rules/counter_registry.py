"""R6 ``counter-registry``: metric names must be declared, once.

Metrics are get-or-create by name, so a typo — ``durability.retires``
for ``durability.retries`` — silently forks a new series and the
dashboards read zero forever.  Every literal name passed to
``.counter("...")`` / ``.gauge("...")`` / ``.histogram("...")`` in the
scanned tree must appear in the declared registry
(:mod:`repro.obs.names`); adding a metric means declaring it there
first, which doubles as the documentation index.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, AbstractSet, Iterator

from ..astutil import string_literal
from ..findings import Finding
from ..registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import AnalysisContext, ModuleInfo

_KINDS = ("counter", "gauge", "histogram")


def _close_matches(name: str, candidates: AbstractSet[str]) -> str:
    import difflib

    matches = difflib.get_close_matches(name, sorted(candidates), n=1)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


@register
class CounterRegistryRule(Rule):
    id = "counter-registry"
    code = "R6"
    doc = "metric names used in src/ must be declared in repro.obs.names"

    def check_module(
        self, module: "ModuleInfo", ctx: "AnalysisContext"
    ) -> Iterator[Finding]:
        if module.relpath in ctx.config.obs_modules:
            return
        counters, gauges, histograms = ctx.config.metrics()
        declared = {
            "counter": counters,
            "gauge": gauges,
            "histogram": histograms,
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in _KINDS
            ):
                continue
            if not node.args:
                continue
            name = string_literal(node.args[0])
            if name is None:
                continue  # dynamic name: out of scope for the linter
            if name not in declared[func.attr]:
                hint = _close_matches(
                    name,
                    declared[func.attr]
                    or declared["counter"] | declared["histogram"],
                )
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"{func.attr} name {name!r} is not declared in "
                    f"repro.obs.names{hint}; declare it there (typo'd "
                    "names silently fork a new series)",
                )
