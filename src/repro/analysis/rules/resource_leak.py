"""R7 ``resource-leak``: every acquire must reach its release.

The service layer is a chain of counted resources — admission slots,
snapshot generation pins, session checkouts, resource-tracker frames,
raw file handles — and each one leaks the same way: an early ``return``
or an escaping exception between the acquire and the release.  A leaked
admission slot is permanent denial of service (the daemon's concurrency
shrinks by one forever); a leaked pin keeps a whole superseded snapshot
generation alive.

This rule runs the generic acquire/release dataflow
(:mod:`repro.analysis.dataflow`) over the function CFG for:

* every configured method pair (``acquire``/``release``,
  ``pin``/``unpin``, ``checkout``/``checkin``,
  ``__enter__``/``__exit__``) where one function calls **both** on the
  same receiver expression — cross-function protocols (the
  ``AdmissionController.acquire`` method itself) are out of
  intraprocedural scope and stay the province of the runtime tests;
* every ``handle = open(...)`` whose handle is a plain local that does
  not escape (returned, yielded, aliased, stored on ``self``, passed to
  a call) and that the function does ``.close()`` somewhere.

``with``-managed acquisition never flags (there is no acquire statement
to leak), and ``acquire()`` directly followed by ``try/finally:
release()`` comes out clean by CFG construction.  The finding message
distinguishes the exception-escape window from the early-return leak
and names the escaping statement.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Union

from ..astutil import dotted_name
from ..cfg import CFG, Node
from ..dataflow import Leak, find_leaks
from ..findings import Finding
from ..registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import AnalysisContext, ModuleInfo

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _receiver_text(call: ast.Call) -> Optional[str]:
    """The unparsed receiver of ``<recv>.method(...)``, else None."""
    if isinstance(call.func, ast.Attribute):
        try:
            return ast.unparse(call.func.value)
        except Exception:  # pragma: no cover - unparse failure
            return None
    return None


def _simple_nodes(cfg: CFG) -> List[Node]:
    """The simple-statement nodes (the only place an acquire/release
    call can appear as an executable statement)."""
    return [n for n in cfg.nodes if n.kind == "stmt" and n.stmt is not None]


def _calls_in(stmt: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(stmt):
        if isinstance(child, ast.Call):
            yield child


@register
class ResourceLeakRule(Rule):
    id = "resource-leak"
    code = "R7"
    doc = (
        "acquired resource (slot/pin/checkout/handle) can escape its "
        "function without release on some path"
    )

    def check_module(
        self, module: "ModuleInfo", ctx: "AnalysisContext"
    ) -> Iterator[Finding]:
        from ..astutil import walk_functions

        pairs = ctx.config.resource_pairs
        for _class_name, func in walk_functions(module.tree):
            cfg = ctx.cfg(module, func)
            if cfg is None:
                continue
            nodes = _simple_nodes(cfg)
            yield from self._check_pairs(module, cfg, nodes, pairs)
            yield from self._check_open_handles(module, func, cfg, nodes)

    # -- method-pair protocols ---------------------------------------------

    def _check_pairs(
        self,
        module: "ModuleInfo",
        cfg: CFG,
        nodes: List[Node],
        pairs: Tuple[Tuple[str, str], ...],
    ) -> Iterator[Finding]:
        for acq_name, rel_name in pairs:
            acquires: Dict[str, List[Node]] = {}
            releases: Dict[str, List[Node]] = {}
            for node in nodes:
                assert node.stmt is not None
                for call in _calls_in(node.stmt):
                    if not isinstance(call.func, ast.Attribute):
                        continue
                    receiver = _receiver_text(call)
                    if receiver is None:
                        continue
                    if call.func.attr == acq_name:
                        acquires.setdefault(receiver, []).append(node)
                    elif call.func.attr == rel_name:
                        releases.setdefault(receiver, []).append(node)
            for receiver, acq_nodes in sorted(acquires.items()):
                rel_nodes = releases.get(receiver)
                if not rel_nodes:
                    # No same-function release: a cross-function
                    # protocol, not an intraprocedural leak.
                    continue
                for leak in find_leaks(cfg, acq_nodes, rel_nodes):
                    yield self._leak_finding(
                        module,
                        leak,
                        what=f"{receiver}.{acq_name}()",
                        release=f"{receiver}.{rel_name}()",
                    )

    # -- raw file handles --------------------------------------------------

    def _check_open_handles(
        self,
        module: "ModuleInfo",
        func: _FuncDef,
        cfg: CFG,
        nodes: List[Node],
    ) -> Iterator[Finding]:
        opens: Dict[str, List[Node]] = {}
        for node in nodes:
            stmt = node.stmt
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and dotted_name(stmt.value.func) in ("open", "io.open")
            ):
                opens.setdefault(stmt.targets[0].id, []).append(node)
        if not opens:
            return
        for name, acq_nodes in sorted(opens.items()):
            if self._handle_escapes(func, name):
                continue
            closes = [
                node
                for node in nodes
                if any(
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "close"
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == name
                    for call in _calls_in(node.stmt)  # type: ignore[arg-type]
                )
            ]
            if not closes:
                # Never closed at all: the handle's lifetime is someone
                # else's problem only if it escaped, which it did not —
                # but a function that never closes is usually relying on
                # GC; R7 stays scoped to broken close discipline.
                continue
            for leak in find_leaks(cfg, acq_nodes, closes):
                yield self._leak_finding(
                    module,
                    leak,
                    what=f"file handle {name!r}",
                    release=f"{name}.close()",
                )

    @staticmethod
    def _handle_escapes(func: _FuncDef, name: str) -> bool:
        """True when the handle outlives the function on some path:
        returned, yielded, aliased, stored on an attribute/subscript, or
        passed to a call."""
        for node in ast.walk(func):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and any(
                    isinstance(n, ast.Name) and n.id == name
                    for n in ast.walk(value)
                ):
                    return True
            elif isinstance(node, ast.Call):
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if any(
                        isinstance(n, ast.Name) and n.id == name
                        for n in ast.walk(arg)
                    ):
                        return True
            elif isinstance(node, ast.Assign):
                # Aliasing or storing anywhere but the defining Name.
                if isinstance(node.value, ast.Name) and node.value.id == name:
                    return True
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        if any(
                            isinstance(n, ast.Name) and n.id == name
                            for n in ast.walk(node.value)
                        ):
                            return True
        return False

    # -- shared message ----------------------------------------------------

    def _leak_finding(
        self, module: "ModuleInfo", leak: Leak, what: str, release: str
    ) -> Finding:
        escape = leak.escape_node()
        where = (
            f" (escapes via line {escape.line}: {escape.label})"
            if escape is not None
            else ""
        )
        if leak.exceptional:
            message = (
                f"an exception between {what} and {release} escapes "
                f"without releasing{where}; move the release into a "
                "try/finally or use a with block"
            )
        else:
            message = (
                f"a path from {what} reaches the function exit without "
                f"calling {release}{where}; release on every exit path"
            )
        return self.finding(
            module, leak.acquire.line, 0, message
        )
