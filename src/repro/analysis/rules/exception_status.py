"""R8 ``exception-status``: serve-layer exceptions must map to a status.

``serve/http.py`` owns the typed-exception → HTTP-status contract that
``docs/service.md`` documents (400/403/404/408/413/429/500/503).  The
contract's failure mode is silent: add a new exception class to the
service layer, forget the ``except`` arm, and clients start seeing the
generic 500 fallback — which the ``except Exception`` handler exists
for *bugs*, not for typed conditions.

The rule inventories, across the configured serve modules:

* every exception class **defined** there (a ``ClassDef`` whose base
  looks like an exception — a builtin exception name or ``*Error`` /
  ``*Exception`` / ``*Rejected`` / ``*Cancelled`` suffix),
* every class **raised** there (``raise Name(...)``),
* every class name appearing in an ``except`` clause anywhere in the
  serve layer.

A class both defined and raised but never explicitly caught gets a
finding at its definition.  Catching anywhere *inside* the serve layer
counts — ``service.py`` catching ``wire.WireFormatError`` and
re-raising ``BadRequest`` is a mapping, just a transitive one — but the
broad ``Exception``/``BaseException`` fallbacks never do, because
falling through to them is exactly the bug.  The engine cancellation
path rides along via ``extra_status_exceptions``
(``repro/obs/queries.py::QueryCancelled`` by default): those classes
must be caught in the serve layer whether or not serve raises them.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from ..astutil import dotted_name
from ..findings import Finding
from ..registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import AnalysisContext, ModuleInfo

_BUILTIN_EXCEPTIONS = frozenset(
    {
        "Exception",
        "BaseException",
        "RuntimeError",
        "ValueError",
        "TypeError",
        "KeyError",
        "LookupError",
        "OSError",
        "IOError",
        "ArithmeticError",
        "AttributeError",
        "NotImplementedError",
        "StopIteration",
        "ConnectionError",
        "TimeoutError",
    }
)

_EXC_NAME_RE = re.compile(
    r"(Error|Exception|Rejected|Cancelled|Exceeded|TooLarge)$"
)

#: Catch-all names that never count as an explicit status mapping.
_GENERIC_CATCHES = frozenset({"Exception", "BaseException"})


def _looks_like_exception_base(base: ast.expr) -> bool:
    name = dotted_name(base)
    if name is None:
        return False
    last = name.rsplit(".", 1)[-1]
    return last in _BUILTIN_EXCEPTIONS or bool(_EXC_NAME_RE.search(last))


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if exc is None:
        return None
    name = dotted_name(exc)
    return name.rsplit(".", 1)[-1] if name else None


def _caught_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return []
    exprs = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: List[str] = []
    for expr in exprs:
        name = dotted_name(expr)
        if name:
            names.append(name.rsplit(".", 1)[-1])
    return names


@register
class ExceptionStatusRule(Rule):
    id = "exception-status"
    code = "R8"
    doc = (
        "typed exceptions raised in serve/* (and the cancellation path) "
        "need an explicit status mapping in serve/http.py"
    )

    def prepare(self, ctx: "AnalysisContext") -> None:
        ctx.state[self.id] = {
            # class name -> (module, ClassDef) at the definition site
            "defined": {},
            # class names appearing in raise statements in serve/*
            "raised": set(),
            # class names explicitly caught anywhere in serve/*
            "caught": set(),
            # "relpath::Name" extras found at their definition site
            "extras": {},
        }

    def check_module(
        self, module: "ModuleInfo", ctx: "AnalysisContext"
    ) -> Iterator[Finding]:
        state = ctx.state[self.id]
        extra_here = {
            spec.split("::", 1)[1]
            for spec in ctx.config.extra_status_exceptions
            if spec.split("::", 1)[0] == module.relpath
        }
        in_serve = module.relpath in ctx.config.serve_modules
        if not in_serve and not extra_here:
            return iter(())
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                if not any(_looks_like_exception_base(b) for b in node.bases):
                    continue
                if in_serve:
                    state["defined"].setdefault(node.name, (module, node))
                if node.name in extra_here:
                    state["extras"][f"{module.relpath}::{node.name}"] = (
                        module,
                        node,
                    )
            elif in_serve and isinstance(node, ast.Raise):
                name = _raised_name(node)
                if name:
                    state["raised"].add(name)
            elif in_serve and isinstance(node, ast.ExceptHandler):
                for name in _caught_names(node):
                    if name not in _GENERIC_CATCHES:
                        state["caught"].add(name)
        return iter(())

    def finish(self, ctx: "AnalysisContext") -> Iterator[Finding]:
        state = ctx.state[self.id]
        status_module = ctx.config.status_module
        defined: Dict[str, Tuple["ModuleInfo", ast.ClassDef]] = state["defined"]
        for name in sorted(defined):
            module, node = defined[name]
            if name not in state["raised"]:
                continue  # declared but inert: nothing reaches a client
            if name in state["caught"]:
                continue
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"exception {name!r} is raised in the serve layer but "
                f"never explicitly caught there: clients get the generic "
                f"500 fallback — add a status arm for it in "
                f"{status_module}",
            )
        extras: Dict[str, Tuple["ModuleInfo", ast.ClassDef]] = state["extras"]
        for spec in sorted(ctx.config.extra_status_exceptions):
            name = spec.split("::", 1)[1]
            if name in state["caught"]:
                continue
            found = extras.get(spec)
            if found is None:
                continue  # extra module not in this scan's file set
            module, node = found
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"{name!r} (the engine cancellation signal) has no "
                f"explicit status mapping in {status_module}: a fired "
                "deadline would surface as a 500 instead of 408",
            )
