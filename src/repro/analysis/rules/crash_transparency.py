"""R2 ``crash-transparency``: never swallow ``BaseException``.

The fault-injection harness simulates a process kill by raising
:class:`~repro.engine.durable.InjectedCrash`, a ``BaseException``
subclass, from instrumented crash points.  A bare ``except:`` or an
``except BaseException:`` that does not re-raise absorbs the simulated
kill and turns a crash-recovery test into a silent no-op — exactly the
failure mode the harness exists to catch.  Handlers must re-raise (a
``raise`` anywhere in the handler body counts, conservatively) or
narrow to ``except Exception``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from ..astutil import dotted_name
from ..findings import Finding
from ..registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import AnalysisContext, ModuleInfo


def _contains_raise(node: ast.AST) -> bool:
    if isinstance(node, ast.Raise):
        return True
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return False  # nested functions run later, if at all
    return any(_contains_raise(child) for child in ast.iter_child_nodes(node))


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """True when any ``raise`` appears in the handler body."""
    return any(_contains_raise(stmt) for stmt in handler.body)


@register
class CrashTransparencyRule(Rule):
    id = "crash-transparency"
    code = "R2"
    doc = "bare except / except BaseException that does not re-raise"

    def check_module(
        self, module: "ModuleInfo", ctx: "AnalysisContext"
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = self._overbroad_label(node)
            if label is None:
                continue
            if _handler_reraises(node):
                continue
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"{label} swallows BaseException (including InjectedCrash, "
                "the simulated process kill): re-raise, or narrow to "
                "'except Exception'",
            )

    @staticmethod
    def _overbroad_label(handler: ast.ExceptHandler) -> Optional[str]:
        """'except:' / 'except BaseException' when overbroad, else None."""
        if handler.type is None:
            return "bare 'except:'"
        names = (
            [dotted_name(e) for e in handler.type.elts]
            if isinstance(handler.type, ast.Tuple)
            else [dotted_name(handler.type)]
        )
        for name in names:
            if name in ("BaseException", "builtins.BaseException"):
                return "'except BaseException'"
        return None
