"""R10 ``thread-boundary``: hot-path threads must carry their context.

PR 7 made deadlines and trace ids ambient: they live in contextvars
that :func:`repro.engine.parallel.run_tasks` copies into every worker,
which is the *only* reason ``check_deadline()`` fires inside a fanned-
out segment probe and spans nest under the right query.  A raw
``threading.Thread(target=...)`` starts with an **empty** context — the
deadline silently never fires, the spans orphan, and the query-registry
accounting loses the work.  None of that shows up in tests that do not
race a timeout.

So in the configured modules a ``threading.Thread`` construction is
flagged unless the surrounding function visibly carries the context
across the boundary: a ``contextvars.copy_context()`` call (the thread
target running under ``ctx.run`` is the sanctioned manual form, and
what ``run_tasks`` itself does) or a ``run_tasks`` call in the same
scope.  Nested function bodies are separate scopes — a ``Thread`` in a
closure does not inherit its parent's exemption.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Sequence

from ..astutil import dotted_name
from ..findings import Finding
from ..registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import AnalysisContext, ModuleInfo

_THREAD_FACTORIES = frozenset({"threading.Thread", "Thread"})

_SCOPE_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _local_walk(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested def/class scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_STMTS):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _scopes(tree: ast.Module) -> Iterator[Sequence[ast.stmt]]:
    """Every statement scope in the module: the module body plus each
    function body (class bodies fold into their module/function)."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


@register
class ThreadBoundaryRule(Rule):
    id = "thread-boundary"
    code = "R10"
    doc = (
        "raw threading.Thread in hot-path/serve modules without "
        "copy_context() or parallel.run_tasks"
    )

    def check_module(
        self, module: "ModuleInfo", ctx: "AnalysisContext"
    ) -> Iterator[Finding]:
        if module.relpath not in ctx.config.thread_modules:
            return
        for body in _scopes(module.tree):
            spawns: List[ast.Call] = []
            carries_context = False
            for node in _local_walk(body):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name in _THREAD_FACTORIES:
                    spawns.append(node)
                elif name is not None:
                    last = name.rsplit(".", 1)[-1]
                    if last in ("copy_context", "run_tasks"):
                        carries_context = True
            if carries_context:
                continue
            for spawn in spawns:
                yield self.finding(
                    module,
                    spawn.lineno,
                    spawn.col_offset,
                    "raw threading.Thread starts with an empty contextvars "
                    "context: the ambient deadline/trace state does not "
                    "propagate — route the work through parallel.run_tasks "
                    "or run the target under contextvars.copy_context()",
                )
