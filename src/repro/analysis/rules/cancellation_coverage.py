"""R11 ``cancellation-coverage``: scan loops must see the deadline.

Cooperative cancellation (PR 7) only works if every long-running loop
actually cooperates: the 408-with-partial-progress contract, the
admission drain on SIGTERM and the serve smoke test's "nothing hung"
assertion all assume a fired deadline is *noticed* within one segment.
The failure mode is a new scan loop that simply never calls
:func:`repro.obs.queries.check_deadline` — it works, it is fast, and it
ignores timeouts forever.

In the configured hot-path modules this rule looks at every ``for`` /
``while`` loop whose body performs **scan work** — a call whose name
matches the probe/decode/encode/take/classify/candidate-style kernels
(comprehensions are exempt: they are allocation-bounded assembly, not
segment iteration).  Such a loop must reach a deadline check:

* a ``check_deadline(...)`` call in the loop body, or
* a call to a same-module function that transitively reaches one (the
  module call graph is closed over ``check_deadline``/``run_tasks``),
  or
* a ``run_tasks`` fan-out in the enclosing function — the parallel
  driver checks the deadline per task, so the loop is covered by
  construction.

``__init__``/``__post_init__``/``__new__`` bodies are exempt: builders
run before a query exists, so there is no deadline to check.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Union

from ..astutil import dotted_name, walk_functions
from ..findings import Finding
from ..registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import AnalysisContext, ModuleInfo

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_Loop = Union[ast.For, ast.AsyncFor, ast.While]

#: Calls that *are* a deadline check (or delegate per-task checking).
_CHECK_NAMES = frozenset({"check_deadline", "run_tasks"})

#: Loop-body callee names (last dotted component only, so a receiver
#: called ``probes`` or a ``str.encode()`` never match) that mark the
#: loop as scan work over segments/morsels rather than cheap assembly.
#: Zone-map verdict loops are deliberately absent: they are per-segment
#: header checks, not data access, and always feed a probe stage that
#: is itself covered.
_SCAN_CALL_RE = re.compile(
    r"(probe|decode_|encode_|candidat|morsel|range_mask|match_vectors"
    r"|build_segment|^take$|^unpack_)",
)

_EXEMPT_FUNCTIONS = frozenset({"__init__", "__post_init__", "__new__"})

_SCOPE_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _local_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Calls lexically in ``node``'s scope (not nested def/class)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _SCOPE_STMTS):
            continue
        if isinstance(child, ast.Call):
            yield child
        stack.extend(ast.iter_child_nodes(child))


def _callee_key(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


def _checking_functions(tree: ast.Module) -> Set[str]:
    """Names of module functions/methods that transitively reach a
    deadline check through same-module calls (fixpoint)."""
    bodies: Dict[str, ast.AST] = {}
    calls: Dict[str, Set[str]] = {}
    checks: Set[str] = set()
    for _class_name, func in walk_functions(tree):
        bodies.setdefault(func.name, func)
        callees = {
            key
            for call in _local_calls(func)
            if (key := _callee_key(call)) is not None
        }
        calls.setdefault(func.name, set()).update(callees)
        if callees & _CHECK_NAMES:
            checks.add(func.name)
    changed = True
    while changed:
        changed = False
        for name, callees in calls.items():
            if name not in checks and callees & checks:
                checks.add(name)
                changed = True
    return checks


@register
class CancellationCoverageRule(Rule):
    id = "cancellation-coverage"
    code = "R11"
    doc = (
        "segment/morsel scan loops in hot-path modules must reach a "
        "deadline check (check_deadline or run_tasks)"
    )

    def check_module(
        self, module: "ModuleInfo", ctx: "AnalysisContext"
    ) -> Iterator[Finding]:
        if module.relpath not in ctx.config.cancellation_scan_modules():
            return
        reaches_check = _checking_functions(module.tree)
        for _class_name, func in walk_functions(module.tree):
            if func.name in _EXEMPT_FUNCTIONS:
                continue
            func_callees = {
                key
                for call in _local_calls(func)
                if (key := _callee_key(call)) is not None
            }
            if "run_tasks" in func_callees:
                continue  # fanned out: per-task checks cover the loop
            yield from self._check_loops(module, func, reaches_check)

    def _check_loops(
        self, module: "ModuleInfo", func: _FuncDef, reaches_check: Set[str]
    ) -> Iterator[Finding]:
        for node in self._local_loops(func.body):
            body_callees: Set[str] = set()
            scan_call: Optional[str] = None
            for call in self._body_calls(node):
                name = dotted_name(call.func)
                if name is None:
                    continue
                callee = name.rsplit(".", 1)[-1]
                body_callees.add(callee)
                if scan_call is None and _SCAN_CALL_RE.search(callee):
                    scan_call = name
            if scan_call is None:
                continue  # assembly/bookkeeping loop: not scan work
            if body_callees & _CHECK_NAMES:
                continue
            if body_callees & reaches_check:
                continue
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"scan loop calls {scan_call}() but no deadline check is "
                "reachable from its body: a fired timeout is never "
                "noticed — call _queries.check_deadline() in the loop "
                "(or fan out via parallel.run_tasks)",
            )

    @staticmethod
    def _local_loops(body: Sequence[ast.stmt]) -> Iterator[_Loop]:
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, _SCOPE_STMTS):
                continue
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _body_calls(loop: _Loop) -> Iterator[ast.Call]:
        stack: List[ast.AST] = list(loop.body)
        while stack:
            node = stack.pop()
            if isinstance(node, _SCOPE_STMTS):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))
