"""R1 ``durable-write``: persistence must route through ``engine/durable.py``.

Raw ``open(..., "wb")`` (any writable mode), ``os.replace`` and
``json.dump``-to-a-file are how torn output happens: a crash mid-write
leaves a half-file that the loader later trusts.  The only module
allowed to touch those primitives is :mod:`repro.engine.durable`, whose
``atomic_write_bytes`` does temp-file + fsync + rename.  Everything
else either calls the helper or carries a baseline entry explaining why
streaming output is acceptable (e.g. the LAZ chunk writer).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from ..astutil import dotted_name, string_literal
from ..findings import Finding
from ..registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import AnalysisContext, ModuleInfo

_WRITE_MODE_CHARS = set("wax+")


def _is_write_mode(mode: str) -> bool:
    return bool(set(mode) & _WRITE_MODE_CHARS)


@register
class DurableWriteRule(Rule):
    id = "durable-write"
    code = "R1"
    doc = (
        "raw open(..., 'wb')/os.replace/json.dump-to-file outside "
        "engine/durable.py"
    )

    def check_module(
        self, module: "ModuleInfo", ctx: "AnalysisContext"
    ) -> Iterator[Finding]:
        if module.relpath in ctx.config.durable_allowed:
            return
        yield from self._check(module)

    def _check(self, module: "ModuleInfo") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in ("open", "io.open"):
                mode = self._open_mode(node)
                if mode is not None and _is_write_mode(mode):
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"raw open(..., {mode!r}) bypasses "
                        "engine/durable.py: use atomic_write_bytes/"
                        "atomic_write_text so a crash cannot tear the file",
                    )
            elif name in ("os.replace", "os.rename"):
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"{name} outside engine/durable.py: route renames "
                    "through the durable layer (its _replace patch point "
                    "is what the fault harness tears)",
                )
            elif name == "json.dump" and len(node.args) >= 2:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    "json.dump to an open file bypasses engine/durable.py: "
                    "serialise with json.dumps and write via "
                    "atomic_write_text",
                )

    @staticmethod
    def _open_mode(node: ast.Call) -> Optional[str]:
        """The mode literal of an open() call, or None when unknowable."""
        if len(node.args) >= 2:
            return string_literal(node.args[1])
        for keyword in node.keywords:
            if keyword.arg == "mode":
                return string_literal(keyword.value)
        return "r"  # default mode is read-only: not a finding
