"""Committed baseline of grandfathered findings.

A baseline entry names a finding by ``(rule, path, snippet)`` — the
stripped source line, not the line number, so surrounding edits do not
invalidate it — plus a human ``justification`` explaining why the
violation is deliberate.  ``repro-gis check --update-baseline`` rewrites
the file from the current findings, preserving justifications of
entries that survive.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Union

from .findings import Finding

PathLike = Union[str, Path]

FORMAT_VERSION = 1


@dataclass
class BaselineEntry:
    rule: str
    path: str
    snippet: str
    justification: str = ""

    @property
    def key(self) -> str:
        return f"{self.rule}::{self.path}::{self.snippet}"

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "justification": self.justification,
        }


class Baseline:
    """Lookup table from finding key to baseline entry."""

    def __init__(
        self, entries: Optional[Iterable[BaselineEntry]] = None
    ) -> None:
        self._entries: Dict[str, BaselineEntry] = {}
        self._hits: Dict[str, int] = {}
        for entry in entries or ():
            self._entries[entry.key] = entry
            self._hits[entry.key] = 0

    def __len__(self) -> int:
        return len(self._entries)

    def matches(self, finding: Finding) -> bool:
        """True (and counted) when the finding is grandfathered."""
        entry = self._entries.get(finding.key)
        if entry is None:
            return False
        self._hits[entry.key] += 1
        return True

    def unused(self) -> List[BaselineEntry]:
        """Entries no current finding matched — stale, safe to delete."""
        return [
            self._entries[key]
            for key in sorted(self._entries)
            if self._hits.get(key, 0) == 0
        ]

    def justification(self, finding: Finding) -> str:
        entry = self._entries.get(finding.key)
        return entry.justification if entry is not None else ""

    # -- persistence -------------------------------------------------------

    @classmethod
    def load(cls, path: PathLike) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.is_file():
            return cls()
        doc = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(doc, dict) or "findings" not in doc:
            raise ValueError(f"{path}: not a repro-check baseline file")
        entries = [
            BaselineEntry(
                rule=str(e["rule"]),
                path=str(e["path"]),
                snippet=str(e.get("snippet", "")),
                justification=str(e.get("justification", "")),
            )
            for e in doc["findings"]
        ]
        return cls(entries)

    def save(self, path: PathLike) -> None:
        """Atomically write the baseline (it is a persistence artifact)."""
        from ..engine.durable import atomic_write_text

        entries = [self._entries[k] for k in sorted(self._entries)]
        doc = {
            "version": FORMAT_VERSION,
            "findings": [e.to_dict() for e in entries],
        }
        atomic_write_text(
            path, json.dumps(doc, indent=2) + "\n", label="check-baseline"
        )

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], previous: Optional["Baseline"] = None
    ) -> "Baseline":
        """A new baseline covering ``findings``, keeping justifications
        from ``previous`` where the entry survives."""
        entries: List[BaselineEntry] = []
        seen: Set[str] = set()
        for finding in findings:
            if finding.key in seen:
                continue
            seen.add(finding.key)
            justification = (
                previous.justification(finding) if previous is not None else ""
            )
            entries.append(
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    snippet=finding.snippet,
                    justification=justification,
                )
            )
        return cls(entries)
