"""``python -m repro.analysis`` — same driver as ``repro-gis check``."""

import sys

from .main import main

if __name__ == "__main__":  # pragma: no cover - thin shim
    sys.exit(main())
