"""Rule base class and the global rule registry.

A rule subclasses :class:`Rule`, sets ``id``/``severity``/``doc`` and
implements either :meth:`Rule.check_module` (per-file rules) or
:meth:`Rule.check_project` (cross-file rules such as lock-order cycles
or the metric-name registry).  Decorating the class with
:func:`register` adds one instance to the registry that
:func:`repro.analysis.engine.run_check` runs by default.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Type

from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import ModuleInfo, Project

_REGISTRY: Dict[str, "Rule"] = {}


class Rule:
    """One named invariant check.

    Attributes
    ----------
    id:
        Stable identifier (``durable-write``...); baseline entries and
        ``--select`` refer to it.
    severity:
        Default severity of this rule's findings.
    doc:
        One-line description shown by ``repro-gis check --list-rules``.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    doc: str = ""

    def check_module(self, module: "ModuleInfo") -> Iterator[Finding]:
        """Findings for one parsed module (default: none)."""
        return iter(())

    def check_project(self, project: "Project") -> Iterator[Finding]:
        """Findings needing the whole project (default: none)."""
        return iter(())

    # -- helpers shared by concrete rules ----------------------------------

    def finding(
        self,
        module: "ModuleInfo",
        line: int,
        col: int,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Build a finding at ``line`` with the source snippet filled in."""
        snippet = ""
        if 1 <= line <= len(module.lines):
            snippet = module.lines[line - 1].strip()
        return Finding(
            rule=self.id,
            severity=severity if severity is not None else self.severity,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add the rule to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def select_rules(ids: Optional[Iterable[str]]) -> List[Rule]:
    """The rules for an optional ``--select`` list (None = all)."""
    if ids is None:
        return all_rules()
    return [get_rule(i) for i in ids]
