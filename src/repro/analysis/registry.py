"""Rule base class and the global rule registry.

A rule subclasses :class:`Rule`, sets ``id``/``code``/``severity``/
``doc`` and implements some of the three phases the shared module walk
drives:

* :meth:`Rule.prepare` — once per run, before any module; initialise
  cross-module scratch state in ``ctx.state[self.id]``.
* :meth:`Rule.check_module` — once per parsed module, in path order;
  yield per-file findings and/or accumulate into the scratch state.
  CFG facts come from ``ctx.cfgs(module)`` — built lazily, cached, and
  shared between every rule that asks.
* :meth:`Rule.finish` — once per run, after all modules; yield findings
  that needed the whole project (lock-order cycles, the metric-name
  registry, exception-status exhaustiveness).

Because rule instances are process-global singletons, per-run state
must live on the :class:`~repro.analysis.engine.AnalysisContext`, never
on ``self`` — that is what keeps back-to-back :func:`run_check` calls
(and the test suite's fixture trees) independent.

Decorating the class with :func:`register` adds one instance to the
registry that :func:`repro.analysis.engine.run_check` runs by default.
Rules are addressable by long id (``resource-leak``) or short code
(``R7``) everywhere a rule id is accepted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Type

from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import AnalysisContext, ModuleInfo

_REGISTRY: Dict[str, "Rule"] = {}
_BY_CODE: Dict[str, "Rule"] = {}


class Rule:
    """One named invariant check.

    Attributes
    ----------
    id:
        Stable identifier (``durable-write``...); baseline entries and
        ``--select`` refer to it.
    code:
        Short alias (``R1``...``R11``) used by docs and ``--rule``.
    severity:
        Default severity of this rule's findings.
    doc:
        One-line description shown by ``repro-gis check --list-rules``.
    """

    id: str = ""
    code: str = ""
    severity: Severity = Severity.ERROR
    doc: str = ""

    def prepare(self, ctx: "AnalysisContext") -> None:
        """Initialise per-run state in ``ctx.state[self.id]``."""

    def check_module(
        self, module: "ModuleInfo", ctx: "AnalysisContext"
    ) -> Iterator[Finding]:
        """Findings for one parsed module (default: none)."""
        return iter(())

    def finish(self, ctx: "AnalysisContext") -> Iterator[Finding]:
        """Findings needing the whole project (default: none)."""
        return iter(())

    # -- helpers shared by concrete rules ----------------------------------

    def finding(
        self,
        module: "ModuleInfo",
        line: int,
        col: int,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Build a finding at ``line`` with the source snippet filled in."""
        snippet = ""
        if 1 <= line <= len(module.lines):
            snippet = module.lines[line - 1].strip()
        return Finding(
            rule=self.id,
            severity=severity if severity is not None else self.severity,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add the rule to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    if rule.code and rule.code.upper() in _BY_CODE:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    _REGISTRY[rule.id] = rule
    if rule.code:
        _BY_CODE[rule.code.upper()] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by numeric code then id."""

    def sort_key(rule: Rule) -> tuple:
        if rule.code.startswith("R") and rule.code[1:].isdigit():
            return (0, int(rule.code[1:]), rule.id)
        return (1, 0, rule.id)

    return sorted(_REGISTRY.values(), key=sort_key)


def get_rule(rule_id: str) -> Rule:
    """Look up a rule by long id or short code (``R7`` etc.)."""
    rule = _REGISTRY.get(rule_id)
    if rule is None:
        rule = _BY_CODE.get(rule_id.upper())
    if rule is None:
        known = ", ".join(
            f"{r.code}={r.id}" if r.code else r.id for r in all_rules()
        )
        raise KeyError(f"unknown rule {rule_id!r}; known: {known}")
    return rule


def select_rules(ids: Optional[Iterable[str]]) -> List[Rule]:
    """The rules for an optional ``--select``/``--rule`` list (None =
    all); duplicates collapse, registry order is preserved."""
    if ids is None:
        return all_rules()
    picked = {id(rule): rule for rule in (get_rule(i) for i in ids)}
    return [rule for rule in all_rules() if id(rule) in picked]
