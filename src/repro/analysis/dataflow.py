"""Generic acquire/release dataflow over a function CFG.

The question every resource protocol reduces to: *starting from a
successful acquire, can control reach a function exit without passing a
release?*  :func:`find_leaks` answers it on the
:class:`~repro.analysis.cfg.CFG` built for the enclosing function:

* the search starts at the acquire node's **normal** successors — if
  the acquire call itself raises, nothing was acquired and there is
  nothing to leak;
* release nodes are *barriers*: reachability never steps onto one, so
  whatever remains reachable got there release-free;
* reaching ``exit`` is a plain leak (an early ``return``/fall-through
  skipped the release); reaching ``raise_exit`` is the exception-escape
  window (some statement between acquire and release can raise, and no
  ``finally``/handler releases on that path).

Because the CFG routes ``return``/``break``/``continue`` through open
``finally`` blocks and gives every can-raise statement an exceptional
edge, the canonical safe shapes come out clean by construction:
``acquire()`` immediately followed by ``try: ... finally: release()``
(entering a ``try`` cannot raise), and ``with``-managed acquisition
(no explicit acquire statement at all).

The pass is deliberately generic — acquire and release are just node
sets — so R7 drives it once per ``(acquire, release)`` method pair and
once per tracked file handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence

from .cfg import CFG, Node

__all__ = ["Leak", "find_leaks"]


@dataclass
class Leak:
    """One acquire with at least one release-free path out.

    ``exceptional`` is True when the escaping path ends at
    ``raise_exit`` (an exception window) rather than a normal return;
    ``witness`` is a shortest such path, acquire-successor first, for
    the finding message.
    """

    acquire: Node
    exceptional: bool
    witness: List[Node]

    def escape_node(self) -> Optional[Node]:
        """The last real statement on the witness path (the point the
        resource escapes through), if the path has one."""
        for node in reversed(self.witness):
            if node.stmt is not None:
                return node
        return None


def find_leaks(
    cfg: CFG,
    acquires: Sequence[Node],
    releases: Sequence[Node],
) -> List[Leak]:
    """At most one :class:`Leak` per acquire node, exceptional escapes
    preferred as the witness (they are the subtler bug)."""
    barrier: FrozenSet[int] = frozenset(n.index for n in releases)
    leaks: List[Leak] = []
    for acquire in acquires:
        starts = [
            node
            for node, label in cfg.successors(acquire)
            if label != "exc" and node.index not in barrier
        ]
        reached = set()
        for start in starts:
            reached |= cfg.reach(start, avoid=barrier)
        hits_raise = cfg.raise_exit.index in reached
        hits_exit = cfg.exit.index in reached
        if not (hits_raise or hits_exit):
            continue
        target = cfg.raise_exit if hits_raise else cfg.exit
        witness: List[Node] = []
        for start in starts:
            path = cfg.find_path(start, [target], avoid=barrier)
            if path is not None and (not witness or len(path) < len(witness)):
                witness = path
        leaks.append(
            Leak(acquire=acquire, exceptional=hits_raise, witness=witness)
        )
    return leaks
