"""Text, JSON and SARIF reporters for a check run."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .findings import Finding, Report, Severity


def to_text(report: Report, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = []
    for finding in report.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.severity.value}[{finding.rule}] {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if verbose and report.suppressed:
        lines.append("")
        lines.append(f"baselined ({len(report.suppressed)}):")
        for finding in report.suppressed:
            lines.append(
                f"  {finding.path}:{finding.line}: [{finding.rule}] "
                f"{finding.message}"
            )
    for entry in report.unused_baseline:
        lines.append(
            f"note: stale baseline entry [{entry.rule}] {entry.path}: "
            f"{entry.snippet!r} no longer matches anything"
        )
    lines.append(
        f"repro-check: {report.files_scanned} files, "
        f"{report.errors} errors, {report.warnings} warnings, "
        f"{len(report.suppressed)} baselined"
    )
    return "\n".join(lines)


def to_json_dict(report: Report) -> Dict[str, Any]:
    return {
        "ok": report.ok,
        "files_scanned": report.files_scanned,
        "errors": report.errors,
        "warnings": report.warnings,
        "findings": [f.to_dict() for f in report.findings],
        "baselined": [f.to_dict() for f in report.suppressed],
        "unused_baseline": [e.to_dict() for e in report.unused_baseline],
    }


def to_json(report: Report, indent: int = 2) -> str:
    """Machine-readable report (the CI artifact format)."""
    return json.dumps(to_json_dict(report), indent=indent)


_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "note",
}


def _sarif_result(finding: Finding, suppressed: bool) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _SARIF_LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": max(1, finding.col + 1),
                    },
                }
            }
        ],
    }
    if finding.snippet:
        result["locations"][0]["physicalLocation"]["region"]["snippet"] = {
            "text": finding.snippet
        }
    if suppressed:
        # The committed-baseline channel: code-scanning UIs show these
        # as suppressed instead of open.
        result["suppressions"] = [{"kind": "external"}]
    return result


def to_sarif_dict(report: Report) -> Dict[str, Any]:
    """The report as a SARIF 2.1.0 log (one run, one driver).

    Baselined findings ride along with a ``suppressions`` entry rather
    than being dropped, so the code-scanning artifact shows the whole
    audited picture.
    """
    from .registry import all_rules

    rules: List[Dict[str, Any]] = [
        {
            "id": rule.id,
            "name": rule.code or rule.id,
            "shortDescription": {"text": rule.doc},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[rule.severity]
            },
        }
        for rule in all_rules()
    ]
    results = [_sarif_result(f, suppressed=False) for f in report.findings]
    results += [_sarif_result(f, suppressed=True) for f in report.suppressed]
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def to_sarif(report: Report, indent: int = 2) -> str:
    """SARIF 2.1.0 text (the CI code-scanning artifact format)."""
    return json.dumps(to_sarif_dict(report), indent=indent)
