"""Text and JSON reporters for a check run."""

from __future__ import annotations

import json
from typing import Any, Dict

from .findings import Report


def to_text(report: Report, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = []
    for finding in report.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.severity.value}[{finding.rule}] {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if verbose and report.suppressed:
        lines.append("")
        lines.append(f"baselined ({len(report.suppressed)}):")
        for finding in report.suppressed:
            lines.append(
                f"  {finding.path}:{finding.line}: [{finding.rule}] "
                f"{finding.message}"
            )
    for entry in report.unused_baseline:
        lines.append(
            f"note: stale baseline entry [{entry.rule}] {entry.path}: "
            f"{entry.snippet!r} no longer matches anything"
        )
    lines.append(
        f"repro-check: {report.files_scanned} files, "
        f"{report.errors} errors, {report.warnings} warnings, "
        f"{len(report.suppressed)} baselined"
    )
    return "\n".join(lines)


def to_json_dict(report: Report) -> Dict[str, Any]:
    return {
        "ok": report.ok,
        "files_scanned": report.files_scanned,
        "errors": report.errors,
        "warnings": report.warnings,
        "findings": [f.to_dict() for f in report.findings],
        "baselined": [f.to_dict() for f in report.suppressed],
        "unused_baseline": [e.to_dict() for e in report.unused_baseline],
    }


def to_json(report: Report, indent: int = 2) -> str:
    """Machine-readable report (the CI artifact format)."""
    return json.dumps(to_json_dict(report), indent=indent)
