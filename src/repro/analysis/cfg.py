"""Intraprocedural control-flow graphs for the flow-aware rules.

The statement-pattern rules (R1-R6) ask "does this line look wrong?";
the flow-aware rules (R7-R11) ask "is there a *path* on which this goes
wrong?" — a slot acquired here that some exceptional path never
releases, a scan loop a cancellation check never dominates.  Answering
that needs a control-flow graph, and this module builds one per
function with nothing but stdlib ``ast``:

* one :class:`Node` per simple statement, plus header nodes for the
  compound forms (``if``/``while``/``for`` tests, ``try`` dispatch,
  ``with`` enter/exit, ``finally`` entry) and three synthetic nodes —
  ``entry``, ``exit`` (normal return / fall-off) and ``raise_exit``
  (an exception escaping the function);
* **normal edges** for sequencing, branching and loop back-edges;
* **exceptional edges** from every statement that can raise to the
  innermost enclosing handler target (``except`` dispatch, ``finally``,
  ``with`` exit) or to ``raise_exit`` — this is what models "an
  exception escapes between acquire and release";
* ``break``/``continue``/``return`` route through every open
  ``finally``/``with`` frame between the jump and its target, exactly
  as the interpreter unwinds them.

The model errs conservative in two documented ways: a ``finally`` body
is built once with out-edges for *all* its continuations (normal fall
through, re-raise, routed jumps), and any statement containing a call,
attribute access, subscript or arithmetic is assumed able to raise.
Both over-approximate the real path set, which is the safe direction
for the leak and coverage rules built on top.

Path queries come in two shapes: :meth:`CFG.reach` (can node A reach an
exit while avoiding a node set — the detection primitive) and
:meth:`CFG.iter_exit_paths` (bounded enumeration of entry-to-exit
paths, each edge used at most once per path — golden tests and witness
messages).  Dead statements after a ``return``/``raise``/``break`` are
not given nodes at all, so every node in a built CFG is reachable from
``entry`` and can reach an exit.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["CFG", "Node", "build_cfg", "function_cfgs"]

#: Default ceiling on enumerated paths (and on DFS steps while finding
#: them): generous for real functions, a hard stop for adversarial ones.
PATH_BUDGET = 4096

#: Expression nodes whose presence makes a statement "can raise" in the
#: conservative model (calls, attribute/subscript access, arithmetic —
#: anything that can hit user code or throw on bad operands).
_RAISING_EXPR = (
    ast.Call,
    ast.Attribute,
    ast.Subscript,
    ast.BinOp,
    ast.Compare,
    ast.Await,
    ast.Yield,
    ast.YieldFrom,
)

#: Statements that can always raise regardless of their expressions.
_RAISING_STMT = (ast.Raise, ast.Assert, ast.Import, ast.ImportFrom, ast.Delete)


class Node:
    """One CFG vertex.

    ``kind`` is one of ``entry`` / ``exit`` / ``raise`` (the synthetic
    boundary nodes), ``stmt`` (a simple statement), ``test`` (an
    ``if``/``while`` condition or ``for`` iterator), ``dispatch`` (the
    except-clause chooser of a ``try``), ``handler`` (an ``except``
    clause), ``finally``, ``with-enter``/``with-exit`` or ``join``
    (the merge point after a loop or ``try``).
    """

    __slots__ = ("index", "kind", "stmt", "line", "label")

    def __init__(
        self,
        index: int,
        kind: str,
        stmt: Optional[ast.AST] = None,
        label: str = "",
    ) -> None:
        self.index = index
        self.kind = kind
        self.stmt = stmt
        self.line = getattr(stmt, "lineno", 0) if stmt is not None else 0
        self.label = label or kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.index} {self.label!r} line {self.line}>"


class CFG:
    """A built control-flow graph for one function."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: List[Node] = []
        self._succ: Dict[int, List[Tuple[int, str]]] = {}
        self._by_stmt: Dict[int, Node] = {}
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self.raise_exit = self._new("raise")

    # -- construction internals (used by _Builder) -------------------------

    def _new(
        self, kind: str, stmt: Optional[ast.AST] = None, label: str = ""
    ) -> Node:
        node = Node(len(self.nodes), kind, stmt, label)
        self.nodes.append(node)
        self._succ[node.index] = []
        if stmt is not None and id(stmt) not in self._by_stmt:
            self._by_stmt[id(stmt)] = node
        return node

    def _edge(self, src: Node, dst: Node, label: str = "next") -> None:
        pair = (dst.index, label)
        if pair not in self._succ[src.index]:
            self._succ[src.index].append(pair)

    def _prune_unreachable(self) -> None:
        """Drop nodes no path from entry reaches and reindex.

        The builder creates some structural nodes before it knows they
        will be live — e.g. the except-dispatch of a ``try`` whose body
        turns out to contain nothing that can raise, or that body's
        handlers.  Pruning afterwards keeps the invariant the rules and
        the property tests rely on: every node in ``nodes`` (bar the
        synthetic exits) is reachable from entry.
        """
        keep = self.reach(self.entry)
        keep.update((self.exit.index, self.raise_exit.index))
        if len(keep) == len(self.nodes):
            return
        remap: Dict[int, int] = {}
        kept: List[Node] = []
        for node in self.nodes:
            if node.index in keep:
                remap[node.index] = len(kept)
                kept.append(node)
        new_succ: Dict[int, List[Tuple[int, str]]] = {}
        for node in kept:
            new_succ[remap[node.index]] = [
                (remap[dst], label)
                for dst, label in self._succ[node.index]
                if dst in remap
            ]
        for node in kept:
            node.index = remap[node.index]
        self.nodes = kept
        self._succ = new_succ
        kept_ids = {id(node) for node in kept}
        self._by_stmt = {
            key: node
            for key, node in self._by_stmt.items()
            if id(node) in kept_ids
        }

    # -- queries -----------------------------------------------------------

    def successors(self, node: Node) -> List[Tuple[Node, str]]:
        return [(self.nodes[i], label) for i, label in self._succ[node.index]]

    def node_for(self, stmt: ast.AST) -> Optional[Node]:
        """The node a source statement maps to (header node for compound
        statements), or ``None`` for unreachable/unbuilt code."""
        return self._by_stmt.get(id(stmt))

    def exit_nodes(self) -> List[Node]:
        return [self.exit, self.raise_exit]

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {n.index: [] for n in self.nodes}
        for src, pairs in self._succ.items():
            for dst, _label in pairs:
                preds[dst].append(src)
        return preds

    def reach(
        self,
        start: Node,
        avoid: FrozenSet[int] = frozenset(),
    ) -> Set[int]:
        """Node indices reachable from ``start`` without stepping *onto*
        any node in ``avoid`` (``start`` itself is not avoided)."""
        seen: Set[int] = {start.index}
        stack = [start.index]
        while stack:
            current = stack.pop()
            for nxt, _label in self._succ[current]:
                if nxt in seen or nxt in avoid:
                    continue
                seen.add(nxt)
                stack.append(nxt)
        return seen

    def find_path(
        self,
        start: Node,
        targets: Sequence[Node],
        avoid: FrozenSet[int] = frozenset(),
    ) -> Optional[List[Node]]:
        """A shortest path from ``start`` to any target avoiding the
        ``avoid`` set, or ``None``.  BFS, so witnesses stay readable."""
        want = {t.index for t in targets}
        if start.index in want:
            return [start]
        parent: Dict[int, int] = {start.index: -1}
        queue = [start.index]
        while queue:
            nxt_queue: List[int] = []
            for current in queue:
                for nxt, _label in self._succ[current]:
                    if nxt in parent or nxt in avoid:
                        continue
                    parent[nxt] = current
                    if nxt in want:
                        path = [nxt]
                        while path[-1] != start.index:
                            path.append(parent[path[-1]])
                        return [self.nodes[i] for i in reversed(path)]
                    nxt_queue.append(nxt)
            queue = nxt_queue
        return None

    def iter_exit_paths(
        self, budget: int = PATH_BUDGET
    ) -> Iterator[List[Node]]:
        """Enumerate entry-to-exit paths, each edge taken at most once
        per path (so loops contribute one traversal), stopping after
        ``budget`` paths or DFS steps — whichever comes first."""
        exits = {self.exit.index, self.raise_exit.index}
        steps = 0
        yielded = 0
        # Each stack frame: (node index, iterator over successor pairs,
        # edge taken to get here).  Path = the frames' nodes.
        path: List[int] = [self.entry.index]
        used: Set[Tuple[int, int]] = set()
        iters = [iter(self._succ[self.entry.index])]
        while iters:
            if yielded >= budget or steps >= budget * 8:
                return
            steps += 1
            try:
                nxt, _label = next(iters[-1])
            except StopIteration:
                iters.pop()
                src = path.pop()
                if path:
                    used.discard((path[-1], src))
                continue
            edge = (path[-1], nxt)
            if edge in used:
                continue
            if nxt in exits:
                yield [self.nodes[i] for i in path + [nxt]]
                yielded += 1
                continue
            used.add(edge)
            path.append(nxt)
            iters.append(iter(self._succ[nxt]))

    def to_dot(self) -> str:  # pragma: no cover - debugging aid
        """Graphviz rendering, for eyeballing golden graphs."""
        lines = [f'digraph "{self.name}" {{']
        for node in self.nodes:
            lines.append(
                f'  n{node.index} [label="{node.index}: {node.label} '
                f'(line {node.line})"];'
            )
        for src, pairs in self._succ.items():
            for dst, label in pairs:
                lines.append(f'  n{src} -> n{dst} [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)


def stmt_can_raise(stmt: ast.stmt) -> bool:
    """Conservative: can executing this (simple) statement raise?"""
    if isinstance(stmt, _RAISING_STMT):
        return True
    for child in ast.walk(stmt):
        if isinstance(child, _RAISING_EXPR):
            return True
    return False


def _expr_can_raise(expr: Optional[ast.AST]) -> bool:
    if expr is None:
        return False
    for child in ast.walk(expr):
        if isinstance(child, _RAISING_EXPR):
            return True
    return False


class _FinallyFrame:
    """An open ``finally`` (or ``with`` exit) a jump must route through."""

    __slots__ = ("entry", "targets")

    def __init__(self, entry: Node) -> None:
        self.entry = entry
        self.targets: Set[int] = set()


class _LoopFrame:
    __slots__ = ("head", "after", "finally_depth")

    def __init__(self, head: Node, after: Node, finally_depth: int) -> None:
        self.head = head  # continue target
        self.after = after  # break target
        self.finally_depth = finally_depth


#: A dangling (node, edge-label) pair awaiting its successor.
_Pred = Tuple[Node, str]


class _Builder:
    """Single-use builder: one function body in, one :class:`CFG` out."""

    def __init__(self, name: str) -> None:
        self.cfg = CFG(name)
        self._exc: List[Node] = [self.cfg.raise_exit]
        self._finally: List[_FinallyFrame] = []
        self._loops: List[_LoopFrame] = []

    # -- plumbing ----------------------------------------------------------

    def _connect(self, preds: Sequence[_Pred], node: Node) -> None:
        for src, label in preds:
            self.cfg._edge(src, node, label)

    def _exc_edge(self, node: Node) -> None:
        self.cfg._edge(node, self._exc[-1], "exc")

    def _route(self, source: Node, frames: List[_FinallyFrame], target: Node, label: str) -> None:
        """Connect a jump, unwinding through the given open frames
        (outermost-first list, as sliced off the stack)."""
        if not frames:
            self.cfg._edge(source, target, label)
            return
        inner_first = list(reversed(frames))
        self.cfg._edge(source, inner_first[0].entry, label)
        for closer, outer in zip(inner_first, inner_first[1:]):
            closer.targets.add(outer.entry.index)
        inner_first[-1].targets.add(target.index)

    # -- statement dispatch ------------------------------------------------

    def build(self, body: Sequence[ast.stmt]) -> None:
        preds = self._body(body, [(self.cfg.entry, "next")])
        self._connect(preds, self.cfg.exit)
        self.cfg._prune_unreachable()

    def _body(
        self, stmts: Sequence[ast.stmt], preds: List[_Pred]
    ) -> List[_Pred]:
        for stmt in stmts:
            if not preds:
                return []  # dead code: no nodes, keeps the graph connected
            preds = self._stmt(stmt, preds)
        return preds

    def _stmt(self, stmt: ast.stmt, preds: List[_Pred]) -> List[_Pred]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, preds)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds)
        if isinstance(stmt, ast.Return):
            return self._return(stmt, preds)
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, preds)
        if isinstance(stmt, ast.Break):
            return self._break(stmt, preds)
        if isinstance(stmt, ast.Continue):
            return self._continue(stmt, preds)
        # Simple statement (nested function/class defs are opaque
        # single statements here; their bodies get their own CFGs).
        node = self.cfg._new("stmt", stmt, _label(stmt))
        self._connect(preds, node)
        if stmt_can_raise(stmt):
            self._exc_edge(node)
        return [(node, "next")]

    # -- compound forms ----------------------------------------------------

    def _if(self, stmt: ast.If, preds: List[_Pred]) -> List[_Pred]:
        test = self.cfg._new("test", stmt, f"if {_label(stmt.test)}")
        self._connect(preds, test)
        if _expr_can_raise(stmt.test):
            self._exc_edge(test)
        out = self._body(stmt.body, [(test, "true")])
        if stmt.orelse:
            out = out + self._body(stmt.orelse, [(test, "false")])
        else:
            out = out + [(test, "false")]
        return out

    def _while(self, stmt: ast.While, preds: List[_Pred]) -> List[_Pred]:
        head = self.cfg._new("test", stmt, f"while {_label(stmt.test)}")
        after = self.cfg._new("join", stmt, "after-while")
        self._connect(preds, head)
        if _expr_can_raise(stmt.test):
            self._exc_edge(head)
        self._loops.append(_LoopFrame(head, after, len(self._finally)))
        body_out = self._body(stmt.body, [(head, "true")])
        self._loops.pop()
        self._connect(body_out, head)  # back edge
        if stmt.orelse:
            else_out = self._body(stmt.orelse, [(head, "false")])
            self._connect(else_out, after)
        else:
            self.cfg._edge(head, after, "false")
        return [(after, "next")]

    def _for(self, stmt: ast.For | ast.AsyncFor, preds: List[_Pred]) -> List[_Pred]:
        head = self.cfg._new("test", stmt, f"for {_label(stmt.iter)}")
        after = self.cfg._new("join", stmt, "after-for")
        self._connect(preds, head)
        # Evaluating the iterable / advancing the iterator can raise.
        self._exc_edge(head)
        self._loops.append(_LoopFrame(head, after, len(self._finally)))
        body_out = self._body(stmt.body, [(head, "iter")])
        self._loops.pop()
        self._connect(body_out, head)
        if stmt.orelse:
            else_out = self._body(stmt.orelse, [(head, "exhausted")])
            self._connect(else_out, after)
        else:
            self.cfg._edge(head, after, "exhausted")
        return [(after, "next")]

    def _with(self, stmt: ast.With | ast.AsyncWith, preds: List[_Pred]) -> List[_Pred]:
        enter = self.cfg._new(
            "with-enter",
            stmt,
            "with " + ", ".join(_label(i.context_expr) for i in stmt.items),
        )
        self._connect(preds, enter)
        # __enter__ failing propagates without running __exit__.
        self._exc_edge(enter)
        leave = self.cfg._new("with-exit", stmt, "with-exit")
        # The body's exceptions run __exit__ (which re-raises unless it
        # suppresses); jumps out of the body unwind through it too.
        self._exc.append(leave)
        self._finally.append(_FinallyFrame(leave))
        body_out = self._body(stmt.body, [(enter, "next")])
        frame = self._finally.pop()
        self._exc.pop()
        self._connect(body_out, leave)
        self.cfg._edge(leave, self._exc[-1], "reraise")
        for target in sorted(frame.targets):
            self.cfg._edge(leave, self.cfg.nodes[target], "unwind")
        return [(leave, "next")]

    def _try(self, stmt: ast.Try, preds: List[_Pred]) -> List[_Pred]:
        after = self.cfg._new("join", stmt, "after-try")
        fin: Optional[Node] = None
        frame: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            fin = self.cfg._new("finally", stmt, "finally")
            frame = _FinallyFrame(fin)
            self._finally.append(frame)

        dispatch: Optional[Node] = None
        if stmt.handlers:
            dispatch = self.cfg._new("dispatch", stmt, "except-dispatch")

        # Body: exceptions go to the dispatcher, else straight to the
        # finally, else out.
        body_exc = dispatch if dispatch is not None else (fin or self._exc[-1])
        self._exc.append(body_exc)
        body_out = self._body(stmt.body, preds)
        if stmt.orelse:
            body_out = self._body(stmt.orelse, body_out)
        self._exc.pop()

        normal_out: List[_Pred] = list(body_out)

        if dispatch is not None:
            handler_exc = fin if fin is not None else self._exc[-1]
            catch_all = False
            for handler in stmt.handlers:
                if _handler_is_catch_all(handler):
                    catch_all = True
                h_node = self.cfg._new(
                    "handler", handler, f"except {_label(handler.type)}"
                )
                self.cfg._edge(dispatch, h_node, "except")
                self._exc.append(handler_exc)
                handler_out = self._body(handler.body, [(h_node, "next")])
                self._exc.pop()
                normal_out.extend(handler_out)
            if not catch_all:
                # Something no clause catches (BaseException subclasses
                # included) unwinds past the handlers.
                self.cfg._edge(dispatch, handler_exc, "uncaught")

        if fin is not None and frame is not None:
            self._finally.pop()
            self._connect(normal_out, fin)
            # The finally body itself runs outside the frame.
            fin_out = self._body(stmt.finalbody, [(fin, "next")])
            self._connect(fin_out, after)
            for src, _lab in fin_out:
                self.cfg._edge(src, self._exc[-1], "reraise")
                for target in sorted(frame.targets):
                    self.cfg._edge(src, self.cfg.nodes[target], "unwind")
            if not fin_out:
                # finally body ends in a jump/raise of its own: the
                # after-join is unreachable through it.
                pass
        else:
            self._connect(normal_out, after)

        preds_out = [(after, "next")] if self._has_preds(after) else []
        return preds_out

    def _has_preds(self, node: Node) -> bool:
        for pairs in self.cfg._succ.values():
            for dst, _label in pairs:
                if dst == node.index:
                    return True
        return False

    # -- jumps -------------------------------------------------------------

    def _return(self, stmt: ast.Return, preds: List[_Pred]) -> List[_Pred]:
        node = self.cfg._new("stmt", stmt, _label(stmt))
        self._connect(preds, node)
        if _expr_can_raise(stmt.value):
            self._exc_edge(node)
        self._route(node, list(self._finally), self.cfg.exit, "return")
        return []

    def _raise(self, stmt: ast.Raise, preds: List[_Pred]) -> List[_Pred]:
        node = self.cfg._new("stmt", stmt, _label(stmt))
        self._connect(preds, node)
        self._exc_edge(node)
        return []

    def _break(self, stmt: ast.Break, preds: List[_Pred]) -> List[_Pred]:
        node = self.cfg._new("stmt", stmt, "break")
        self._connect(preds, node)
        if self._loops:
            loop = self._loops[-1]
            self._route(
                node, list(self._finally[loop.finally_depth :]), loop.after, "break"
            )
        return []

    def _continue(self, stmt: ast.Continue, preds: List[_Pred]) -> List[_Pred]:
        node = self.cfg._new("stmt", stmt, "continue")
        self._connect(preds, node)
        if self._loops:
            loop = self._loops[-1]
            self._route(
                node, list(self._finally[loop.finally_depth :]), loop.head, "continue"
            )
        return []


def _handler_is_catch_all(handler: ast.ExceptHandler) -> bool:
    """Only a bare ``except:`` or ``except BaseException`` stops every
    unwind; ``except Exception`` lets BaseExceptions (InjectedCrash,
    KeyboardInterrupt) escape, which is exactly what the leak rule cares
    about."""
    if handler.type is None:
        return True
    names = (
        [e for e in handler.type.elts]
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for name in names:
        if isinstance(name, ast.Name) and name.id == "BaseException":
            return True
        if (
            isinstance(name, ast.Attribute)
            and name.attr == "BaseException"
        ):
            return True
    return False


def _label(node: Optional[ast.AST]) -> str:
    if node is None:
        return "<none>"
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure
        return type(node).__name__
    return text if len(text) <= 60 else text[:57] + "..."


def build_cfg(
    func: ast.FunctionDef | ast.AsyncFunctionDef, name: Optional[str] = None
) -> CFG:
    """Build the CFG of one function's body (nested defs are opaque)."""
    builder = _Builder(name or func.name)
    builder.build(func.body)
    return builder.cfg


def function_cfgs(tree: ast.AST) -> Dict[int, CFG]:
    """CFGs for every function/method in a module, keyed by ``id()`` of
    the function node (the :class:`~repro.analysis.engine.Project` CFG
    cache uses this to share graphs between rules)."""
    from .astutil import walk_functions

    out: Dict[int, CFG] = {}
    for class_name, func in walk_functions(tree):
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        qualname = (
            f"{class_name}.{func.name}" if class_name else func.name
        )
        out[id(func)] = build_cfg(func, qualname)
    return out
