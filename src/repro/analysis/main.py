"""Command-line driver shared by ``repro-gis check`` and
``python -m repro.analysis``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline
from .engine import default_baseline_path, default_root, run_check
from .registry import all_rules
from .report import to_json, to_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gis check",
        description=(
            "AST-based invariant linter: durable writes, crash "
            "transparency, lock discipline, struct formats, span "
            "discipline, metric-name registry"
        ),
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="source tree to scan (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (json is the CI artifact shape)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: repro-check.baseline.json at the "
        "repo root; missing file = empty baseline)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to cover every current finding "
        "(keeps justifications of surviving entries)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    parser.add_argument("--out", default=None, help="write the report here")
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also list baselined findings in text output",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:20s} [{rule.severity.value}] {rule.doc}")
        return 0

    root = Path(args.root) if args.root else default_root()
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path(root)
    )
    baseline = Baseline.load(baseline_path)
    report = run_check(
        root, baseline=baseline, rule_ids=args.select
    )

    if args.update_baseline:
        updated = Baseline.from_findings(
            report.findings + report.suppressed, previous=baseline
        )
        updated.save(baseline_path)
        print(
            f"baseline: {len(updated)} entries written to {baseline_path} "
            f"(fill in the justification fields)",
            file=sys.stderr,
        )
        return 0

    rendered = (
        to_json(report)
        if args.format == "json"
        else to_text(report, verbose=args.verbose)
    )
    if args.out:
        from ..engine.durable import atomic_write_text

        atomic_write_text(args.out, rendered + "\n", label="check-report")
        print(f"wrote report to {args.out}", file=sys.stderr)
    else:
        print(rendered)
    return 0 if report.ok else 1
