"""Command-line driver shared by ``repro-gis check`` and
``python -m repro.analysis``."""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline
from .engine import default_baseline_path, default_root, run_check
from .findings import Severity
from .registry import all_rules
from .report import to_json, to_sarif, to_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gis check",
        description=(
            "AST- and CFG-based invariant linter: durable writes, crash "
            "transparency, lock discipline, struct formats, span "
            "discipline, metric-name registry (R1-R6) plus the "
            "flow-aware rules — resource leaks, exception-status "
            "exhaustiveness, blocking-under-lock, thread boundaries, "
            "cancellation coverage (R7-R11)"
        ),
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="source tree to scan (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (json is the CI artifact shape; sarif is "
        "the code-scanning upload shape)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: repro-check.baseline.json at the "
        "repo root; missing file = empty baseline)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to cover every current finding "
        "(keeps justifications of surviving entries)",
    )
    parser.add_argument(
        "--select",
        "--rule",
        action="append",
        dest="select",
        metavar="RULE",
        help="run only these rules, by id or code: --rule R7 "
        "--rule lock-discipline (repeatable)",
    )
    parser.add_argument(
        "--path",
        action="append",
        metavar="PATH",
        help="restrict the scan to these files/directories under the "
        "root (repeatable): --path src/repro/serve",
    )
    parser.add_argument(
        "--informational",
        action="store_true",
        help="demote every finding to 'note' severity and exit 0 "
        "regardless (the CI tests/ sweep)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    parser.add_argument("--out", default=None, help="write the report here")
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also list baselined findings in text output",
    )
    return parser


def _resolve_paths(root: Path, raw: List[str]) -> List[Path]:
    """Expand ``--path`` operands (files or directories) to .py files."""
    files: List[Path] = []
    for text in raw:
        path = Path(text)
        candidates = [path, root / text] if not path.is_absolute() else [path]
        resolved = next((c for c in candidates if c.exists()), None)
        if resolved is None:
            raise FileNotFoundError(f"--path {text}: no such file or directory")
        if resolved.is_dir():
            files.extend(sorted(p for p in resolved.rglob("*.py") if p.is_file()))
        else:
            files.append(resolved)
    return files


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            code = f"{rule.code:4s}" if rule.code else "    "
            print(f"{code} {rule.id:24s} [{rule.severity.value}] {rule.doc}")
        return 0

    root = Path(args.root) if args.root else default_root()
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path(root)
    )
    baseline = Baseline.load(baseline_path)
    paths = None
    if args.path:
        try:
            paths = _resolve_paths(root, args.path)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    report = run_check(
        root, baseline=baseline, rule_ids=args.select, paths=paths
    )

    if args.informational:
        report.findings = [
            dataclasses.replace(f, severity=Severity.NOTE)
            for f in report.findings
        ]

    if args.update_baseline:
        updated = Baseline.from_findings(
            report.findings + report.suppressed, previous=baseline
        )
        updated.save(baseline_path)
        print(
            f"baseline: {len(updated)} entries written to {baseline_path} "
            f"(fill in the justification fields)",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        rendered = to_json(report)
    elif args.format == "sarif":
        rendered = to_sarif(report)
    else:
        rendered = to_text(report, verbose=args.verbose)
    if args.out:
        from ..engine.durable import atomic_write_text

        atomic_write_text(args.out, rendered + "\n", label="check-report")
        print(f"wrote report to {args.out}", file=sys.stderr)
    else:
        print(rendered)
    if args.informational:
        return 0
    return 0 if report.ok else 1
