"""Crash-safe write primitives shared by every persistence path.

The paper's operational headline — bulk-loading AHN2's 640 Gpoints in
under a day (Section 3.2) — is a multi-hour ingest.  A store that can be
torn apart by a crash in hour five is not reproducing that claim, so
every artifact the engine persists (``.col`` columns, ``.imprint``
indexes, ``schema.json``, the catalog, load manifests) goes through the
same protocol:

1. write the full payload to a sibling temp file,
2. flush + ``fsync`` it,
3. ``os.replace`` it over the destination (atomic on POSIX and NTFS),
4. best-effort ``fsync`` the directory so the rename itself is durable.

A reader therefore sees either the complete old file or the complete new
file, never a torn hybrid; payload CRC32 checksums (embedded in the
``.col`` v2 and ``.imprint`` v3 headers) catch the remaining failure
modes — media corruption and torn writes on filesystems without atomic
rename.

Fault injection
---------------

The write path is instrumented with **crash points**: named no-op hooks
(:func:`crash_point`) at every state transition that matters for
recovery.  ``tests/faults.py`` installs a hook that raises
:class:`InjectedCrash` — a ``BaseException``, so no recovery code can
accidentally swallow it — to simulate the process dying at exactly that
instant, and patches :data:`_open` / :data:`_replace` to kill a write
after N bytes.  The durability suite drives every registered crash point
and requires that ``Database.verify()`` passes after recovery.

Transient-error policy
----------------------

:func:`with_retries` retries ``OSError`` with bounded exponential
backoff (NFS hiccups, ``EINTR``, overloaded disks) but never retries
typed corruption errors (``StorageError`` and friends subclass
``IOError`` — corrupt bytes do not heal on retry) and never touches
:class:`InjectedCrash`.  Retries increment the ``durability.retries``
counter; checksum failures and quarantines have counters of their own
(see ``docs/durability.md``).
"""

from __future__ import annotations

import os
import time
import zlib
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Optional, Tuple, Type, TypeVar, Union

PathLike = Union[str, Path]

# Patch points for the fault-injection harness: tests replace these to
# tear writes at byte N or fail the rename.  Production code must open
# temp files and rename through them, never through the builtins.
_open = open
_replace = os.replace


class InjectedCrash(BaseException):
    """A simulated process kill, raised by fault-injection hooks.

    Derives from ``BaseException`` so that no ``except Exception`` in a
    write or recovery path can swallow it — a real ``kill -9`` cannot be
    caught either.
    """


# -- crash points -----------------------------------------------------------

#: Every crash-point name that has ever fired (or been declared) in this
#: process.  The fault harness enumerates this to prove coverage.
KNOWN_CRASH_POINTS: set[str] = set()

_crash_hook: Optional[Callable[[str, Dict[str, object]], None]] = None


def set_crash_hook(hook: Optional[Callable[[str, Dict[str, object]], None]]) -> None:
    """Install (or clear, with ``None``) the process-wide crash hook.

    The hook receives ``(name, context)`` at every crash point; raising
    :class:`InjectedCrash` from it simulates dying right there.
    """
    global _crash_hook
    _crash_hook = hook


def crash_point(name: str, **context: object) -> None:
    """A named no-op the fault harness can turn into a simulated crash."""
    KNOWN_CRASH_POINTS.add(name)
    if _crash_hook is not None:
        _crash_hook(name, context)


def declare_crash_points(names: Iterable[str]) -> None:
    """Pre-register crash-point names so coverage tools see them before
    the code path first runs."""
    KNOWN_CRASH_POINTS.update(names)


# -- atomic writes ----------------------------------------------------------


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory (makes the rename durable)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform/filesystem without directory handles
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes, label: str = "file") -> int:
    """Atomically replace ``path`` with ``data``; returns bytes written.

    ``label`` names the artifact class in crash points
    (``durable.<label>.written`` / ``.replaced``) and keeps different
    write sites distinguishable to the fault harness.
    """
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    crash_point(f"durable.{label}.begin", path=str(path))
    try:
        with _open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        crash_point(f"durable.{label}.written", path=str(path))
        _replace(tmp, path)
    except Exception:
        # Real failures clean up their temp file; InjectedCrash is a
        # BaseException and deliberately leaves the wreckage behind.
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    crash_point(f"durable.{label}.replaced", path=str(path))
    _fsync_directory(path.parent)
    return len(data)


def atomic_write_text(path: PathLike, text: str, label: str = "file") -> int:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    return atomic_write_bytes(path, text.encode("utf-8"), label=label)


def atomic_append_text(path: PathLike, text: str, label: str = "log") -> int:
    """Durably append UTF-8 ``text`` to a log file; returns bytes written.

    Append is the one write shape rename-based atomicity cannot give
    (replacing the whole log per record would be O(n²) in log size), so
    the contract here is weaker and explicitly line-oriented: the bytes
    are flushed and fsynced before returning, and a crash mid-append
    tears at most the *final line* — which is why the slow-query log is
    JSONL and its readers skip unparseable trailing lines.  Goes through
    the :data:`_open` patch point so the fault harness can tear appends
    at byte N like any other write.
    """
    path = Path(path)
    data = text.encode("utf-8")
    crash_point(f"durable.{label}.append_begin", path=str(path))
    with _open(path, "ab") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    crash_point(f"durable.{label}.appended", path=str(path))
    return len(data)


# -- checksums --------------------------------------------------------------


def checksum(data: bytes) -> int:
    """The CRC32 embedded in the v2 column / v3 imprint headers."""
    return zlib.crc32(data) & 0xFFFFFFFF


def record_checksum_failure(path: PathLike) -> None:
    """Count a checksum mismatch in the metrics registry."""
    from ..obs.metrics import get_registry

    get_registry().counter("durability.checksum_failures").inc()


def record_quarantine(path: PathLike) -> None:
    """Count a quarantined artifact in the metrics registry."""
    from ..obs.metrics import get_registry

    get_registry().counter("durability.quarantines").inc()


# -- bounded retries --------------------------------------------------------


_R = TypeVar("_R")


def with_retries(
    fn: Callable[[], _R],
    *,
    retries: int = 3,
    backoff: float = 0.01,
    max_backoff: float = 1.0,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    no_retry: Tuple[Type[BaseException], ...] = (),
    label: str = "",
) -> _R:
    """Call ``fn`` retrying transient errors with bounded backoff.

    ``retry_on`` exceptions are retried up to ``retries`` times with
    exponential backoff capped at ``max_backoff`` seconds.  ``no_retry``
    carves typed corruption errors (``StorageError`` subclasses
    ``IOError``) out of the retry set — corrupt bytes do not heal.
    :class:`InjectedCrash` always propagates.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except InjectedCrash:
            raise
        except retry_on as exc:
            if isinstance(exc, no_retry) or attempt >= retries:
                raise
            from ..obs.metrics import get_registry

            get_registry().counter("durability.retries").inc()
            delay = min(backoff * (2 ** attempt), max_backoff)
            attempt += 1
            crash_point("durable.retry", label=label, attempt=attempt)
            if delay > 0:
                time.sleep(delay)


def quarantine_file(path: PathLike, reason: str = "") -> Optional[Path]:
    """Move a corrupt artifact aside as ``<name>.quarantined``.

    Returns the quarantine path, or ``None`` when the rename itself
    failed (the caller then leaves the file in place — degradation must
    never raise).  Counts ``durability.quarantines``.
    """
    path = Path(path)
    target = path.with_name(path.name + ".quarantined")
    try:
        _replace(path, target)
    except OSError:
        return None
    record_quarantine(path)
    return target
