"""Late-materialisation projection helpers.

In a column store, selects produce row ids and values are only fetched
("materialised") for the columns a query actually touches, as late as
possible.  These helpers implement that fetch-join step.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from numpy.typing import NDArray

from .table import Table


def project(
    table: Table, oids: NDArray[Any], columns: Optional[Sequence[str]] = None
) -> Dict[str, NDArray[Any]]:
    """Materialise ``columns`` of ``table`` at the given row ids."""
    return table.fetch(oids, columns)


def project_rows(
    table: Table, oids: NDArray[Any], columns: Optional[Sequence[str]] = None
) -> List[Tuple[Any, ...]]:
    """Materialise as a list of row tuples (for small result sets / display)."""
    cols = project(table, oids, columns)
    names = list(cols.keys())
    return [tuple(cols[n][i] for n in names) for i in range(len(oids))]
