"""The database catalog: named tables plus optional on-disk persistence.

A :class:`Database` is the session object of the engine — the analogue of a
MonetDB database farm.  Tables live in memory; :meth:`Database.save` /
:meth:`Database.load` persist them as per-column binary files under a
directory (one subdirectory per table).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from . import storage
from .table import Schema, Table

PathLike = Union[str, Path]


class CatalogError(KeyError):
    """Raised on unknown or duplicate table names."""


class Database:
    """A collection of named flat tables.

    Parameters
    ----------
    directory:
        Optional persistence root.  When given, :meth:`save` writes every
        table beneath it and ``Database.load(directory)`` restores the lot.
    """

    def __init__(self, directory: Optional[PathLike] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._tables: Dict[str, Table] = {}

    # -- table lifecycle ----------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create an empty table; fails on duplicate names."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def register(self, table: Table) -> Table:
        """Adopt an existing table object under its own name."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog (in-memory only)."""
        if name not in self._tables:
            raise CatalogError(f"no table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables.keys())

    @property
    def nbytes(self) -> int:
        """Total live bytes across all tables."""
        return sum(t.nbytes for t in self._tables.values())

    # -- persistence ----------------------------------------------------------

    def save(self, directory: Optional[PathLike] = None) -> int:
        """Persist all tables; returns total bytes written."""
        root = Path(directory) if directory is not None else self.directory
        if root is None:
            raise ValueError("no persistence directory configured")
        root.mkdir(parents=True, exist_ok=True)
        total = 0
        for name, table in self._tables.items():
            total += storage.save_table(table, root / name)
        return total

    @classmethod
    def load(cls, directory: PathLike) -> "Database":
        """Restore a database persisted with :meth:`save`."""
        root = Path(directory)
        if not root.is_dir():
            raise storage.StorageError(f"no database directory at {root}")
        db = cls(directory=root)
        for entry in sorted(root.iterdir()):
            if entry.is_dir() and (entry / "schema.json").exists():
                db.register(storage.load_table(entry))
        return db
