"""The database catalog: named tables plus optional on-disk persistence.

A :class:`Database` is the session object of the engine — the analogue of a
MonetDB database farm.  Tables live in memory; :meth:`Database.save` /
:meth:`Database.load` persist them as per-column binary files under a
directory (one subdirectory per table).

Durability contract (see ``docs/durability.md``):

* :meth:`Database.save` writes every table's column files first, then the
  per-table ``schema.json``, then — last of all, atomically — the root
  ``_catalog.json`` naming the live tables.  A crash at any instant
  leaves the previous catalog intact, and a table dropped in memory can
  no longer resurrect from a stale directory: load trusts the catalog.
* :meth:`Database.load` degrades gracefully: a table with a torn tail is
  rolled back to its last committed rows, an unreadable table is skipped,
  and either way per-table health lands in :attr:`Database.health`
  instead of the whole load dying on the first bad column.
* :meth:`Database.verify` re-checks every on-disk artifact (metadata,
  checksums, row counts) and :meth:`Database.recover` rewrites whatever a
  tolerant load had to repair, so ``verify`` passes again after a crash.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from . import durable, storage
from .table import Schema, Table

PathLike = Union[str, Path]

#: Root-level catalog metadata file, written last on every save.
CATALOG_FILE = "_catalog.json"


class CatalogError(KeyError):
    """Raised on unknown or duplicate table names."""


class Database:
    """A collection of named flat tables.

    Parameters
    ----------
    directory:
        Optional persistence root.  When given, :meth:`save` writes every
        table beneath it and ``Database.load(directory)`` restores the lot.
    """

    def __init__(self, directory: Optional[PathLike] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._tables: Dict[str, Table] = {}
        #: Per-table load/recovery health, populated by :meth:`load`:
        #: ``{name: {"ok": bool, "issues": [str, ...]}}``.
        self.health: Dict[str, Dict[str, Any]] = {}
        #: Catalog generation: bumped on every :meth:`save` and recorded
        #: in ``_catalog.json``.  Concurrent readers pin the generation
        #: they loaded; a writer publishing generation N+1 via the
        #: atomic catalog replace never perturbs a reader still scanning
        #: generation N (see ``repro.serve.snapshot``).
        self.generation: int = 0

    # -- table lifecycle ----------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create an empty table; fails on duplicate names."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def register(self, table: Table) -> Table:
        """Adopt an existing table object under its own name."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog (in-memory only)."""
        if name not in self._tables:
            raise CatalogError(f"no table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables.keys())

    @property
    def nbytes(self) -> int:
        """Total live bytes across all tables."""
        return sum(t.nbytes for t in self._tables.values())

    # -- persistence ----------------------------------------------------------

    def save(self, directory: Optional[PathLike] = None) -> int:
        """Persist all tables; returns total bytes written.

        Tables are written first (columns, then their ``schema.json``);
        the root ``_catalog.json`` listing the live tables goes last,
        atomically.  Dropped tables therefore disappear from the catalog
        on the next save even though their directories linger on disk —
        :meth:`load` trusts the catalog, not the directory scan.
        """
        root = Path(directory) if directory is not None else self.directory
        if root is None:
            raise ValueError("no persistence directory configured")
        root.mkdir(parents=True, exist_ok=True)
        generation = self.generation + 1
        total = 0
        for name in sorted(self._tables):
            total += storage.save_table(
                self._tables[name], root / name, generation=generation
            )
            durable.crash_point("catalog.table_saved", table=name)
        meta = {
            "version": 1,
            "tables": sorted(self._tables),
            "generation": generation,
        }
        durable.atomic_write_text(
            root / CATALOG_FILE, json.dumps(meta, indent=2), label="catalog"
        )
        # The generation becomes current only once the catalog naming it
        # is durable — a crash before the replace leaves both the on-disk
        # store and this object at the previous generation.
        self.generation = generation
        return total

    @staticmethod
    def _catalog_meta(root: Path) -> Optional[Dict[str, Any]]:
        """Parsed ``_catalog.json``, or ``None`` for legacy farms."""
        path = root / CATALOG_FILE
        try:
            meta = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise storage.StorageError(
                f"{path}: corrupt catalog metadata ({exc})"
            ) from None
        if not isinstance(meta, dict):
            raise storage.StorageError(f"{path}: corrupt catalog metadata")
        return meta

    @classmethod
    def _catalog_table_names(cls, root: Path) -> Optional[List[str]]:
        """Table names from ``_catalog.json``, or None for legacy farms."""
        meta = cls._catalog_meta(root)
        if meta is None:
            return None
        return list(meta.get("tables", []))

    @classmethod
    def read_generation(cls, directory: PathLike) -> int:
        """The published catalog generation of an on-disk store.

        Reads only ``_catalog.json`` — cheap enough to poll from a
        serving process deciding whether a writer has published a newer
        snapshot.  Legacy farms without a catalog (or catalogs written
        before generations existed) report generation 0.
        """
        meta = cls._catalog_meta(Path(directory))
        if meta is None:
            return 0
        return int(meta.get("generation", 0))

    @classmethod
    def load(cls, directory: PathLike) -> "Database":
        """Restore a database persisted with :meth:`save`.

        Never dies on the first bad table: a torn tail append is rolled
        back to the last committed rows, an unreadable table is skipped,
        and every table's outcome is recorded in :attr:`health`.  Raises
        only when the directory itself (or its catalog file) is unusable.
        """
        root = Path(directory)
        if not root.is_dir():
            raise storage.StorageError(f"no database directory at {root}")
        db = cls(directory=root)
        db.generation = cls.read_generation(root)
        names = cls._catalog_table_names(root)
        if names is None:
            # Legacy farm without a catalog file: directory scan.
            names = sorted(
                entry.name
                for entry in root.iterdir()
                if entry.is_dir() and (entry / "schema.json").exists()
            )
        for name in sorted(names):
            entry = root / name
            sidecar_issues: List[str] = []
            try:
                db.register(
                    storage.load_table(entry, sidecar_issues=sidecar_issues)
                )
                # Quarantined sidecars are repaired in memory (re-encoded
                # from the plain column), so they are notes, not failures.
                db.health[name] = {"ok": True, "issues": sidecar_issues}
                continue
            except storage.StorageError as exc:
                first_error = str(exc)
            try:
                table, issues = storage.recover_table(entry)
            except storage.StorageError:
                db.health[name] = {"ok": False, "issues": [first_error]}
                continue
            db.register(table)
            db.health[name] = {"ok": True, "issues": issues or [first_error]}
        return db

    def verify(self, directory: Optional[PathLike] = None) -> Dict[str, Any]:
        """Check every on-disk artifact; returns a health report.

        ``{"ok": bool, "tables": {name: {"ok": bool, "issues": [...]}}}``
        — metadata must parse, every column file must load with a valid
        checksum, and all row counts must agree.  Read-only: nothing is
        repaired (that is :meth:`recover`'s job).
        """
        root = Path(directory) if directory is not None else self.directory
        if root is None:
            raise ValueError("no persistence directory configured")
        report: Dict[str, Any] = {"ok": True, "tables": {}}
        if not root.is_dir():
            return {"ok": False, "tables": {}, "error": f"no database at {root}"}
        try:
            names = self._catalog_table_names(root)
        except storage.StorageError as exc:
            return {"ok": False, "tables": {}, "error": str(exc)}
        if names is None:
            names = sorted(
                entry.name
                for entry in root.iterdir()
                if entry.is_dir() and (entry / "schema.json").exists()
            )
        for name in sorted(names):
            issues = storage.verify_table(root / name)
            report["tables"][name] = {"ok": not issues, "issues": issues}
            if issues:
                report["ok"] = False
        return report

    @classmethod
    def recover(cls, directory: PathLike) -> "Database":
        """Tolerant load + rewrite of everything the load had to repair.

        After a crash anywhere in the save path, ``recover`` rolls torn
        tails back, re-saves the repaired tables, and rewrites the
        catalog so a subsequent :meth:`verify` passes.  Tables that are
        genuinely unreadable (e.g. checksum corruption) stay on disk,
        flagged in :attr:`health` — recovery never destroys data.
        """
        db = cls.load(directory)
        root = db.directory
        assert root is not None  # load() always sets it
        generation = db.generation + 1
        for name in db.table_names:
            storage.save_table(db.table(name), root / name, generation=generation)
        # Unreadable tables stay listed so they keep surfacing in health
        # reports instead of being silently forgotten.
        keep = sorted(
            set(db.table_names)
            | {n for n, h in db.health.items() if not h["ok"]}
        )
        meta = {"version": 1, "tables": keep, "generation": generation}
        durable.atomic_write_text(
            root / CATALOG_FILE, json.dumps(meta, indent=2), label="catalog"
        )
        db.generation = generation
        return db
