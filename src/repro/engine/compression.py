"""Lightweight columnar compression schemes.

Section 3.1 argues that flat-table storage "is more flexible to exploit
compression techniques which are more advantageous for column-stores such
as run length encoding".  This module implements the classic columnar
schemes — RLE, dictionary, frame-of-reference, and delta(+zlib) — each as an
encode/decode pair returning a :class:`CompressedBlock`.  The blockstore
baseline reuses ``delta_zlib`` for its per-dimension patch compression
(mirroring PostgreSQL pointcloud's dimensional compression), and the storage
benchmark (E2) reports the footprint of each scheme on LIDAR columns.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np
from numpy.typing import NDArray


class CompressionError(ValueError):
    """Raised on undecodable payloads or unsupported inputs."""


@dataclass(frozen=True)
class CompressedBlock:
    """An encoded column chunk.

    Attributes
    ----------
    scheme:
        Encoding name (``rle``, ``dict``, ``for``, ``delta_zlib``).
    dtype:
        Original dtype string, for exact round-tripping.
    count:
        Number of values encoded.
    payload:
        Scheme-specific bytes.
    """

    scheme: str
    dtype: str
    count: int
    payload: bytes

    @property
    def nbytes(self) -> int:
        """Compressed size in bytes (payload only)."""
        return len(self.payload)


def _pack_arrays(*arrays: NDArray[Any]) -> bytes:
    """Concatenate arrays into a payload with a tiny length-prefixed framing."""
    parts: List[bytes] = []
    for arr in arrays:
        raw = np.ascontiguousarray(arr).tobytes()
        dtype_tag = arr.dtype.str.encode()
        parts.append(len(dtype_tag).to_bytes(2, "little"))
        parts.append(dtype_tag)
        parts.append(len(raw).to_bytes(8, "little"))
        parts.append(raw)
    return b"".join(parts)


def _unpack_arrays(payload: bytes, n: int) -> Tuple[NDArray[Any], ...]:
    arrays: List[NDArray[Any]] = []
    pos = 0
    for _ in range(n):
        if pos + 2 > len(payload):
            raise CompressionError("truncated payload framing")
        tag_len = int.from_bytes(payload[pos : pos + 2], "little")
        pos += 2
        dtype = np.dtype(payload[pos : pos + tag_len].decode())
        pos += tag_len
        raw_len = int.from_bytes(payload[pos : pos + 8], "little")
        pos += 8
        raw = payload[pos : pos + raw_len]
        if len(raw) != raw_len:
            raise CompressionError("truncated payload data")
        pos += raw_len
        arrays.append(np.frombuffer(raw, dtype=dtype))
    return tuple(arrays)


# -- run-length encoding ------------------------------------------------------


def rle_encode(values: NDArray[Any]) -> CompressedBlock:
    """Run-length encode; ideal for sorted/low-cardinality columns
    (classification codes, flags) as the paper notes for flat tables."""
    values = np.asarray(values)
    if values.shape[0] == 0:
        return CompressedBlock("rle", values.dtype.str, 0, b"")
    change = np.empty(values.shape[0], dtype=bool)
    change[0] = True
    change[1:] = values[1:] != values[:-1]
    starts = np.flatnonzero(change)
    run_values = values[starts]
    run_lengths = np.diff(np.append(starts, values.shape[0])).astype(np.int64)
    payload = _pack_arrays(run_values, run_lengths)
    return CompressedBlock("rle", values.dtype.str, values.shape[0], payload)


def rle_decode(block: CompressedBlock) -> NDArray[Any]:
    if block.scheme != "rle":
        raise CompressionError(f"not an rle block: {block.scheme}")
    if block.count == 0:
        return np.empty(0, dtype=np.dtype(block.dtype))
    run_values, run_lengths = _unpack_arrays(block.payload, 2)
    out = np.repeat(run_values, run_lengths)
    if out.shape[0] != block.count:
        raise CompressionError("rle length mismatch")
    return out.astype(np.dtype(block.dtype))


# -- dictionary encoding -------------------------------------------------------


def dict_encode(values: NDArray[Any]) -> CompressedBlock:
    """Dictionary encode: distinct values + per-row code of minimal width."""
    values = np.asarray(values)
    uniques, codes = np.unique(values, return_inverse=True)
    if uniques.shape[0] <= 1 << 8:
        code_dtype: Any = np.uint8
    elif uniques.shape[0] <= 1 << 16:
        code_dtype = np.uint16
    else:
        code_dtype = np.uint32
    payload = _pack_arrays(uniques, codes.astype(code_dtype))
    return CompressedBlock("dict", values.dtype.str, values.shape[0], payload)


def dict_decode(block: CompressedBlock) -> NDArray[Any]:
    if block.scheme != "dict":
        raise CompressionError(f"not a dict block: {block.scheme}")
    if block.count == 0:
        return np.empty(0, dtype=np.dtype(block.dtype))
    uniques, codes = _unpack_arrays(block.payload, 2)
    return uniques[codes].astype(np.dtype(block.dtype))


# -- frame of reference --------------------------------------------------------


def for_encode(values: NDArray[Any]) -> CompressedBlock:
    """Frame-of-reference for integer columns: offsets from the minimum,
    stored at minimal width.  Great for LAS scaled-int coordinates."""
    values = np.asarray(values)
    if values.dtype.kind not in "iu":
        raise CompressionError("frame-of-reference needs integer input")
    if values.shape[0] == 0:
        return CompressedBlock("for", values.dtype.str, 0, b"")
    reference = int(values.min())
    offsets = values.astype(np.int64) - reference
    span = int(offsets.max())
    if span <= 0xFF:
        off_dtype: Any = np.uint8
    elif span <= 0xFFFF:
        off_dtype = np.uint16
    elif span <= 0xFFFFFFFF:
        off_dtype = np.uint32
    else:
        off_dtype = np.uint64
    payload = _pack_arrays(
        np.asarray([reference], dtype=np.int64), offsets.astype(off_dtype)
    )
    return CompressedBlock("for", values.dtype.str, values.shape[0], payload)


def for_decode(block: CompressedBlock) -> NDArray[Any]:
    if block.scheme != "for":
        raise CompressionError(f"not a for block: {block.scheme}")
    dtype = np.dtype(block.dtype)
    if block.count == 0:
        return np.empty(0, dtype=dtype)
    reference, offsets = _unpack_arrays(block.payload, 2)
    return (offsets.astype(np.int64) + int(reference[0])).astype(dtype)


# -- delta + zlib --------------------------------------------------------------


def delta_zlib_encode(values: NDArray[Any], level: int = 6) -> CompressedBlock:
    """Delta-encode then deflate.

    This is the repo's stand-in for pointcloud/LAZ-style dimensional
    compression: spatially sorted coordinates have tiny deltas that deflate
    extremely well, which is why sorted blocks compress better (Section 2.3).
    Works for integers (exact deltas) and floats (bit-pattern deltas via
    int64 views, still lossless).
    """
    values = np.asarray(values)
    if values.shape[0] == 0:
        return CompressedBlock("delta_zlib", values.dtype.str, 0, b"")
    if values.dtype.kind == "f":
        # Delta the raw bit patterns: lossless and still exposes locality.
        as_int = values.view(np.int64 if values.dtype.itemsize == 8 else np.int32)
    elif values.dtype.kind in "iu":
        as_int = values.astype(np.int64)
    else:
        raise CompressionError(f"cannot delta-encode dtype {values.dtype}")
    deltas = np.empty(as_int.shape[0], dtype=np.int64)
    deltas[0] = as_int[0]
    deltas[1:] = np.asarray(as_int[1:], dtype=np.int64) - np.asarray(
        as_int[:-1], dtype=np.int64
    )
    payload = zlib.compress(deltas.tobytes(), level)
    return CompressedBlock("delta_zlib", values.dtype.str, values.shape[0], payload)


def delta_zlib_decode(block: CompressedBlock) -> NDArray[Any]:
    if block.scheme != "delta_zlib":
        raise CompressionError(f"not a delta_zlib block: {block.scheme}")
    dtype = np.dtype(block.dtype)
    if block.count == 0:
        return np.empty(0, dtype=dtype)
    try:
        raw = zlib.decompress(block.payload)
    except zlib.error as exc:
        raise CompressionError(f"corrupt deflate payload: {exc}") from None
    deltas = np.frombuffer(raw, dtype=np.int64)
    if deltas.shape[0] != block.count:
        raise CompressionError("delta payload length mismatch")
    as_int = np.cumsum(deltas, dtype=np.int64)
    if dtype.kind == "f":
        width = np.int64 if dtype.itemsize == 8 else np.int32
        return as_int.astype(width).view(dtype).copy()
    return as_int.astype(dtype)


#: scheme name -> (encode, decode)
SCHEMES: Dict[
    str, Tuple[Callable[..., CompressedBlock], Callable[[CompressedBlock], NDArray[Any]]]
] = {
    "rle": (rle_encode, rle_decode),
    "dict": (dict_encode, dict_decode),
    "for": (for_encode, for_decode),
    "delta_zlib": (delta_zlib_encode, delta_zlib_decode),
}


def encode(scheme: str, values: NDArray[Any]) -> CompressedBlock:
    """Encode with a named scheme."""
    try:
        enc, _dec = SCHEMES[scheme]
    except KeyError:
        raise CompressionError(f"unknown scheme {scheme!r}") from None
    return enc(values)


def decode(block: CompressedBlock) -> NDArray[Any]:
    """Decode any :class:`CompressedBlock`."""
    try:
        _enc, dec = SCHEMES[block.scheme]
    except KeyError:
        raise CompressionError(f"unknown scheme {block.scheme!r}") from None
    return dec(block)


def best_scheme(values: NDArray[Any]) -> CompressedBlock:
    """Try all applicable schemes and return the smallest encoding."""
    best: Optional[CompressedBlock] = None
    for name, (enc, _dec) in SCHEMES.items():
        try:
            block = enc(values)
        except CompressionError:
            continue
        if best is None or block.nbytes < best.nbytes:
            best = block
    if best is None:
        raise CompressionError(f"no scheme applicable to dtype {values.dtype}")
    return best
