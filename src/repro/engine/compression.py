"""Lightweight columnar compression schemes — the engine's *execution* format.

Section 3.1 argues that flat-table storage "is more flexible to exploit
compression techniques which are more advantageous for column-stores such
as run length encoding".  This module implements the classic columnar
schemes — RLE, dictionary, frame-of-reference, delta(+zlib), and a plain
fallback — each as an encode/decode pair returning a
:class:`CompressedBlock`.

Since the compressed-execution rework the blocks are not just a
persistence detail: every block records its value range (``zmin`` /
``zmax``) at encode time — for frame-of-reference that zone map is *free*
(it is the FOR header: reference and reference + span) — and exposes its
packed internals (:func:`for_parts`, :func:`dict_parts`,
:func:`rle_parts`) so :mod:`repro.engine.kernels` can evaluate range and
equality predicates directly on the packed words without decompressing
non-surviving rows.  :func:`choose_scheme` picks the encoding adaptively
at write time (runs → RLE, low cardinality → dictionary, integers → FOR,
floats → delta+zlib), which is how the per-segment
:class:`~repro.engine.compressed.CompressedColumn` encodes.

The blockstore baseline reuses ``delta_zlib`` for its per-dimension patch
compression (mirroring PostgreSQL pointcloud's dimensional compression),
and the storage benchmark (E2) reports the footprint of each scheme on
LIDAR columns.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

from ..obs.metrics import get_registry
from ..obs.timing import Stopwatch
from ..obs.trace import maybe_span

#: 2^64 - 1: the modulus mask for two's-complement FOR arithmetic.
_U64_MASK = 0xFFFFFFFFFFFFFFFF


class CompressionError(ValueError):
    """Raised on undecodable payloads or unsupported inputs."""


@dataclass(frozen=True)
class CompressedBlock:
    """An encoded column chunk.

    Attributes
    ----------
    scheme:
        Encoding name (``rle``, ``dict``, ``for``, ``delta_zlib``,
        ``plain``).
    dtype:
        Original dtype string, for exact round-tripping.
    count:
        Number of values encoded.
    payload:
        Scheme-specific bytes.
    zmin, zmax:
        The block's value range, recorded at encode time (``None`` for
        empty blocks and for blocks built before zone maps existed).
        For ``for`` blocks these are literally the header fields —
        reference and reference + span — so zone-map pruning never has
        to touch the payload.
    """

    scheme: str
    dtype: str
    count: int
    payload: bytes
    zmin: Optional[Any] = None
    zmax: Optional[Any] = None

    @property
    def nbytes(self) -> int:
        """Compressed size in bytes (payload only)."""
        return len(self.payload)

    @property
    def plain_nbytes(self) -> int:
        """Bytes of the equivalent uncompressed array."""
        return self.count * np.dtype(self.dtype).itemsize


def _pack_arrays(*arrays: NDArray[Any]) -> bytes:
    """Concatenate arrays into a payload with a tiny length-prefixed framing."""
    parts: List[bytes] = []
    for arr in arrays:
        raw = np.ascontiguousarray(arr).tobytes()
        dtype_tag = arr.dtype.str.encode()
        parts.append(len(dtype_tag).to_bytes(2, "little"))
        parts.append(dtype_tag)
        parts.append(len(raw).to_bytes(8, "little"))
        parts.append(raw)
    return b"".join(parts)


def _unpack_arrays(payload: bytes, n: int) -> Tuple[NDArray[Any], ...]:
    arrays: List[NDArray[Any]] = []
    pos = 0
    for _ in range(n):
        if pos + 2 > len(payload):
            raise CompressionError("truncated payload framing")
        tag_len = int.from_bytes(payload[pos : pos + 2], "little")
        pos += 2
        try:
            dtype = np.dtype(payload[pos : pos + tag_len].decode())
        except (ValueError, TypeError, UnicodeDecodeError) as exc:
            raise CompressionError(f"bad payload dtype tag ({exc})") from None
        pos += tag_len
        raw_len = int.from_bytes(payload[pos : pos + 8], "little")
        pos += 8
        raw = payload[pos : pos + raw_len]
        if len(raw) != raw_len or (dtype.itemsize and raw_len % dtype.itemsize):
            raise CompressionError("truncated payload data")
        pos += raw_len
        arrays.append(np.frombuffer(raw, dtype=dtype))
    return tuple(arrays)


def _as_input(values: NDArray[Any]) -> NDArray[Any]:
    """Normalise encoder input: 1-D and C-contiguous.

    Encoders take views (``values[::2]``, reversed slices, morsel
    windows); ``ascontiguousarray`` makes the bit-pattern reinterpret in
    ``delta_zlib`` and the raw ``tobytes`` paths safe for all of them.
    """
    values = np.ascontiguousarray(values)
    if values.ndim != 1:
        raise CompressionError("compression works on 1-D arrays")
    return values


def _zone_scalar(value: Any, dtype: np.dtype[Any]) -> Any:
    """A zone-map bound as a scalar of the column dtype (exact)."""
    return dtype.type(value)


# -- run-length encoding ------------------------------------------------------


def rle_encode(values: NDArray[Any]) -> CompressedBlock:
    """Run-length encode; ideal for sorted/low-cardinality columns
    (classification codes, flags) as the paper notes for flat tables."""
    values = _as_input(values)
    if values.shape[0] == 0:
        return CompressedBlock("rle", values.dtype.str, 0, b"")
    change = np.empty(values.shape[0], dtype=bool)
    change[0] = True
    change[1:] = values[1:] != values[:-1]
    starts = np.flatnonzero(change)
    run_values = values[starts]
    run_lengths = np.diff(np.append(starts, values.shape[0])).astype(np.int64)
    payload = _pack_arrays(run_values, run_lengths)
    return CompressedBlock(
        "rle",
        values.dtype.str,
        values.shape[0],
        payload,
        zmin=run_values.min(),
        zmax=run_values.max(),
    )


def rle_decode(block: CompressedBlock) -> NDArray[Any]:
    if block.scheme != "rle":
        raise CompressionError(f"not an rle block: {block.scheme}")
    if block.count == 0:
        return np.empty(0, dtype=np.dtype(block.dtype))
    run_values, run_lengths = rle_parts(block)
    out = np.repeat(run_values, run_lengths)
    if out.shape[0] != block.count:
        raise CompressionError("rle length mismatch")
    return out.astype(np.dtype(block.dtype))


def rle_parts(block: CompressedBlock) -> Tuple[NDArray[Any], NDArray[Any]]:
    """``(run_values, run_lengths)`` of an rle block (zero-copy views)."""
    if block.scheme != "rle":
        raise CompressionError(f"not an rle block: {block.scheme}")
    if block.count == 0:
        empty: NDArray[Any] = np.empty(0, dtype=np.dtype(block.dtype))
        return empty, np.empty(0, dtype=np.int64)
    run_values, run_lengths = _unpack_arrays(block.payload, 2)
    if int(run_lengths.sum()) != block.count:
        raise CompressionError("rle length mismatch")
    return run_values, run_lengths


# -- dictionary encoding -------------------------------------------------------


def dict_encode(values: NDArray[Any]) -> CompressedBlock:
    """Dictionary encode: distinct values + per-row code of minimal width."""
    values = _as_input(values)
    uniques, codes = np.unique(values, return_inverse=True)
    if uniques.shape[0] <= 1 << 8:
        code_dtype: Any = np.uint8
    elif uniques.shape[0] <= 1 << 16:
        code_dtype = np.uint16
    else:
        code_dtype = np.uint32
    payload = _pack_arrays(uniques, codes.astype(code_dtype))
    if values.shape[0] == 0:
        return CompressedBlock("dict", values.dtype.str, 0, payload)
    # np.unique sorts, so the dictionary ends carry the zone map (NaN,
    # if any, sorts last and lands the block on the always-safe PROBE
    # verdict downstream).
    return CompressedBlock(
        "dict",
        values.dtype.str,
        values.shape[0],
        payload,
        zmin=uniques[0],
        zmax=uniques[-1],
    )


def dict_decode(block: CompressedBlock) -> NDArray[Any]:
    if block.scheme != "dict":
        raise CompressionError(f"not a dict block: {block.scheme}")
    if block.count == 0:
        return np.empty(0, dtype=np.dtype(block.dtype))
    uniques, codes = dict_parts(block)
    return uniques[codes].astype(np.dtype(block.dtype))


def dict_parts(block: CompressedBlock) -> Tuple[NDArray[Any], NDArray[Any]]:
    """``(uniques, codes)`` of a dict block (zero-copy views)."""
    if block.scheme != "dict":
        raise CompressionError(f"not a dict block: {block.scheme}")
    if block.count == 0:
        empty: NDArray[Any] = np.empty(0, dtype=np.dtype(block.dtype))
        return empty, np.empty(0, dtype=np.uint8)
    uniques, codes = _unpack_arrays(block.payload, 2)
    if codes.shape[0] != block.count:
        raise CompressionError("dict code count mismatch")
    if codes.shape[0] and uniques.shape[0] == 0:
        raise CompressionError("dict block has codes but no dictionary")
    return uniques, codes


# -- frame of reference --------------------------------------------------------


def for_encode(values: NDArray[Any]) -> CompressedBlock:
    """Frame-of-reference for integer columns: offsets from the minimum,
    stored at minimal width.  Great for LAS scaled-int coordinates.

    The offset arithmetic is modular (two's-complement) in ``uint64``:
    the true offsets ``v - min`` always lie in ``[0, 2^64)`` for any
    supported integer dtype, so ``(v - min) mod 2^64`` is exact even
    where a signed ``int64`` subtraction would overflow (e.g. values
    spanning ``[-2^62, 2^62]``, or ``uint64`` values above ``2^63``).
    """
    values = _as_input(values)
    if values.dtype.kind not in "iu":
        raise CompressionError("frame-of-reference needs integer input")
    if values.shape[0] == 0:
        return CompressedBlock("for", values.dtype.str, 0, b"")
    reference = int(values.min())
    offsets = values.astype(np.uint64) - np.uint64(reference & _U64_MASK)
    span = int(offsets.max())
    if span <= 0xFF:
        off_dtype: Any = np.uint8
    elif span <= 0xFFFF:
        off_dtype = np.uint16
    elif span <= 0xFFFFFFFF:
        off_dtype = np.uint32
    else:
        off_dtype = np.uint64
    # The reference travels as its two's-complement uint64 image so a
    # uint64 minimum above int64 max still round-trips; the dtype tag in
    # the framing keeps legacy int64-reference payloads readable.
    payload = _pack_arrays(
        np.asarray([reference & _U64_MASK], dtype=np.uint64),
        offsets.astype(off_dtype),
    )
    return CompressedBlock(
        "for",
        values.dtype.str,
        values.shape[0],
        payload,
        zmin=_zone_scalar(reference, values.dtype),
        zmax=_zone_scalar(reference + span, values.dtype),
    )


def for_parts(block: CompressedBlock) -> Tuple[int, NDArray[Any]]:
    """``(reference, packed offsets)`` of a FOR block.

    The offsets come back as the zero-copy stored-width view — this is
    the representation the packed predicate kernels compare against
    directly.  The reference is the true (signed) minimum value.
    """
    if block.scheme != "for":
        raise CompressionError(f"not a for block: {block.scheme}")
    if block.count == 0:
        return 0, np.empty(0, dtype=np.uint8)
    ref_arr, offsets = _unpack_arrays(block.payload, 2)
    if ref_arr.shape[0] != 1 or offsets.shape[0] != block.count:
        raise CompressionError("for payload shape mismatch")
    reference = int(ref_arr[0])
    if ref_arr.dtype.kind == "u" and np.dtype(block.dtype).kind == "i":
        # Undo the two's-complement image for signed columns.
        if reference >= 1 << 63:
            reference -= 1 << 64
    return reference, offsets


def for_decode(block: CompressedBlock) -> NDArray[Any]:
    if block.scheme != "for":
        raise CompressionError(f"not a for block: {block.scheme}")
    dtype = np.dtype(block.dtype)
    if block.count == 0:
        return np.empty(0, dtype=dtype)
    reference, offsets = for_parts(block)
    # Modular add, then a wrapping cast back to the column dtype: exact
    # for the same reason the encoder's modular subtract is.
    out = offsets.astype(np.uint64) + np.uint64(reference & _U64_MASK)
    return out.astype(dtype)


# -- delta + zlib --------------------------------------------------------------


def delta_zlib_encode(values: NDArray[Any], level: int = 6) -> CompressedBlock:
    """Delta-encode then deflate.

    This is the repo's stand-in for pointcloud/LAZ-style dimensional
    compression: spatially sorted coordinates have tiny deltas that deflate
    extremely well, which is why sorted blocks compress better (Section 2.3).
    Works for integers (exact deltas) and floats (bit-pattern deltas via
    int64 views, still lossless).
    """
    values = _as_input(values)
    if values.shape[0] == 0:
        return CompressedBlock("delta_zlib", values.dtype.str, 0, b"")
    if values.dtype.kind == "f":
        # Delta the raw bit patterns: lossless and still exposes locality.
        # (The _as_input contiguity guarantee is what makes this view legal
        # on strided inputs.)
        as_int = values.view(np.int64 if values.dtype.itemsize == 8 else np.int32)
    elif values.dtype.kind in "iu":
        as_int = values.astype(np.int64)
    else:
        raise CompressionError(f"cannot delta-encode dtype {values.dtype}")
    deltas = np.empty(as_int.shape[0], dtype=np.int64)
    deltas[0] = as_int[0]
    deltas[1:] = np.asarray(as_int[1:], dtype=np.int64) - np.asarray(
        as_int[:-1], dtype=np.int64
    )
    payload = zlib.compress(deltas.tobytes(), level)
    return CompressedBlock(
        "delta_zlib",
        values.dtype.str,
        values.shape[0],
        payload,
        zmin=values.min(),
        zmax=values.max(),
    )


def delta_zlib_decode(block: CompressedBlock) -> NDArray[Any]:
    if block.scheme != "delta_zlib":
        raise CompressionError(f"not a delta_zlib block: {block.scheme}")
    dtype = np.dtype(block.dtype)
    if block.count == 0:
        return np.empty(0, dtype=dtype)
    try:
        raw = zlib.decompress(block.payload)
    except zlib.error as exc:
        raise CompressionError(f"corrupt deflate payload: {exc}") from None
    deltas = np.frombuffer(raw, dtype=np.int64)
    if deltas.shape[0] != block.count:
        raise CompressionError("delta payload length mismatch")
    as_int = np.cumsum(deltas, dtype=np.int64)
    if dtype.kind == "f":
        width = np.int64 if dtype.itemsize == 8 else np.int32
        return as_int.astype(width).view(dtype).copy()
    return as_int.astype(dtype)


# -- plain (identity) ----------------------------------------------------------


def plain_encode(values: NDArray[Any]) -> CompressedBlock:
    """The identity scheme: raw values, framed.  The fallback when no
    real encoding earns its keep (incompressible floats, tiny blocks)."""
    values = _as_input(values)
    payload = _pack_arrays(values)
    if values.shape[0] == 0:
        return CompressedBlock("plain", values.dtype.str, 0, payload)
    return CompressedBlock(
        "plain",
        values.dtype.str,
        values.shape[0],
        payload,
        zmin=values.min(),
        zmax=values.max(),
    )


def plain_view(block: CompressedBlock) -> NDArray[Any]:
    """The raw values of a plain block as a zero-copy view."""
    if block.scheme != "plain":
        raise CompressionError(f"not a plain block: {block.scheme}")
    if block.count == 0:
        return np.empty(0, dtype=np.dtype(block.dtype))
    (values,) = _unpack_arrays(block.payload, 1)
    if values.shape[0] != block.count:
        raise CompressionError("plain payload length mismatch")
    return values


def plain_decode(block: CompressedBlock) -> NDArray[Any]:
    if block.scheme != "plain":
        raise CompressionError(f"not a plain block: {block.scheme}")
    return plain_view(block).astype(np.dtype(block.dtype))


#: scheme name -> (encode, decode)
SCHEMES: Dict[
    str, Tuple[Callable[..., CompressedBlock], Callable[[CompressedBlock], NDArray[Any]]]
] = {
    "rle": (rle_encode, rle_decode),
    "dict": (dict_encode, dict_decode),
    "for": (for_encode, for_decode),
    "delta_zlib": (delta_zlib_encode, delta_zlib_decode),
    "plain": (plain_encode, plain_decode),
}


def _record_encode(block: CompressedBlock, seconds: float) -> None:
    registry = get_registry()
    registry.counter("compression.encoded_blocks").inc()
    registry.histogram("compression.encode_seconds").observe(seconds)


def _record_decode(block: CompressedBlock, seconds: float) -> None:
    registry = get_registry()
    registry.counter("compression.decoded_blocks").inc()
    registry.histogram("compression.decode_seconds").observe(seconds)


def encode(scheme: str, values: NDArray[Any]) -> CompressedBlock:
    """Encode with a named scheme."""
    try:
        enc, _dec = SCHEMES[scheme]
    except KeyError:
        raise CompressionError(f"unknown scheme {scheme!r}") from None
    with maybe_span("compression.encode", scheme=scheme) as span:
        with Stopwatch() as watch:
            block = enc(values)
        _record_encode(block, watch.seconds)
        span.set(count=block.count, nbytes=block.nbytes)
    return block


def decode(block: CompressedBlock) -> NDArray[Any]:
    """Decode any :class:`CompressedBlock`."""
    try:
        _enc, dec = SCHEMES[block.scheme]
    except KeyError:
        raise CompressionError(f"unknown scheme {block.scheme!r}") from None
    with maybe_span("compression.decode", scheme=block.scheme) as span:
        with Stopwatch() as watch:
            values = dec(block)
        _record_decode(block, watch.seconds)
        span.set(count=block.count, nbytes=int(values.nbytes))
    return values


def choose_scheme(values: NDArray[Any], sample_target: int = 4096) -> str:
    """Pick an encoding for a block at write time (cheap, sampled).

    The heuristic mirrors what a column-store's write path can afford:
    one strided sample, no trial encodes.

    * run-dominated data (sorted coordinates after tiling,
      classification sweeps) → ``rle``;
    * low cardinality (classification, return number, flags) → ``dict``;
    * any other integers (the LAS scaled X/Y/Z) → ``for``, whose packed
      form the select kernels evaluate directly;
    * floats → ``delta_zlib``;
    * anything degenerate (empty, unsupported kind) → ``plain``.

    The strided sample under-counts runs shorter than the stride, so
    borderline-runny data falls through to ``dict``/``for`` — a
    throughput-safe default (both stay scannable without decode).
    """
    values = np.asarray(values)
    n = values.shape[0]
    if n == 0 or values.dtype.kind not in "iufb":
        return "plain"
    step = max(1, n // sample_target)
    sample = values[::step]
    m = sample.shape[0]
    if m > 1:
        runs = int(np.count_nonzero(sample[1:] != sample[:-1])) + 1
        if runs <= max(1, m // 8):
            return "rle"
    distinct = int(np.unique(sample).shape[0])
    if distinct <= 256 and distinct <= max(1, m // 4):
        return "dict"
    if values.dtype.kind in "iu":
        return "for"
    if values.dtype.kind == "b":
        return "dict"
    return "delta_zlib"


def encode_adaptive(values: NDArray[Any], scheme: str = "auto") -> CompressedBlock:
    """Encode one block, choosing the scheme when ``scheme="auto"``.

    This is the write path of :class:`~repro.engine.compressed
    .CompressedColumn`: one :func:`choose_scheme` sample per segment,
    then the chosen encoder.
    """
    if scheme == "auto":
        scheme = choose_scheme(values)
    return encode(scheme, values)


def best_scheme(values: NDArray[Any]) -> CompressedBlock:
    """Try all applicable schemes and return the smallest encoding.

    Exhaustive (one trial encode per scheme) — storage-benchmark
    territory; the write path uses :func:`encode_adaptive` instead.
    """
    best: Optional[CompressedBlock] = None
    for name, (enc, _dec) in SCHEMES.items():
        try:
            with Stopwatch() as watch:
                block = enc(values)
        except CompressionError:
            continue
        _record_encode(block, watch.seconds)
        if best is None or block.nbytes < best.nbytes:
            best = block
    if best is None:
        raise CompressionError(f"no scheme applicable to dtype {values.dtype}")
    return best


def int_bounds(
    lo: Optional[Any],
    hi: Optional[Any],
    lo_inclusive: bool,
    hi_inclusive: bool,
) -> Tuple[Optional[int], Optional[int]]:
    """The closed integer interval ``[L, U]`` equivalent to a range
    predicate over integer-valued data.

    Float bounds are snapped with exact ceil/floor arithmetic
    (``v > 10.5`` ⇔ ``v >= 11``; ``v >= 10.0`` ⇔ ``v >= 10``), which is
    what lets a FOR kernel turn any range predicate into a pure integer
    compare on the packed offsets.
    """
    if lo is None:
        L: Optional[int] = None
    elif lo_inclusive:
        L = math.ceil(lo)
    else:
        L = math.floor(lo) + 1
    if hi is None:
        U: Optional[int] = None
    elif hi_inclusive:
        U = math.floor(hi)
    else:
        U = math.ceil(hi) - 1
    return L, U
