"""Join operators over columns and candidate lists.

The engine provides an equi hash join (the workhorse for thematic joins in
Scenario 2) and a band join used by distance predicates.  Joins return a
pair of aligned oid arrays ``(left_oids, right_oids)``, matching MonetDB's
join-index style output, so results compose with :func:`repro.engine.project`.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

from .column import Column


def hash_join(
    left: Column,
    right: Column,
    left_candidates: Optional[NDArray[Any]] = None,
    right_candidates: Optional[NDArray[Any]] = None,
) -> Tuple[NDArray[Any], NDArray[Any]]:
    """Equi-join two columns; returns aligned (left_oids, right_oids).

    Builds on the smaller input, probes with the larger, and produces every
    matching pair.  Implemented with a sort-based grouping of the build side
    (numpy has no hash table primitive, but the contract and cost profile —
    one pass build, one pass probe — are those of a hash join).
    """
    lvals = left.values if left_candidates is None else left.take(left_candidates)
    rvals = (
        right.values if right_candidates is None else right.take(right_candidates)
    )
    loids = (
        np.arange(len(left), dtype=np.int64)
        if left_candidates is None
        else np.asarray(left_candidates, dtype=np.int64)
    )
    roids = (
        np.arange(len(right), dtype=np.int64)
        if right_candidates is None
        else np.asarray(right_candidates, dtype=np.int64)
    )

    if lvals.shape[0] == 0 or rvals.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    # Build side: group identical values; probe side: binary-search the groups.
    build_vals, build_oids, probe_vals, probe_oids, swapped = (
        (lvals, loids, rvals, roids, False)
        if lvals.shape[0] <= rvals.shape[0]
        else (rvals, roids, lvals, loids, True)
    )
    order = np.argsort(build_vals, kind="stable")
    sorted_vals = build_vals[order]
    sorted_oids = build_oids[order]

    starts = np.searchsorted(sorted_vals, probe_vals, side="left")
    ends = np.searchsorted(sorted_vals, probe_vals, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    # Expand each probe row into its group of build matches.
    probe_out = np.repeat(probe_oids, counts)
    offsets = np.repeat(starts, counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    build_out = sorted_oids[offsets + within]

    if swapped:
        return probe_out, build_out
    return build_out, probe_out


def band_join(
    left: Column,
    right: Column,
    radius: float,
    left_candidates: Optional[NDArray[Any]] = None,
    right_candidates: Optional[NDArray[Any]] = None,
) -> Tuple[NDArray[Any], NDArray[Any]]:
    """Pairs with ``|left - right| <= radius`` (1-D band join).

    Used as the per-axis prefilter of distance joins: a 2-D ``ST_DWithin``
    join runs a band join on x, then exact-checks the survivors.
    """
    if radius < 0:
        raise ValueError("band join radius must be non-negative")
    lvals = left.values if left_candidates is None else left.take(left_candidates)
    rvals = (
        right.values if right_candidates is None else right.take(right_candidates)
    )
    loids = (
        np.arange(len(left), dtype=np.int64)
        if left_candidates is None
        else np.asarray(left_candidates, dtype=np.int64)
    )
    roids = (
        np.arange(len(right), dtype=np.int64)
        if right_candidates is None
        else np.asarray(right_candidates, dtype=np.int64)
    )
    if lvals.shape[0] == 0 or rvals.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    order = np.argsort(rvals, kind="stable")
    sorted_vals = rvals[order]
    sorted_oids = roids[order]
    starts = np.searchsorted(sorted_vals, lvals - radius, side="left")
    ends = np.searchsorted(sorted_vals, lvals + radius, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_out = np.repeat(loids, counts)
    offsets = np.repeat(starts, counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    right_out = sorted_oids[offsets + within]
    return left_out, right_out
