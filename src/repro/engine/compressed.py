"""Segmented compressed columns — the execution-side compressed format.

A :class:`CompressedColumn` is a column sliced into fixed-size segments
(the same ``64Ki``-row granularity the segmented imprints use), each
encoded independently by :func:`repro.engine.compression.encode_adaptive`.
Per-segment encoding is what makes compression an *execution* format
rather than a storage codec:

* every block carries its value range from encode time, so a range
  predicate prunes whole segments through
  :func:`repro.engine.kernels.block_zone_verdict` without touching any
  payload byte;
* segments that must be probed are evaluated by the packed kernels —
  FOR offsets compared at stored width, dictionary/RLE verdicts
  broadcast through codes and run lengths — decoding nothing;
* only predicate survivors are materialized, via
  :func:`repro.engine.kernels.take`.

Probes fan out per segment over :func:`repro.engine.parallel.run_tasks`
(the same morsel scheduler the uncompressed scans use), and every select
returns a :class:`ScanStats` so callers can attribute encoded versus
materialized bytes to the query's resource tracker and to
``EXPLAIN ANALYZE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from ..obs import heat as _heat
from ..obs import queries as _queries
from ..obs.metrics import get_registry
from . import kernels, parallel
from .compression import CompressedBlock, CompressionError, decode, encode_adaptive

#: Rows per compressed segment; matches the segmented imprints so one
#: zone-map verdict lines up with one imprint segment.
DEFAULT_SEGMENT_ROWS = 64 * 1024


@dataclass
class ScanStats:
    """What one compressed select actually did, for attribution."""

    segments_skipped: int = 0
    segments_full: int = 0
    segments_probed: int = 0
    #: Probed segments evaluated on the packed representation.
    packed_probes: int = 0
    #: Encoded payload bytes the probe loops scanned.
    encoded_bytes: int = 0
    #: Bytes of decoded arrays built by fallback probes.
    materialized_bytes: int = 0
    rows_in: int = 0
    rows_out: int = 0

    @property
    def probed_rows(self) -> int:
        return self.rows_in  # set by the select loops to probed rows only

    def merge(self, other: "ScanStats") -> None:
        self.segments_skipped += other.segments_skipped
        self.segments_full += other.segments_full
        self.segments_probed += other.segments_probed
        self.packed_probes += other.packed_probes
        self.encoded_bytes += other.encoded_bytes
        self.materialized_bytes += other.materialized_bytes
        self.rows_in += other.rows_in
        self.rows_out += other.rows_out


@dataclass(frozen=True)
class CompressedColumn:
    """An immutable, segmented, compressed snapshot of one column."""

    name: str
    dtype: str
    segment_rows: int
    n_rows: int
    blocks: Tuple[CompressedBlock, ...]
    #: crc32 of the source column's raw bytes at encode time; the
    #: storage layer uses it to detect stale sidecars.
    source_crc: int = 0
    _starts: Tuple[int, ...] = field(default=(), repr=False)

    def __post_init__(self) -> None:
        counted = sum(b.count for b in self.blocks)
        if counted != self.n_rows:
            raise CompressionError(
                f"segment counts sum to {counted}, column has {self.n_rows} rows"
            )
        if not self._starts:
            starts: List[int] = []
            pos = 0
            for block in self.blocks:
                starts.append(pos)
                pos += block.count
            object.__setattr__(self, "_starts", tuple(starts))

    # -- construction -----------------------------------------------------

    @classmethod
    def from_values(
        cls,
        name: str,
        values: NDArray[Any],
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        scheme: str = "auto",
        source_crc: int = 0,
    ) -> "CompressedColumn":
        """Encode a value array segment by segment.

        ``scheme="auto"`` picks per segment via
        :func:`~repro.engine.compression.choose_scheme`, so a column can
        mix encodings (RLE where a tile's classification is constant,
        FOR elsewhere).
        """
        if segment_rows <= 0:
            raise CompressionError("segment_rows must be positive")
        values = np.asarray(values)
        blocks: List[CompressedBlock] = []
        for start in range(0, values.shape[0], segment_rows):
            _queries.check_deadline()
            blocks.append(encode_adaptive(values[start : start + segment_rows], scheme))
        return cls(
            name=name,
            dtype=values.dtype.str,
            segment_rows=segment_rows,
            n_rows=int(values.shape[0]),
            blocks=tuple(blocks),
            source_crc=source_crc,
        )

    # -- geometry ----------------------------------------------------------

    def segment_bounds(self, i: int) -> Tuple[int, int]:
        """Global ``[start, stop)`` row range of segment ``i``."""
        start = self._starts[i]
        return start, start + self.blocks[i].count

    @property
    def nbytes(self) -> int:
        """Encoded payload bytes across all segments."""
        return sum(b.nbytes for b in self.blocks)

    @property
    def plain_nbytes(self) -> int:
        """Bytes of the equivalent uncompressed column."""
        return self.n_rows * np.dtype(self.dtype).itemsize

    def scheme_counts(self) -> Dict[str, int]:
        """``{scheme: n_segments}`` — the adaptive encoder's choices."""
        out: Dict[str, int] = {}
        for block in self.blocks:
            out[block.scheme] = out.get(block.scheme, 0) + 1
        return out

    # -- materialization ---------------------------------------------------

    def decode_all(self) -> NDArray[Any]:
        """Full decode (verification, re-saving, non-predicate scans)."""
        if not self.blocks:
            return np.empty(0, dtype=np.dtype(self.dtype))
        return np.concatenate([decode(b) for b in self.blocks])

    def take(self, oids: NDArray[Any]) -> NDArray[Any]:
        """Gather values at sorted global row ids, late-materializing
        from each touched segment only."""
        oids = np.asarray(oids, dtype=np.int64)
        if oids.shape[0] == 0:
            return np.empty(0, dtype=np.dtype(self.dtype))
        starts = np.asarray(self._starts, dtype=np.int64)
        seg_of = np.searchsorted(starts, oids, side="right") - 1
        pieces: List[NDArray[Any]] = []
        for seg in np.unique(seg_of):
            _queries.check_deadline()
            in_seg = oids[seg_of == seg] - starts[seg]
            pieces.append(kernels.take(self.blocks[int(seg)], in_seg))
        return np.concatenate(pieces)

    # -- predicate scans ---------------------------------------------------

    def _probe_segments(
        self,
        probes: Sequence[int],
        fn_lo: Optional[Any],
        fn_hi: Optional[Any],
        lo_inclusive: bool,
        hi_inclusive: bool,
        negate: bool,
        threads: Optional[int],
        stats: ScanStats,
        heat_probed: Optional[List[Tuple[int, int, int]]] = None,
    ) -> Dict[int, NDArray[np.int64]]:
        """Run the packed range kernel over the PROBE segments, fanned
        out per segment; returns ``{segment: global oids}``."""
        active = _queries.current_query()
        if active is not None:
            # Live progress over the whole scan (both select entry
            # points classify every block before probing): pruned and
            # wholesale-accepted segments complete for free, probes tick
            # below as they finish.
            active.add_segments(
                total=len(self.blocks), done=len(self.blocks) - len(probes)
            )

        def probe(i: int) -> Tuple[int, NDArray[np.int64], bool, int]:
            if active is not None:
                active.check_deadline()
            block = self.blocks[i]
            mask, packed = kernels.range_mask(
                block, fn_lo, fn_hi, lo_inclusive, hi_inclusive
            )
            if negate:
                mask = ~mask
            start, _stop = self.segment_bounds(i)
            oids = (np.flatnonzero(mask) + start).astype(np.int64)
            if active is not None:
                active.add_segments(done=1)
            return i, oids, packed, kernels.scan_bytes(block, packed)

        results = parallel.run_tasks(probe, list(probes), threads)
        hits: Dict[int, NDArray[np.int64]] = {}
        for i, oids, packed, nbytes in results:
            hits[i] = oids
            stats.segments_probed += 1
            stats.rows_in += self.blocks[i].count
            if packed:
                stats.packed_probes += 1
                stats.encoded_bytes += nbytes
            else:
                stats.materialized_bytes += nbytes
            if heat_probed is not None:
                heat_probed.append(
                    (i, nbytes if packed else 0, 0 if packed else nbytes)
                )
        return hits

    def _record_heat(
        self,
        heat: "_heat.HeatMap",
        verdicts: List[int],
        heat_probed: List[Tuple[int, int, int]],
    ) -> None:
        """One batched heat update per scan (never per segment)."""
        heat.record_scan(
            self.name,
            probed=heat_probed,
            skipped=[
                i for i, v in enumerate(verdicts) if v == kernels.ZONE_SKIP
            ],
            full=[
                i for i, v in enumerate(verdicts) if v == kernels.ZONE_FULL
            ],
        )

    def _gather(
        self,
        verdicts: List[int],
        hits: Dict[int, NDArray[np.int64]],
    ) -> NDArray[np.int64]:
        """Concatenate FULL ranges and probe hits in segment order —
        the result is the sorted global candidate list."""
        pieces: List[NDArray[np.int64]] = []
        for i, verdict in enumerate(verdicts):
            if verdict == kernels.ZONE_FULL:
                start, stop = self.segment_bounds(i)
                pieces.append(np.arange(start, stop, dtype=np.int64))
            elif verdict == kernels.ZONE_PROBE:
                pieces.append(hits[i])
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)

    def range_select(
        self,
        lo: Optional[Any],
        hi: Optional[Any],
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
        threads: Optional[int] = None,
        stats: Optional[ScanStats] = None,
    ) -> NDArray[np.int64]:
        """Row ids where ``lo <(=) value <(=) hi`` — zone-map pruning,
        then packed probes, no decoding of non-survivors."""
        stats = stats if stats is not None else ScanStats()
        heat = _heat.maybe_heat()
        heat_probed: List[Tuple[int, int, int]] = []
        verdicts: List[int] = []
        probes: List[int] = []
        for i, block in enumerate(self.blocks):
            verdict = kernels.block_zone_verdict(
                block, lo, hi, lo_inclusive, hi_inclusive
            )
            verdicts.append(verdict)
            if verdict == kernels.ZONE_PROBE:
                probes.append(i)
            elif verdict == kernels.ZONE_FULL:
                stats.segments_full += 1
            else:
                stats.segments_skipped += 1
        hits = self._probe_segments(
            probes,
            lo,
            hi,
            lo_inclusive,
            hi_inclusive,
            False,
            threads,
            stats,
            heat_probed if heat is not None else None,
        )
        out = self._gather(verdicts, hits)
        stats.rows_out += out.shape[0]
        if heat is not None:
            self._record_heat(heat, verdicts, heat_probed)
        if stats.packed_probes:
            get_registry().counter("compression.packed_predicate_hits").inc(
                stats.packed_probes
            )
        return out

    def theta_select(
        self,
        op: str,
        constant: Any,
        threads: Optional[int] = None,
        stats: Optional[ScanStats] = None,
    ) -> NDArray[np.int64]:
        """Row ids where ``value <op> constant`` for the six comparison
        operators; every operator reduces to a zone-pruned range probe
        (``!=`` by complementing the ``==`` verdicts)."""
        stats = stats if stats is not None else ScanStats()
        lo: Optional[Any]
        hi: Optional[Any]
        lo_inc = hi_inc = True
        negate = False
        if op in ("==", "!="):
            lo = hi = constant
            negate = op == "!="
        elif op == "<":
            lo, hi, hi_inc = None, constant, False
        elif op == "<=":
            lo, hi = None, constant
        elif op == ">":
            lo, hi, lo_inc = constant, None, False
        elif op == ">=":
            lo, hi = constant, None
        else:
            raise CompressionError(f"unsupported theta operator {op!r}")
        heat = _heat.maybe_heat()
        heat_probed: List[Tuple[int, int, int]] = []
        verdicts: List[int] = []
        probes: List[int] = []
        for i, block in enumerate(self.blocks):
            verdict = kernels.block_zone_verdict(block, lo, hi, lo_inc, hi_inc)
            if negate:
                # Complement: every-row-matches becomes no-row-matches
                # and vice versa; PROBE stays PROBE.
                if verdict == kernels.ZONE_FULL:
                    verdict = kernels.ZONE_SKIP
                elif verdict == kernels.ZONE_SKIP and block.count:
                    verdict = kernels.ZONE_FULL
            verdicts.append(verdict)
            if verdict == kernels.ZONE_PROBE:
                probes.append(i)
            elif verdict == kernels.ZONE_FULL:
                stats.segments_full += 1
            else:
                stats.segments_skipped += 1
        hits = self._probe_segments(
            probes,
            lo,
            hi,
            lo_inc,
            hi_inc,
            negate,
            threads,
            stats,
            heat_probed if heat is not None else None,
        )
        out = self._gather(verdicts, hits)
        stats.rows_out += out.shape[0]
        if heat is not None:
            self._record_heat(heat, verdicts, heat_probed)
        if stats.packed_probes:
            get_registry().counter("compression.packed_predicate_hits").inc(
                stats.packed_probes
            )
        return out
