"""Aggregation operators: scalar aggregates and grouped aggregates.

Scenario 2 of the demo runs queries like "compute the average elevation of
the LIDAR points near a fast transit road"; these operators are the engine
half of that.  Grouped aggregation uses the sort-based grouping idiom
(``np.unique`` + ``np.add.reduceat``), the columnar analogue of MonetDB's
group-by kernels.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np
from numpy.typing import NDArray

from .column import Column


def _materialise(column: Column, candidates: Optional[NDArray[Any]]) -> NDArray[Any]:
    return column.values if candidates is None else column.take(candidates)


def count(column: Column, candidates: Optional[NDArray[Any]] = None) -> int:
    """Number of qualifying rows."""
    return len(column) if candidates is None else int(len(candidates))


def sum_(column: Column, candidates: Optional[NDArray[Any]] = None) -> Any:
    """Sum over qualifying rows (0 on empty input, SQL-style for SUM of none
    is NULL; the engine returns 0 and the SQL layer maps empty to None)."""
    return _materialise(column, candidates).sum()


def avg(column: Column, candidates: Optional[NDArray[Any]] = None) -> float:
    """Arithmetic mean over qualifying rows; NaN on empty input."""
    vals = _materialise(column, candidates)
    if vals.shape[0] == 0:
        return float("nan")
    return float(vals.mean())


def min_(column: Column, candidates: Optional[NDArray[Any]] = None) -> Any:
    vals = _materialise(column, candidates)
    if vals.shape[0] == 0:
        raise ValueError("min of empty input")
    return vals.min()


def max_(column: Column, candidates: Optional[NDArray[Any]] = None) -> Any:
    vals = _materialise(column, candidates)
    if vals.shape[0] == 0:
        raise ValueError("max of empty input")
    return vals.max()


#: Aggregate kernels over a 1-D value array, used by :func:`group_aggregate`.
_GROUP_KERNELS: Dict[str, Callable[[NDArray[Any], NDArray[Any]], NDArray[Any]]] = {
    "sum": lambda v, starts: np.add.reduceat(v, starts),
    "min": lambda v, starts: np.minimum.reduceat(v, starts),
    "max": lambda v, starts: np.maximum.reduceat(v, starts),
}


def group_aggregate(
    group_values: NDArray[Any],
    agg_values: Optional[NDArray[Any]],
    func: str,
) -> Dict[str, NDArray[Any]]:
    """Grouped aggregate: one output row per distinct group value.

    Parameters
    ----------
    group_values:
        Grouping key per qualifying row.
    agg_values:
        Values to aggregate (ignored for ``count``).
    func:
        One of ``count``, ``sum``, ``avg``, ``min``, ``max``.

    Returns a dict with ``groups`` (distinct keys, sorted) and ``values``
    (the aggregate per group, aligned with ``groups``).
    """
    group_values = np.asarray(group_values)
    if group_values.shape[0] == 0:
        return {
            "groups": group_values[:0],
            "values": np.empty(0, dtype=np.float64),
        }
    order = np.argsort(group_values, kind="stable")
    sorted_groups = group_values[order]
    boundary = np.empty(sorted_groups.shape[0], dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_groups[1:] != sorted_groups[:-1]
    starts = np.flatnonzero(boundary)
    groups = sorted_groups[starts]
    sizes = np.diff(np.append(starts, sorted_groups.shape[0]))

    if func == "count":
        return {"groups": groups, "values": sizes.astype(np.int64)}

    if agg_values is None:
        raise ValueError(f"aggregate {func!r} requires values")
    sorted_vals = np.asarray(agg_values)[order]
    if func == "avg":
        sums = np.add.reduceat(sorted_vals.astype(np.float64), starts)
        return {"groups": groups, "values": sums / sizes}
    try:
        kernel = _GROUP_KERNELS[func]
    except KeyError:
        raise ValueError(f"unknown aggregate {func!r}") from None
    return {"groups": groups, "values": kernel(sorted_vals, starts)}
