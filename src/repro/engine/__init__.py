"""Column-store engine substrate: the repo's "mini MonetDB".

Columns on numpy arrays, flat tables, candidate-list operators, per-column
binary persistence, and lightweight compression.  The paper's contribution
(:mod:`repro.core`) is built on top of these pieces.
"""

from .catalog import CatalogError, Database
from .column import Column, ColumnTypeError, resolve_type
from .table import Schema, SchemaError, Table

__all__ = [
    "CatalogError",
    "Column",
    "ColumnTypeError",
    "Database",
    "Schema",
    "SchemaError",
    "Table",
    "resolve_type",
]
