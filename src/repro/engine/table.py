"""Flat tables: ordered collections of equal-length columns.

The paper's storage model (Section 3.1) is deliberately simple: one flat
table per point cloud, one column per attribute, one tuple per point.  This
module implements that model.  A :class:`Table` enforces that all columns
stay aligned (same length) and exposes batch append in both row-batch and
column-batch form; the latter is the fast path used by the binary loader.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import ArrayLike, NDArray

from .column import Column

Schema = Sequence[Tuple[str, str]]


class SchemaError(ValueError):
    """Raised on schema violations: duplicate/unknown columns, ragged data."""


class Table:
    """A flat table: named, equal-length typed columns.

    Parameters
    ----------
    name:
        Table name within its database.
    schema:
        Sequence of ``(column_name, type_name)`` pairs, in column order.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self._columns: Dict[str, Column] = {}
        for col_name, type_name in schema:
            if col_name in self._columns:
                raise SchemaError(f"duplicate column {col_name!r}")
            self._columns[col_name] = Column(col_name, type_name)

    # -- schema ------------------------------------------------------------

    @property
    def schema(self) -> List[Tuple[str, str]]:
        """The table schema as ``(name, type_name)`` pairs in order."""
        return [(c.name, c.type_name) for c in self._columns.values()]

    @property
    def column_names(self) -> List[str]:
        return list(self._columns.keys())

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, cols={len(self._columns)}, n={len(self)})"

    @property
    def nbytes(self) -> int:
        """Total bytes of live values across all columns."""
        return sum(c.nbytes for c in self._columns.values())

    # -- mutation ----------------------------------------------------------

    def append_columns(self, batch: Mapping[str, ArrayLike]) -> int:
        """Append a column-oriented batch; returns first new oid.

        ``batch`` must contain exactly the table's columns and all arrays
        must have equal length.  This is the engine half of the paper's
        ``COPY BINARY`` bulk-load path.
        """
        missing = set(self._columns) - set(batch)
        extra = set(batch) - set(self._columns)
        if missing or extra:
            raise SchemaError(
                f"batch columns do not match schema "
                f"(missing={sorted(missing)}, unknown={sorted(extra)})"
            )
        arrays = {name: np.asarray(vals) for name, vals in batch.items()}
        lengths = {arr.shape[0] for arr in arrays.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged batch: column lengths {sorted(lengths)}")
        first_oid = len(self)
        for name, arr in arrays.items():
            self._columns[name].append(arr)
        return first_oid

    def append_rows(self, rows: Iterable[Sequence[object]]) -> int:
        """Append row tuples (column order follows the schema)."""
        rows = list(rows)
        if not rows:
            return len(self)
        names = self.column_names
        width = len(names)
        for row in rows:
            if len(row) != width:
                raise SchemaError(
                    f"row width {len(row)} does not match schema width {width}"
                )
        columns = list(zip(*rows))
        return self.append_columns(dict(zip(names, columns)))

    def truncate(self, n: int) -> None:
        """Roll the table back to its first ``n`` rows.

        Exists for crash recovery (rolling back a torn tail append), not
        for general mutation; indexes over the table must be invalidated
        by the caller.
        """
        if not 0 <= n <= len(self):
            raise SchemaError(
                f"cannot truncate table {self.name!r} of {len(self)} "
                f"rows to {n}"
            )
        for column in self._columns.values():
            column.truncate(n)

    # -- compressed execution ----------------------------------------------

    def compress(
        self,
        columns: Optional[Sequence[str]] = None,
        segment_rows: Optional[int] = None,
        scheme: str = "auto",
    ) -> Dict[str, str]:
        """Build compressed execution mirrors for the given columns (all
        by default); returns ``{column: dominant scheme}``.

        Mirrors are invalidated automatically by appends/truncates and
        rebuilt at the next :func:`compress` (or at save time by the
        storage layer), so calling this after bulk load is enough.
        """
        names = list(columns) if columns is not None else self.column_names
        report: Dict[str, str] = {}
        for name in names:
            packed = self.column(name).pack(segment_rows=segment_rows, scheme=scheme)
            counts = packed.scheme_counts()
            report[name] = (
                max(counts, key=lambda k: counts[k]) if counts else "plain"
            )
        return report

    def compression_report(self) -> Dict[str, Dict[str, object]]:
        """Per-column compression state: scheme mix and byte footprints
        for every column that currently has a packed mirror."""
        report: Dict[str, Dict[str, object]] = {}
        for name in self.column_names:
            packed = self.column(name).packed
            if packed is None:
                continue
            report[name] = {
                "schemes": packed.scheme_counts(),
                "nbytes": packed.nbytes,
                "plain_nbytes": packed.plain_nbytes,
                "segments": len(packed.blocks),
            }
        return report

    # -- access ------------------------------------------------------------

    def fetch(
        self, oids: NDArray[Any], columns: Optional[Sequence[str]] = None
    ) -> Dict[str, NDArray[Any]]:
        """Materialise the requested columns at the given row ids."""
        names = list(columns) if columns is not None else self.column_names
        return {name: self.column(name).take(oids) for name in names}

    def row(self, oid: int) -> Tuple[Any, ...]:
        """A single row as a tuple in schema order (debug/point lookups)."""
        return tuple(self.column(n).values[oid] for n in self.column_names)
