"""Typed, append-only columns backed by numpy arrays.

A :class:`Column` is the unit of storage in the engine, playing the role of
a MonetDB BAT (Binary Association Table) tail: a densely packed, typed array
of values whose implicit position is the row id (``oid``).  Columns grow by
appending batches; capacity is doubled geometrically so bulk loading is
amortised O(1) per value, which mirrors the append-optimised loading path
described in Section 3.2 of the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Union

import numpy as np
from numpy.typing import ArrayLike, NDArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .compressed import CompressedColumn

#: Logical type names accepted by the engine, mapped to numpy dtypes.  These
#: are the types needed by the 26-attribute LAS flat table plus bookkeeping.
TYPE_MAP: Dict[str, np.dtype[Any]] = {
    "bool": np.dtype(np.bool_),
    "int8": np.dtype(np.int8),
    "uint8": np.dtype(np.uint8),
    "int16": np.dtype(np.int16),
    "uint16": np.dtype(np.uint16),
    "int32": np.dtype(np.int32),
    "uint32": np.dtype(np.uint32),
    "int64": np.dtype(np.int64),
    "uint64": np.dtype(np.uint64),
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}

#: Reverse map used when reconstructing a column from a raw numpy array.
_DTYPE_TO_NAME = {v: k for k, v in TYPE_MAP.items()}

_INITIAL_CAPACITY = 1024


class ColumnTypeError(TypeError):
    """Raised when a value batch cannot be stored in the column's type."""


def resolve_type(type_name: Union[str, np.dtype[Any]]) -> np.dtype[Any]:
    """Return the numpy dtype for a logical type name.

    Accepts either an engine type name (``"float64"``) or a numpy dtype that
    exactly matches a supported type.
    """
    if isinstance(type_name, np.dtype):
        if type_name not in _DTYPE_TO_NAME:
            raise ColumnTypeError(f"unsupported column dtype: {type_name}")
        return type_name
    try:
        return TYPE_MAP[type_name]
    except KeyError:
        raise ColumnTypeError(f"unknown column type: {type_name!r}") from None


class Column:
    """An append-only typed column.

    Parameters
    ----------
    name:
        Column name within its table.
    type_name:
        Logical type, one of :data:`TYPE_MAP`.
    data:
        Optional initial values; copied into the column.
    """

    __slots__ = ("name", "dtype", "_buf", "_len", "_minmax_cache", "_packed")

    def __init__(
        self,
        name: str,
        type_name: Union[str, np.dtype[Any]],
        data: Optional[ArrayLike] = None,
    ) -> None:
        self.name = name
        self.dtype = resolve_type(type_name)
        self._buf: NDArray[Any] = np.empty(_INITIAL_CAPACITY, dtype=self.dtype)
        self._len = 0
        self._minmax_cache: Optional[Tuple[Any, Any]] = None
        self._packed: Optional["CompressedColumn"] = None
        if data is not None:
            self.append(data)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_array(cls, name: str, array: NDArray[Any]) -> "Column":
        """Wrap an existing numpy array (copied) as a column."""
        array = np.asarray(array)
        col = cls(name, array.dtype)
        col.append(array)
        return col

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Column({self.name!r}, {self.type_name}, n={self._len})"

    @property
    def type_name(self) -> str:
        """Logical engine type name of this column."""
        return _DTYPE_TO_NAME[self.dtype]

    @property
    def values(self) -> NDArray[Any]:
        """A read-only view of the column's values (no copy)."""
        view = self._buf[: self._len]
        view.flags.writeable = False
        return view

    @property
    def nbytes(self) -> int:
        """Bytes occupied by live values (excludes growth slack)."""
        return self._len * self.dtype.itemsize

    # -- mutation ----------------------------------------------------------

    def _grow_to(self, needed: int) -> None:
        if needed <= self._buf.shape[0]:
            return
        cap = max(self._buf.shape[0], _INITIAL_CAPACITY)
        while cap < needed:
            cap *= 2
        buf = np.empty(cap, dtype=self.dtype)
        buf[: self._len] = self._buf[: self._len]
        self._buf = buf

    def append(self, values: ArrayLike) -> int:
        """Append a batch of values; returns the oid of the first new row.

        Values are converted with ``numpy.asarray`` and must be safely
        castable to the column dtype (``same_kind`` casting); anything else
        raises :class:`ColumnTypeError` rather than silently truncating.
        """
        arr = np.asarray(values)
        if arr.ndim == 0:
            arr = arr.reshape(1)
        if arr.ndim != 1:
            raise ColumnTypeError("columns store 1-D value batches")
        if arr.dtype != self.dtype:
            if arr.size == 0:
                arr = arr.astype(self.dtype)
            elif np.can_cast(arr.dtype, self.dtype, casting="same_kind"):
                arr = arr.astype(self.dtype)
            else:
                # Kind-incompatible (e.g. Python ints into uint8): allow it
                # only when every value survives the round trip exactly —
                # reject anything that would silently truncate or wrap.
                cast = arr.astype(self.dtype)
                if not np.array_equal(cast, arr):
                    raise ColumnTypeError(
                        f"cannot append {arr.dtype} values to "
                        f"{self.type_name} column {self.name!r}"
                    )
                arr = cast
        first_oid = self._len
        self._grow_to(self._len + arr.shape[0])
        self._buf[self._len : self._len + arr.shape[0]] = arr
        self._len += arr.shape[0]
        self._minmax_cache = None
        self._packed = None
        return first_oid

    def truncate(self, n: int) -> None:
        """Discard every row from oid ``n`` on (crash-recovery rollback).

        Columns are append-only in normal operation; truncation exists
        solely so recovery can roll back a torn tail append.  Callers
        owning indexes over the column must invalidate them.
        """
        if not 0 <= n <= self._len:
            raise ValueError(
                f"cannot truncate column {self.name!r} of {self._len} "
                f"rows to {n}"
            )
        self._len = n
        self._minmax_cache = None
        self._packed = None

    # -- access ------------------------------------------------------------

    def take(self, oids: NDArray[Any]) -> NDArray[Any]:
        """Fetch values at the given row ids (late materialisation)."""
        return self._buf[: self._len][oids]

    def minmax(self) -> Tuple[Any, Any]:
        """(min, max) over the column; raises ValueError when empty.

        Cached until the next append (MonetDB keeps the same per-column
        min/max property), so planners may call this per query for free.
        """
        if self._len == 0:
            raise ValueError(f"column {self.name!r} is empty")
        if self._minmax_cache is None:
            vals = self._buf[: self._len]
            self._minmax_cache = (vals.min(), vals.max())
        return self._minmax_cache

    # -- compressed execution mirror ---------------------------------------

    @property
    def packed(self) -> Optional["CompressedColumn"]:
        """The column's compressed execution mirror, or ``None``.

        The mirror is invalidated (dropped) by every append/truncate, so
        a non-``None`` result is always an exact snapshot of the current
        rows and the select operators may scan it instead of the plain
        buffer.
        """
        if self._packed is not None and self._packed.n_rows != self._len:
            self._packed = None
        return self._packed

    def pack(
        self,
        segment_rows: Optional[int] = None,
        scheme: str = "auto",
    ) -> "CompressedColumn":
        """Build (or rebuild) the compressed execution mirror."""
        from .compressed import DEFAULT_SEGMENT_ROWS, CompressedColumn

        packed = CompressedColumn.from_values(
            self.name,
            self._buf[: self._len],
            segment_rows=segment_rows or DEFAULT_SEGMENT_ROWS,
            scheme=scheme,
        )
        self._packed = packed
        return packed

    def adopt_packed(self, packed: Optional["CompressedColumn"]) -> None:
        """Attach a mirror built elsewhere (the storage loader); it must
        describe exactly this column's rows."""
        if packed is not None and packed.n_rows != self._len:
            raise ValueError(
                f"packed mirror has {packed.n_rows} rows, column "
                f"{self.name!r} has {self._len}"
            )
        self._packed = packed

    def drop_packed(self) -> None:
        """Discard the compressed mirror (fall back to plain scans)."""
        self._packed = None
