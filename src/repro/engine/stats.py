"""Zonemaps (per-chunk min/max summaries) — the ablation comparator.

Column imprints are evaluated in the paper against the backdrop of simpler
secondary structures.  A zonemap stores min/max per fixed-size chunk of the
column; range queries skip chunks whose [min, max] misses the query range.
Zonemaps work well on clustered data and degrade to full scans on shuffled
data — exactly the failure mode imprints avoid (Section 2.1.1: "column
imprint compression remains effective and robust even in the case of
unclustered data, while other state-of-the-art solutions fail").  The E4
benchmark quantifies that contrast.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np
from numpy.typing import NDArray

from .column import Column


class ZoneMap:
    """Per-chunk min/max index over a column.

    Parameters
    ----------
    column:
        The column to index.
    chunk_rows:
        Values per zone; defaults to 1024 (a few cache pages), chosen so a
        zonemap entry amortises like an imprint cacheline group.
    """

    def __init__(self, column: Column, chunk_rows: int = 1024) -> None:
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        self.column = column
        self.chunk_rows = chunk_rows
        vals = np.asarray(column.values)
        n = vals.shape[0]
        n_chunks = (n + chunk_rows - 1) // chunk_rows
        self.mins = np.empty(n_chunks, dtype=vals.dtype)
        self.maxs = np.empty(n_chunks, dtype=vals.dtype)
        for i in range(n_chunks):
            chunk = vals[i * chunk_rows : (i + 1) * chunk_rows]
            self.mins[i] = chunk.min()
            self.maxs[i] = chunk.max()
        self._n = n

    @property
    def nbytes(self) -> int:
        """Index size in bytes."""
        return self.mins.nbytes + self.maxs.nbytes

    @property
    def n_chunks(self) -> int:
        return self.mins.shape[0]

    def candidate_chunks(self, lo: Optional[Any], hi: Optional[Any]) -> NDArray[Any]:
        """Chunk ids whose [min, max] intersects [lo, hi]."""
        lo_eff = lo if lo is not None else -np.inf
        hi_eff = hi if hi is not None else np.inf
        mask = (self.maxs >= lo_eff) & (self.mins <= hi_eff)
        return np.flatnonzero(mask)

    def query(
        self,
        lo: Optional[Any],
        hi: Optional[Any],
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> NDArray[Any]:
        """Exact range select using the zonemap to skip chunks.

        Returns a sorted oid array, identical to
        :func:`repro.engine.select.range_select`.
        """
        chunks = self.candidate_chunks(lo, hi)
        if chunks.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        vals = np.asarray(self.column.values)
        pieces: List[NDArray[Any]] = []
        for cid in chunks:
            start = int(cid) * self.chunk_rows
            stop = min(start + self.chunk_rows, self._n)
            chunk = vals[start:stop]
            mask = np.ones(chunk.shape[0], dtype=bool)
            if lo is not None:
                mask &= (chunk >= lo) if lo_inclusive else (chunk > lo)
            if hi is not None:
                mask &= (chunk <= hi) if hi_inclusive else (chunk < hi)
            pieces.append(np.flatnonzero(mask) + start)
        return np.concatenate(pieces).astype(np.int64)

    def scanned_fraction(self, lo: Optional[Any], hi: Optional[Any]) -> float:
        """Fraction of the column a query must touch (E4 metric)."""
        if self.n_chunks == 0:
            return 0.0
        return float(self.candidate_chunks(lo, hi).shape[0] / self.n_chunks)
