"""Per-column binary persistence and the ``COPY BINARY`` bulk-append path.

The paper's loader (Section 3.2) dumps each LAS attribute to "the binary
dump of a C-array" and appends those files to the flat table's columns with
MonetDB's ``COPY BINARY`` operator.  This module defines that on-disk
format — a tiny self-describing header followed by raw little-endian array
bytes — plus table-level save/load as one file per column, which is exactly
MonetDB's BAT-file layout.

File format (``.col``, version 2)::

    magic   4 bytes  b"RCOL"
    version u16      format version (2)
    type    u16      index into the type table (column.TYPE_MAP order)
    count   u64      number of values
    crc32   u32      CRC32 of header (crc field zeroed) + payload
    data    count * itemsize raw bytes, little endian

Version-1 files (no ``crc32`` field) are still read; new files are always
written as v2 through the atomic-write protocol of
:mod:`repro.engine.durable` (temp file + fsync + ``os.replace``), so a
crash mid-write leaves the previous file intact instead of a torn one.

A corrupted header, a short payload, or a checksum mismatch raises
:class:`StorageError` rather than yielding a truncated column; checksum
mismatches also increment the ``durability.checksum_failures`` counter.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np
from numpy.typing import NDArray

from . import durable
from .column import TYPE_MAP, Column
from .table import Table

_MAGIC = b"RCOL"
_VERSION_V1 = 1
_VERSION = 2
_HEADER_V1 = struct.Struct("<4sHHQ")
_HEADER = struct.Struct("<4sHHQI")
_PREFIX = struct.Struct("<4sH")  # magic + version, shared by both layouts
_TYPE_NAMES: List[str] = list(TYPE_MAP.keys())
_TYPE_CODES = {name: i for i, name in enumerate(_TYPE_NAMES)}

PathLike = Union[str, Path]


class StorageError(IOError):
    """Raised when a column or table file is missing, corrupt, or truncated."""


# -- raw array dumps (the loader's intermediate files) ----------------------


def dump_array(array: NDArray[Any], path: PathLike) -> int:
    """Write a 1-D numpy array as a ``.col`` file; returns bytes written.

    The write is atomic (see :mod:`repro.engine.durable`): readers see
    either the old file or the complete new one, never a torn hybrid.
    """
    array = np.ascontiguousarray(array)
    if array.ndim != 1:
        raise StorageError("only 1-D arrays are stored")
    type_name = {v: k for k, v in TYPE_MAP.items()}.get(array.dtype)
    if type_name is None:
        raise StorageError(f"unsupported dtype {array.dtype}")
    payload = array.astype(array.dtype.newbyteorder("<")).tobytes()
    # The CRC covers the header (with the CRC field zeroed) plus the
    # payload, so a bit flip anywhere in the file fails verification —
    # including type/count header bytes a payload-only CRC would miss.
    base = _HEADER.pack(_MAGIC, _VERSION, _TYPE_CODES[type_name], array.shape[0], 0)
    header = _HEADER.pack(
        _MAGIC,
        _VERSION,
        _TYPE_CODES[type_name],
        array.shape[0],
        durable.checksum(base + payload),
    )
    return durable.atomic_write_bytes(path, header + payload, label="col")


def _parse_header(raw: bytes, path: Path) -> Tuple[int, "np.dtype[Any]", int, Optional[int], int]:
    """(version, dtype, count, crc-or-None, payload offset) of a .col blob."""
    if len(raw) < _PREFIX.size:
        raise StorageError(f"{path}: truncated header")
    magic, version = _PREFIX.unpack(raw[: _PREFIX.size])
    if magic != _MAGIC:
        raise StorageError(f"{path}: bad magic {magic!r}")
    if version == _VERSION_V1:
        header = _HEADER_V1
        if len(raw) < header.size:
            raise StorageError(f"{path}: truncated header")
        _magic, _version, type_code, count = header.unpack(raw[: header.size])
        crc = None
    elif version == _VERSION:
        header = _HEADER
        if len(raw) < header.size:
            raise StorageError(f"{path}: truncated header")
        _magic, _version, type_code, count, crc = header.unpack(raw[: header.size])
    else:
        raise StorageError(f"{path}: unsupported version {version}")
    if type_code >= len(_TYPE_NAMES):
        raise StorageError(f"{path}: unknown type code {type_code}")
    return version, TYPE_MAP[_TYPE_NAMES[type_code]], count, crc, header.size


def read_column_header(path: PathLike) -> Dict[str, object]:
    """Header fields of a ``.col`` file without loading the payload.

    Returns ``{"version", "type", "count", "checksummed"}``; raises
    :class:`StorageError` on anything that is not a column file.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            raw = fh.read(_HEADER.size)
    except FileNotFoundError:
        raise StorageError(f"column file not found: {path}") from None
    version, dtype, count, crc, _offset = _parse_header(raw, path)
    type_name = {v: k for k, v in TYPE_MAP.items()}[dtype]
    return {
        "version": version,
        "type": type_name,
        "count": count,
        "checksummed": crc is not None,
    }


def load_array(path: PathLike) -> NDArray[Any]:
    """Read a ``.col`` file back into a numpy array.

    Verifies the embedded CRC32 for v2 files; a mismatch raises
    :class:`StorageError` and counts a ``durability.checksum_failures``.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise StorageError(f"column file not found: {path}") from None
    _version, dtype, count, crc, offset = _parse_header(raw, path)
    payload = raw[offset : offset + count * dtype.itemsize]
    if len(payload) != count * dtype.itemsize:
        raise StorageError(
            f"{path}: expected {count * dtype.itemsize} payload bytes, "
            f"got {len(payload)}"
        )
    if crc is None and len(raw) - offset != count * dtype.itemsize:
        # v1 has no checksum, so require an exact payload length: a v2
        # file whose version field was corrupted down to 1 would
        # otherwise parse with the payload shifted by the crc width.
        raise StorageError(
            f"{path}: v1 file has {len(raw) - offset} payload bytes, "
            f"expected exactly {count * dtype.itemsize}"
        )
    if crc is not None:
        # crc32 is the last header field; zero it out for verification.
        base = raw[: offset - 4] + b"\x00\x00\x00\x00"
        if durable.checksum(base + payload) != crc:
            durable.record_checksum_failure(path)
            raise StorageError(f"{path}: checksum mismatch")
    arr = np.frombuffer(payload, dtype=dtype.newbyteorder("<")).astype(dtype)
    return arr


# -- column / table persistence ---------------------------------------------


def save_column(column: Column, path: PathLike) -> int:
    """Persist a column; returns bytes written."""
    return dump_array(np.asarray(column.values), path)


def load_column(name: str, path: PathLike) -> Column:
    """Load a column persisted with :func:`save_column`."""
    return Column.from_array(name, load_array(path))


def table_dir_layout(table: Table) -> Dict[str, str]:
    """Map column name -> file name used inside a table directory."""
    return {name: f"{name}.col" for name in table.column_names}


def save_table(table: Table, directory: PathLike) -> int:
    """Persist a table as one ``.col`` file per column plus ``schema.json``.

    Column files are written first (each atomically); the table metadata
    goes last, so ``schema.json``'s row count is only ever updated once
    every column holding those rows is durable.  Returns total bytes
    written (excluding the schema file).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    total = 0
    for name, filename in table_dir_layout(table).items():
        total += save_column(table.column(name), directory / filename)
        durable.crash_point(
            "storage.table.column_saved", table=table.name, column=name
        )
    meta = {"name": table.name, "schema": table.schema, "rows": len(table)}
    durable.atomic_write_text(
        directory / "schema.json", json.dumps(meta, indent=2), label="schema"
    )
    return total


def load_table(directory: PathLike) -> Table:
    """Load a table persisted with :func:`save_table` (strict).

    Any missing/corrupt column or row-count mismatch raises
    :class:`StorageError`; :func:`recover_table` is the tolerant variant
    used by crash recovery.
    """
    directory = Path(directory)
    meta_path = directory / "schema.json"
    try:
        meta = json.loads(meta_path.read_text())
    except FileNotFoundError:
        raise StorageError(f"no table at {directory}") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(f"{meta_path}: corrupt table metadata ({exc})") from None
    table = Table(meta["name"], [tuple(pair) for pair in meta["schema"]])
    batch: Dict[str, NDArray[Any]] = {}
    for name, _type in table.schema:
        batch[name] = load_array(directory / f"{name}.col")
    lengths = {arr.shape[0] for arr in batch.values()}
    if len(lengths) > 1:
        # A crash mid-save leaves some columns one batch ahead; that is
        # a storage-level inconsistency (recover_table rolls it back),
        # not a schema error.
        raise StorageError(
            f"{directory}: ragged column files (lengths {sorted(lengths)})"
        )
    if batch:
        table.append_columns(batch)
    if len(table) != meta["rows"]:
        raise StorageError(
            f"{directory}: schema.json says {meta['rows']} rows, "
            f"column files hold {len(table)}"
        )
    return table


def recover_table(directory: PathLike) -> Tuple[Table, List[str]]:
    """Load a table, rolling back a torn tail instead of raising.

    The write protocol (columns first, ``schema.json`` last) means a
    crash mid-save can leave some column files one batch ahead of the
    committed metadata.  Recovery truncates every column to the shortest
    consistent prefix — ``min(schema rows, shortest column)`` — which is
    exactly the last committed state.  Returns ``(table, issues)`` where
    ``issues`` lists everything that was repaired.

    A missing/corrupt ``schema.json`` or a column that cannot be read at
    all (missing file, checksum failure) is not recoverable here and
    still raises :class:`StorageError`.
    """
    directory = Path(directory)
    meta_path = directory / "schema.json"
    try:
        meta = json.loads(meta_path.read_text())
    except FileNotFoundError:
        raise StorageError(f"no table at {directory}") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(f"{meta_path}: corrupt table metadata ({exc})") from None
    issues: List[str] = []
    table = Table(meta["name"], [tuple(pair) for pair in meta["schema"]])
    batch: Dict[str, NDArray[Any]] = {}
    for name, _type in table.schema:
        batch[name] = load_array(directory / f"{name}.col")
    target = int(meta["rows"])
    shortest = min((arr.shape[0] for arr in batch.values()), default=target)
    if shortest < target:
        issues.append(
            f"column files hold only {shortest} rows, metadata claims "
            f"{target}; rolled back to {shortest}"
        )
        target = shortest
    for name, arr in batch.items():
        if arr.shape[0] > target:
            issues.append(
                f"column {name!r}: torn tail of "
                f"{arr.shape[0] - target} rows rolled back"
            )
            batch[name] = arr[:target]
    if batch:
        table.append_columns(batch)
    return table, issues


def verify_table(directory: PathLike) -> List[str]:
    """Check a table directory's on-disk artifacts; returns issues.

    An empty list means: metadata parses, every column file loads with a
    valid checksum, and all row counts agree.
    """
    directory = Path(directory)
    issues: List[str] = []
    meta_path = directory / "schema.json"
    try:
        meta = json.loads(meta_path.read_text())
    except FileNotFoundError:
        return [f"missing schema.json in {directory}"]
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        return [f"{meta_path}: corrupt table metadata ({exc})"]
    rows = meta.get("rows")
    for pair in meta.get("schema", []):
        name = pair[0]
        try:
            arr = load_array(directory / f"{name}.col")
        except StorageError as exc:
            issues.append(str(exc))
            continue
        if arr.shape[0] != rows:
            issues.append(
                f"{directory / (name + '.col')}: holds {arr.shape[0]} rows, "
                f"schema.json says {rows}"
            )
    return issues


def copy_binary(table: Table, column_files: Dict[str, PathLike]) -> int:
    """Append per-column binary dumps to a table (the ``COPY BINARY`` step).

    ``column_files`` maps every column of ``table`` to a ``.col`` dump file.
    All files must hold the same number of values.  Returns the first new
    oid, so callers can address the appended batch.
    """
    batch = {name: load_array(path) for name, path in column_files.items()}
    return table.append_columns(batch)
