"""Per-column binary persistence and the ``COPY BINARY`` bulk-append path.

The paper's loader (Section 3.2) dumps each LAS attribute to "the binary
dump of a C-array" and appends those files to the flat table's columns with
MonetDB's ``COPY BINARY`` operator.  This module defines that on-disk
format — a tiny self-describing header followed by raw little-endian array
bytes — plus table-level save/load as one file per column, which is exactly
MonetDB's BAT-file layout.

File format (``.col``)::

    magic   4 bytes  b"RCOL"
    version u16      format version (1)
    type    u16      index into the type table (column.TYPE_MAP order)
    count   u64      number of values
    data    count * itemsize raw bytes, little endian

A corrupted header or a short payload raises :class:`StorageError` rather
than yielding a truncated column.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from .column import TYPE_MAP, Column
from .table import Table

_MAGIC = b"RCOL"
_VERSION = 1
_HEADER = struct.Struct("<4sHHQ")
_TYPE_NAMES: List[str] = list(TYPE_MAP.keys())
_TYPE_CODES = {name: i for i, name in enumerate(_TYPE_NAMES)}

PathLike = Union[str, Path]


class StorageError(IOError):
    """Raised when a column or table file is missing, corrupt, or truncated."""


# -- raw array dumps (the loader's intermediate files) ----------------------


def dump_array(array: np.ndarray, path: PathLike) -> int:
    """Write a 1-D numpy array as a ``.col`` file; returns bytes written."""
    array = np.ascontiguousarray(array)
    if array.ndim != 1:
        raise StorageError("only 1-D arrays are stored")
    type_name = {v: k for k, v in TYPE_MAP.items()}.get(array.dtype)
    if type_name is None:
        raise StorageError(f"unsupported dtype {array.dtype}")
    header = _HEADER.pack(_MAGIC, _VERSION, _TYPE_CODES[type_name], array.shape[0])
    payload = array.astype(array.dtype.newbyteorder("<")).tobytes()
    path = Path(path)
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(payload)
    return len(header) + len(payload)


def load_array(path: PathLike) -> np.ndarray:
    """Read a ``.col`` file back into a numpy array."""
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            raw_header = fh.read(_HEADER.size)
            if len(raw_header) != _HEADER.size:
                raise StorageError(f"{path}: truncated header")
            magic, version, type_code, count = _HEADER.unpack(raw_header)
            if magic != _MAGIC:
                raise StorageError(f"{path}: bad magic {magic!r}")
            if version != _VERSION:
                raise StorageError(f"{path}: unsupported version {version}")
            if type_code >= len(_TYPE_NAMES):
                raise StorageError(f"{path}: unknown type code {type_code}")
            dtype = TYPE_MAP[_TYPE_NAMES[type_code]]
            payload = fh.read(count * dtype.itemsize)
    except FileNotFoundError:
        raise StorageError(f"column file not found: {path}") from None
    if len(payload) != count * dtype.itemsize:
        raise StorageError(
            f"{path}: expected {count * dtype.itemsize} payload bytes, "
            f"got {len(payload)}"
        )
    arr = np.frombuffer(payload, dtype=dtype.newbyteorder("<")).astype(dtype)
    return arr


# -- column / table persistence ---------------------------------------------


def save_column(column: Column, path: PathLike) -> int:
    """Persist a column; returns bytes written."""
    return dump_array(np.asarray(column.values), path)


def load_column(name: str, path: PathLike) -> Column:
    """Load a column persisted with :func:`save_column`."""
    return Column.from_array(name, load_array(path))


def table_dir_layout(table: Table) -> Dict[str, str]:
    """Map column name -> file name used inside a table directory."""
    return {name: f"{name}.col" for name in table.column_names}


def save_table(table: Table, directory: PathLike) -> int:
    """Persist a table as one ``.col`` file per column plus ``schema.json``.

    Returns total bytes written (excluding the schema file).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    total = 0
    for name, filename in table_dir_layout(table).items():
        total += save_column(table.column(name), directory / filename)
    meta = {"name": table.name, "schema": table.schema, "rows": len(table)}
    (directory / "schema.json").write_text(json.dumps(meta, indent=2))
    return total


def load_table(directory: PathLike) -> Table:
    """Load a table persisted with :func:`save_table`."""
    directory = Path(directory)
    meta_path = directory / "schema.json"
    try:
        meta = json.loads(meta_path.read_text())
    except FileNotFoundError:
        raise StorageError(f"no table at {directory}") from None
    table = Table(meta["name"], [tuple(pair) for pair in meta["schema"]])
    batch = {}
    for name, _type in table.schema:
        batch[name] = load_array(directory / f"{name}.col")
    if batch:
        table.append_columns(batch)
    if len(table) != meta["rows"]:
        raise StorageError(
            f"{directory}: schema.json says {meta['rows']} rows, "
            f"column files hold {len(table)}"
        )
    return table


def copy_binary(table: Table, column_files: Dict[str, PathLike]) -> int:
    """Append per-column binary dumps to a table (the ``COPY BINARY`` step).

    ``column_files`` maps every column of ``table`` to a ``.col`` dump file.
    All files must hold the same number of values.  Returns the first new
    oid, so callers can address the appended batch.
    """
    batch = {name: load_array(path) for name, path in column_files.items()}
    return table.append_columns(batch)
