"""Per-column binary persistence and the ``COPY BINARY`` bulk-append path.

The paper's loader (Section 3.2) dumps each LAS attribute to "the binary
dump of a C-array" and appends those files to the flat table's columns with
MonetDB's ``COPY BINARY`` operator.  This module defines that on-disk
format — a tiny self-describing header followed by raw little-endian array
bytes — plus table-level save/load as one file per column, which is exactly
MonetDB's BAT-file layout.

File format (``.col``, version 2)::

    magic   4 bytes  b"RCOL"
    version u16      format version (2)
    type    u16      index into the type table (column.TYPE_MAP order)
    count   u64      number of values
    crc32   u32      CRC32 of header (crc field zeroed) + payload
    data    count * itemsize raw bytes, little endian

Version-1 files (no ``crc32`` field) are still read; new files are always
written as v2 through the atomic-write protocol of
:mod:`repro.engine.durable` (temp file + fsync + ``os.replace``), so a
crash mid-write leaves the previous file intact instead of a torn one.

Version 3 is the *compressed* generation of the format: a segmented
sequence of :class:`~repro.engine.compression.CompressedBlock` payloads
(see ``docs/compression.md`` for the exact layout).  It is written as a
``.colz`` **sidecar** next to each plain ``.col`` file — the plain file
stays the source of truth, the sidecar is the execution format the packed
select kernels scan.  A ``source_crc`` header field ties a sidecar to the
exact column payload it was encoded from, so a stale sidecar (column
rewritten, sidecar not yet) is detected and ignored rather than served.
:func:`load_array` reads all three generations; a corrupt sidecar is
quarantined (renamed ``*.quarantined``) and re-encoded from the plain
column, mirroring the imprint quarantine path.

A corrupted header, a short payload, or a checksum mismatch raises
:class:`StorageError` rather than yielding a truncated column; checksum
mismatches also increment the ``durability.checksum_failures`` counter.
"""

from __future__ import annotations

import dataclasses
import json
import struct
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np
from numpy.typing import NDArray

from . import durable
from .column import TYPE_MAP, Column
from .compressed import CompressedColumn
from .compression import CompressedBlock, CompressionError
from .table import Table

_MAGIC = b"RCOL"
_VERSION_V1 = 1
_VERSION = 2
_VERSION_V3 = 3
_HEADER_V1 = struct.Struct("<4sHHQ")
_HEADER = struct.Struct("<4sHHQI")
#: v3: magic, version, type, count, n_segments, segment_rows,
#: source_crc (crc32 of the plain column payload), file crc32 (last).
_HEADER_V3 = struct.Struct("<4sHHQIIII")
_PREFIX = struct.Struct("<4sH")  # magic + version, shared by all layouts
_TYPE_NAMES: List[str] = list(TYPE_MAP.keys())
_TYPE_CODES = {name: i for i, name in enumerate(_TYPE_NAMES)}

PathLike = Union[str, Path]


class StorageError(IOError):
    """Raised when a column or table file is missing, corrupt, or truncated."""


# -- raw array dumps (the loader's intermediate files) ----------------------


def dump_array(array: NDArray[Any], path: PathLike) -> int:
    """Write a 1-D numpy array as a ``.col`` file; returns bytes written.

    The write is atomic (see :mod:`repro.engine.durable`): readers see
    either the old file or the complete new one, never a torn hybrid.
    """
    array = np.ascontiguousarray(array)
    if array.ndim != 1:
        raise StorageError("only 1-D arrays are stored")
    type_name = {v: k for k, v in TYPE_MAP.items()}.get(array.dtype)
    if type_name is None:
        raise StorageError(f"unsupported dtype {array.dtype}")
    payload = array.astype(array.dtype.newbyteorder("<")).tobytes()
    # The CRC covers the header (with the CRC field zeroed) plus the
    # payload, so a bit flip anywhere in the file fails verification —
    # including type/count header bytes a payload-only CRC would miss.
    base = _HEADER.pack(_MAGIC, _VERSION, _TYPE_CODES[type_name], array.shape[0], 0)
    header = _HEADER.pack(
        _MAGIC,
        _VERSION,
        _TYPE_CODES[type_name],
        array.shape[0],
        durable.checksum(base + payload),
    )
    return durable.atomic_write_bytes(path, header + payload, label="col")


def _parse_header(raw: bytes, path: Path) -> Tuple[int, "np.dtype[Any]", int, Optional[int], int]:
    """(version, dtype, count, crc-or-None, payload offset) of a .col blob."""
    if len(raw) < _PREFIX.size:
        raise StorageError(f"{path}: truncated header")
    magic, version = _PREFIX.unpack(raw[: _PREFIX.size])
    if magic != _MAGIC:
        raise StorageError(f"{path}: bad magic {magic!r}")
    if version == _VERSION_V1:
        header = _HEADER_V1
        if len(raw) < header.size:
            raise StorageError(f"{path}: truncated header")
        _magic, _version, type_code, count = header.unpack(raw[: header.size])
        crc = None
    elif version == _VERSION:
        header = _HEADER
        if len(raw) < header.size:
            raise StorageError(f"{path}: truncated header")
        _magic, _version, type_code, count, crc = header.unpack(raw[: header.size])
    elif version == _VERSION_V3:
        header = _HEADER_V3
        if len(raw) < header.size:
            raise StorageError(f"{path}: truncated header")
        (_magic, _version, type_code, count, _n_seg, _seg_rows, _src_crc, crc) = (
            header.unpack(raw[: header.size])
        )
    else:
        raise StorageError(f"{path}: unsupported version {version}")
    if type_code >= len(_TYPE_NAMES):
        raise StorageError(f"{path}: unknown type code {type_code}")
    return version, TYPE_MAP[_TYPE_NAMES[type_code]], count, crc, header.size


def read_column_header(path: PathLike) -> Dict[str, object]:
    """Header fields of a ``.col`` file without loading the payload.

    Returns ``{"version", "type", "count", "checksummed"}``; raises
    :class:`StorageError` on anything that is not a column file.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            raw = fh.read(max(_HEADER.size, _HEADER_V3.size))
    except FileNotFoundError:
        raise StorageError(f"column file not found: {path}") from None
    version, dtype, count, crc, _offset = _parse_header(raw, path)
    type_name = {v: k for k, v in TYPE_MAP.items()}[dtype]
    return {
        "version": version,
        "type": type_name,
        "count": count,
        "checksummed": crc is not None,
    }


def load_array(path: PathLike) -> NDArray[Any]:
    """Read a ``.col`` file back into a numpy array.

    Verifies the embedded CRC32 for v2 files; a mismatch raises
    :class:`StorageError` and counts a ``durability.checksum_failures``.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise StorageError(f"column file not found: {path}") from None
    version, dtype, count, crc, offset = _parse_header(raw, path)
    if version == _VERSION_V3:
        # The compressed generation: decode the segments back to one
        # flat array (checksum verification happens in the parser).
        return _parse_compressed(raw, path, name=path.stem).decode_all()
    payload = raw[offset : offset + count * dtype.itemsize]
    if len(payload) != count * dtype.itemsize:
        raise StorageError(
            f"{path}: expected {count * dtype.itemsize} payload bytes, "
            f"got {len(payload)}"
        )
    if crc is None and len(raw) - offset != count * dtype.itemsize:
        # v1 has no checksum, so require an exact payload length: a v2
        # file whose version field was corrupted down to 1 would
        # otherwise parse with the payload shifted by the crc width.
        raise StorageError(
            f"{path}: v1 file has {len(raw) - offset} payload bytes, "
            f"expected exactly {count * dtype.itemsize}"
        )
    if crc is not None:
        # crc32 is the last header field; zero it out for verification.
        base = raw[: offset - 4] + b"\x00\x00\x00\x00"
        if durable.checksum(base + payload) != crc:
            durable.record_checksum_failure(path)
            raise StorageError(f"{path}: checksum mismatch")
    arr = np.frombuffer(payload, dtype=dtype.newbyteorder("<")).astype(dtype)
    return arr


# -- compressed sidecars (v3) ------------------------------------------------


def _frame_str(text: str) -> bytes:
    raw = text.encode()
    return len(raw).to_bytes(2, "little") + raw


def _read_frame_str(raw: bytes, pos: int, path: Path) -> Tuple[str, int]:
    if pos + 2 > len(raw):
        raise StorageError(f"{path}: truncated segment framing")
    n = int.from_bytes(raw[pos : pos + 2], "little")
    pos += 2
    if pos + n > len(raw):
        raise StorageError(f"{path}: truncated segment framing")
    try:
        return raw[pos : pos + n].decode(), pos + n
    except UnicodeDecodeError as exc:
        raise StorageError(f"{path}: corrupt segment framing ({exc})") from None


def column_payload_crc(array: NDArray[Any]) -> int:
    """CRC32 of a column's raw little-endian payload bytes — the value
    that links a ``.colz`` sidecar to the exact ``.col`` data it encodes."""
    array = np.ascontiguousarray(array)
    return durable.checksum(array.astype(array.dtype.newbyteorder("<")).tobytes())


def sidecar_path(directory: PathLike, column_name: str) -> Path:
    """Where a column's compressed sidecar lives inside a table dir."""
    return Path(directory) / f"{column_name}.colz"


def dump_compressed(packed: CompressedColumn, path: PathLike) -> int:
    """Write a :class:`CompressedColumn` as a v3 ``.colz`` file; returns
    bytes written.  Atomic, CRC-protected, like every durable write."""
    dtype = np.dtype(packed.dtype)
    type_name = {v: k for k, v in TYPE_MAP.items()}.get(dtype)
    if type_name is None:
        raise StorageError(f"unsupported dtype {packed.dtype}")
    body_parts: List[bytes] = []
    for block in packed.blocks:
        body_parts.append(_frame_str(block.scheme))
        body_parts.append(_frame_str(block.dtype))
        body_parts.append(block.count.to_bytes(8, "little"))
        if block.zmin is not None and block.zmax is not None:
            zone = np.ascontiguousarray(np.asarray([block.zmin, block.zmax]))
            body_parts.append(b"\x01")
            body_parts.append(_frame_str(zone.dtype.str))
            body_parts.append(zone.tobytes())
        else:
            body_parts.append(b"\x00")
        body_parts.append(len(block.payload).to_bytes(8, "little"))
        body_parts.append(block.payload)
    body = b"".join(body_parts)
    base = _HEADER_V3.pack(
        _MAGIC,
        _VERSION_V3,
        _TYPE_CODES[type_name],
        packed.n_rows,
        len(packed.blocks),
        packed.segment_rows,
        packed.source_crc,
        0,
    )
    header = _HEADER_V3.pack(
        _MAGIC,
        _VERSION_V3,
        _TYPE_CODES[type_name],
        packed.n_rows,
        len(packed.blocks),
        packed.segment_rows,
        packed.source_crc,
        durable.checksum(base + body),
    )
    return durable.atomic_write_bytes(path, header + body, label="colz")


def _parse_compressed(raw: bytes, path: Path, name: str) -> CompressedColumn:
    """Parse (and checksum-verify) a v3 blob into a CompressedColumn."""
    if len(raw) < _HEADER_V3.size:
        raise StorageError(f"{path}: truncated header")
    (magic, version, type_code, count, n_seg, seg_rows, src_crc, crc) = (
        _HEADER_V3.unpack(raw[: _HEADER_V3.size])
    )
    if magic != _MAGIC:
        raise StorageError(f"{path}: bad magic {magic!r}")
    if version != _VERSION_V3:
        raise StorageError(f"{path}: not a v3 compressed file (v{version})")
    if type_code >= len(_TYPE_NAMES):
        raise StorageError(f"{path}: unknown type code {type_code}")
    base = raw[: _HEADER_V3.size - 4] + b"\x00\x00\x00\x00"
    if durable.checksum(base + raw[_HEADER_V3.size :]) != crc:
        durable.record_checksum_failure(path)
        raise StorageError(f"{path}: checksum mismatch")
    pos = _HEADER_V3.size
    blocks: List[CompressedBlock] = []
    for _ in range(n_seg):
        scheme, pos = _read_frame_str(raw, pos, path)
        dtype_tag, pos = _read_frame_str(raw, pos, path)
        if pos + 8 > len(raw):
            raise StorageError(f"{path}: truncated segment header")
        seg_count = int.from_bytes(raw[pos : pos + 8], "little")
        pos += 8
        if pos + 1 > len(raw):
            raise StorageError(f"{path}: truncated segment header")
        has_zone = raw[pos]
        pos += 1
        zmin = zmax = None
        if has_zone:
            zone_tag, pos = _read_frame_str(raw, pos, path)
            try:
                zone_dtype = np.dtype(zone_tag)
            except TypeError as exc:
                raise StorageError(f"{path}: bad zone dtype ({exc})") from None
            zone_len = 2 * zone_dtype.itemsize
            if pos + zone_len > len(raw):
                raise StorageError(f"{path}: truncated zone map")
            zone = np.frombuffer(raw[pos : pos + zone_len], dtype=zone_dtype)
            zmin, zmax = zone[0], zone[1]
            pos += zone_len
        if pos + 8 > len(raw):
            raise StorageError(f"{path}: truncated segment header")
        payload_len = int.from_bytes(raw[pos : pos + 8], "little")
        pos += 8
        payload = raw[pos : pos + payload_len]
        if len(payload) != payload_len:
            raise StorageError(f"{path}: truncated segment payload")
        pos += payload_len
        blocks.append(
            CompressedBlock(scheme, dtype_tag, seg_count, payload, zmin, zmax)
        )
    dtype = TYPE_MAP[_TYPE_NAMES[type_code]]
    try:
        return CompressedColumn(
            name=name,
            dtype=dtype.str,
            segment_rows=seg_rows,
            n_rows=count,
            blocks=tuple(blocks),
            source_crc=src_crc,
        )
    except CompressionError as exc:
        raise StorageError(f"{path}: inconsistent segments ({exc})") from None


def load_compressed(path: PathLike, name: Optional[str] = None) -> CompressedColumn:
    """Read a ``.colz`` sidecar back; raises :class:`StorageError` on any
    corruption (the caller decides whether to quarantine)."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise StorageError(f"compressed sidecar not found: {path}") from None
    return _parse_compressed(raw, path, name=name or path.stem)


def _attach_sidecar(
    column: Column,
    values: NDArray[Any],
    path: Path,
    issues: Optional[List[str]],
) -> None:
    """Adopt a column's ``.colz`` sidecar if it is present and fresh.

    A corrupt sidecar is quarantined and the mirror re-encoded from the
    just-loaded source column (same contract as the imprint quarantine
    path: the plain data always wins, the derived artifact is rebuilt).
    A stale sidecar — row count or ``source_crc`` not matching the plain
    payload — is simply ignored; the next save rewrites it.
    """
    if not path.exists():
        return
    try:
        packed = load_compressed(path, name=column.name)
    except StorageError as exc:
        where = durable.quarantine_file(path, reason=str(exc))
        message = f"quarantined corrupt sidecar {path.name}: {exc}"
        warnings.warn(
            f"{message} (moved to {where.name})", RuntimeWarning, stacklevel=4
        )
        if issues is not None:
            issues.append(message)
        column.pack()
        return
    if packed.n_rows != values.shape[0] or (
        packed.source_crc and packed.source_crc != column_payload_crc(values)
    ):
        return
    column.adopt_packed(packed)


# -- column / table persistence ---------------------------------------------


def save_column(column: Column, path: PathLike) -> int:
    """Persist a column; returns bytes written."""
    return dump_array(np.asarray(column.values), path)


def load_column(name: str, path: PathLike) -> Column:
    """Load a column persisted with :func:`save_column`."""
    return Column.from_array(name, load_array(path))


def table_dir_layout(table: Table) -> Dict[str, str]:
    """Map column name -> file name used inside a table directory."""
    return {name: f"{name}.col" for name in table.column_names}


def save_table(
    table: Table, directory: PathLike, generation: Optional[int] = None
) -> int:
    """Persist a table as one ``.col`` file per column plus ``schema.json``.

    Column files are written first (each atomically); the table metadata
    goes last, so ``schema.json``'s row count is only ever updated once
    every column holding those rows is durable.  Returns total bytes
    written (excluding the schema file).

    ``generation`` (when given, i.e. on catalog-driven saves) is recorded
    in ``schema.json`` so a table directory is attributable to the
    catalog generation that wrote it — a crashed publish leaves some
    tables one generation ahead of the committed catalog, and the stamp
    makes that diagnosable from the wreckage alone.

    Columns with a compressed execution mirror also get a ``.colz``
    sidecar, written right after their ``.col`` file; an existing sidecar
    whose column has no live mirror is re-packed so the pair never
    drifts.  A crash between the two writes leaves a stale sidecar,
    which the ``source_crc`` check at load time ignores.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    total = 0
    for name, filename in table_dir_layout(table).items():
        column = table.column(name)
        total += save_column(column, directory / filename)
        durable.crash_point(
            "storage.table.column_saved", table=table.name, column=name
        )
        side = sidecar_path(directory, name)
        packed = column.packed
        if packed is None and side.exists():
            packed = column.pack()
        if packed is not None:
            crc = column_payload_crc(np.asarray(column.values))
            if packed.source_crc != crc:
                packed = dataclasses.replace(packed, source_crc=crc)
                column.adopt_packed(packed)
            total += dump_compressed(packed, side)
    meta: Dict[str, Any] = {
        "name": table.name,
        "schema": table.schema,
        "rows": len(table),
    }
    if generation is not None:
        meta["generation"] = generation
    durable.atomic_write_text(
        directory / "schema.json", json.dumps(meta, indent=2), label="schema"
    )
    return total


def load_table(
    directory: PathLike, sidecar_issues: Optional[List[str]] = None
) -> Table:
    """Load a table persisted with :func:`save_table` (strict).

    Any missing/corrupt column or row-count mismatch raises
    :class:`StorageError`; :func:`recover_table` is the tolerant variant
    used by crash recovery.  Compressed ``.colz`` sidecars are attached
    as execution mirrors when fresh; a *corrupt* sidecar never fails the
    load — it is quarantined, noted in ``sidecar_issues`` (when given),
    and re-encoded from the plain column.
    """
    directory = Path(directory)
    meta_path = directory / "schema.json"
    try:
        meta = json.loads(meta_path.read_text())
    except FileNotFoundError:
        raise StorageError(f"no table at {directory}") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(f"{meta_path}: corrupt table metadata ({exc})") from None
    table = Table(meta["name"], [tuple(pair) for pair in meta["schema"]])
    batch: Dict[str, NDArray[Any]] = {}
    for name, _type in table.schema:
        batch[name] = load_array(directory / f"{name}.col")
    lengths = {arr.shape[0] for arr in batch.values()}
    if len(lengths) > 1:
        # A crash mid-save leaves some columns one batch ahead; that is
        # a storage-level inconsistency (recover_table rolls it back),
        # not a schema error.
        raise StorageError(
            f"{directory}: ragged column files (lengths {sorted(lengths)})"
        )
    if batch:
        table.append_columns(batch)
    if len(table) != meta["rows"]:
        raise StorageError(
            f"{directory}: schema.json says {meta['rows']} rows, "
            f"column files hold {len(table)}"
        )
    for name, _type in table.schema:
        _attach_sidecar(
            table.column(name),
            batch[name],
            sidecar_path(directory, name),
            sidecar_issues,
        )
    return table


def recover_table(directory: PathLike) -> Tuple[Table, List[str]]:
    """Load a table, rolling back a torn tail instead of raising.

    The write protocol (columns first, ``schema.json`` last) means a
    crash mid-save can leave some column files one batch ahead of the
    committed metadata.  Recovery truncates every column to the shortest
    consistent prefix — ``min(schema rows, shortest column)`` — which is
    exactly the last committed state.  Returns ``(table, issues)`` where
    ``issues`` lists everything that was repaired.

    A missing/corrupt ``schema.json`` or a column that cannot be read at
    all (missing file, checksum failure) is not recoverable here and
    still raises :class:`StorageError`.
    """
    directory = Path(directory)
    meta_path = directory / "schema.json"
    try:
        meta = json.loads(meta_path.read_text())
    except FileNotFoundError:
        raise StorageError(f"no table at {directory}") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(f"{meta_path}: corrupt table metadata ({exc})") from None
    issues: List[str] = []
    table = Table(meta["name"], [tuple(pair) for pair in meta["schema"]])
    batch: Dict[str, NDArray[Any]] = {}
    for name, _type in table.schema:
        batch[name] = load_array(directory / f"{name}.col")
    target = int(meta["rows"])
    shortest = min((arr.shape[0] for arr in batch.values()), default=target)
    if shortest < target:
        issues.append(
            f"column files hold only {shortest} rows, metadata claims "
            f"{target}; rolled back to {shortest}"
        )
        target = shortest
    for name, arr in batch.items():
        if arr.shape[0] > target:
            issues.append(
                f"column {name!r}: torn tail of "
                f"{arr.shape[0] - target} rows rolled back"
            )
            batch[name] = arr[:target]
    if batch:
        table.append_columns(batch)
    for name, _type in table.schema:
        _attach_sidecar(
            table.column(name),
            batch[name],
            sidecar_path(directory, name),
            issues,
        )
    return table, issues


def verify_table(directory: PathLike) -> List[str]:
    """Check a table directory's on-disk artifacts; returns issues.

    An empty list means: metadata parses, every column file loads with a
    valid checksum, and all row counts agree.
    """
    directory = Path(directory)
    issues: List[str] = []
    meta_path = directory / "schema.json"
    try:
        meta = json.loads(meta_path.read_text())
    except FileNotFoundError:
        return [f"missing schema.json in {directory}"]
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        return [f"{meta_path}: corrupt table metadata ({exc})"]
    rows = meta.get("rows")
    for pair in meta.get("schema", []):
        name = pair[0]
        try:
            arr = load_array(directory / f"{name}.col")
        except StorageError as exc:
            issues.append(str(exc))
            continue
        if arr.shape[0] != rows:
            issues.append(
                f"{directory / (name + '.col')}: holds {arr.shape[0]} rows, "
                f"schema.json says {rows}"
            )
        issues.extend(_verify_sidecar(directory, name, arr))
    return issues


def _verify_sidecar(directory: Path, name: str, arr: NDArray[Any]) -> List[str]:
    """Issues with a column's ``.colz`` sidecar, if one exists: the file
    CRC must verify, every segment must decode, and the decoded values
    must equal the plain column exactly."""
    side = sidecar_path(directory, name)
    if not side.exists():
        return []
    try:
        packed = load_compressed(side, name=name)
    except StorageError as exc:
        return [str(exc)]
    if packed.n_rows != arr.shape[0]:
        return [
            f"{side}: stale sidecar ({packed.n_rows} rows, column holds "
            f"{arr.shape[0]})"
        ]
    if packed.source_crc and packed.source_crc != column_payload_crc(arr):
        return [f"{side}: stale sidecar (source checksum mismatch)"]
    try:
        decoded = packed.decode_all()
    except CompressionError as exc:
        return [f"{side}: undecodable segment ({exc})"]
    if not np.array_equal(decoded, arr):
        return [f"{side}: decoded values differ from {name}.col"]
    return []


def copy_binary(table: Table, column_files: Dict[str, PathLike]) -> int:
    """Append per-column binary dumps to a table (the ``COPY BINARY`` step).

    ``column_files`` maps every column of ``table`` to a ``.col`` dump file.
    All files must hold the same number of values.  Returns the first new
    oid, so callers can address the appended batch.
    """
    batch = {name: load_array(path) for name, path in column_files.items()}
    return table.append_columns(batch)
