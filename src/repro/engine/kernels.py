"""Predicate kernels that evaluate directly on compressed blocks.

This is the execution half of the compressed-execution design: given a
:class:`~repro.engine.compression.CompressedBlock`, produce the boolean
selection mask for a range or theta predicate *without* decompressing
rows that do not survive it.

Three levels of work avoidance, cheapest first:

1. :func:`zone_verdict` — the block's encode-time ``zmin``/``zmax``
   (free FOR header fields) decide SKIP / FULL / PROBE before any
   payload byte is read.  The same function classifies imprint segments
   in :mod:`repro.core.imprints.segments`, so the zone-map algebra has
   exactly one implementation.
2. Packed evaluation — on PROBE, FOR blocks translate the range bounds
   into the offset domain (:func:`repro.engine.compression.int_bounds`)
   and compare the stored-width packed words directly; dictionary and
   RLE blocks evaluate the predicate once per distinct value / run and
   broadcast the verdicts through codes / run lengths.
3. Late materialization — :func:`take` gathers only surviving rows, and
   only decodes what the gather needs (FOR: ``offsets[idx] + ref``;
   dict: ``uniques[codes[idx]]``; RLE: a ``searchsorted`` over run
   bounds).

Only ``delta_zlib`` blocks fall back to a full decode (deflate is not
random-access); :func:`range_mask` reports which path ran so callers can
attribute encoded vs. materialized bytes honestly.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

from .compression import (
    CompressedBlock,
    CompressionError,
    decode,
    dict_parts,
    for_parts,
    int_bounds,
    plain_view,
    rle_parts,
)

#: Zone-map verdicts, shared with the segmented imprints.
ZONE_SKIP = 0
ZONE_FULL = 1
ZONE_PROBE = 2

#: Above this magnitude float64 cannot represent every integer, so a
#: float-bound comparison through numpy promotion may disagree with
#: exact integer arithmetic; the FOR kernel decodes instead to stay
#: bit-identical with the uncompressed baseline.
_FLOAT_EXACT_LIMIT = 1 << 53


def zone_verdict(
    zmin: Any,
    zmax: Any,
    lo: Optional[Any],
    hi: Optional[Any],
    lo_inclusive: bool = True,
    hi_inclusive: bool = True,
) -> int:
    """Classify a value zone ``[zmin, zmax]`` against a range predicate.

    Returns :data:`ZONE_SKIP` (no row can match), :data:`ZONE_FULL`
    (every row matches), or :data:`ZONE_PROBE` (must look at the rows).
    NaN bounds in the zone compare false everywhere and land on PROBE,
    the always-safe verdict.
    """
    if lo is not None and (zmax < lo or (not lo_inclusive and zmax <= lo)):
        return ZONE_SKIP
    if hi is not None and (zmin > hi or (not hi_inclusive and zmin >= hi)):
        return ZONE_SKIP
    lo_full = lo is None or (zmin >= lo if lo_inclusive else zmin > lo)
    hi_full = hi is None or (zmax <= hi if hi_inclusive else zmax < hi)
    if lo_full and hi_full:
        return ZONE_FULL
    return ZONE_PROBE


def block_zone_verdict(
    block: CompressedBlock,
    lo: Optional[Any],
    hi: Optional[Any],
    lo_inclusive: bool = True,
    hi_inclusive: bool = True,
) -> int:
    """:func:`zone_verdict` from a block's encode-time header.

    Empty blocks SKIP; blocks without zone metadata (hand-built or
    pre-zone-map) PROBE.
    """
    if block.count == 0:
        return ZONE_SKIP
    if block.zmin is None or block.zmax is None:
        return ZONE_PROBE
    return zone_verdict(block.zmin, block.zmax, lo, hi, lo_inclusive, hi_inclusive)


def _is_float_bound(bound: Optional[Any]) -> bool:
    return isinstance(bound, (float, np.floating))


def _for_needs_decode(
    block: CompressedBlock, lo: Optional[Any], hi: Optional[Any]
) -> bool:
    """Exact integer bound translation can disagree with the numpy
    float-promotion baseline once values leave float64's exact-integer
    range; decode there so packed results stay bit-identical.  (This
    covers integral float bounds too: numpy compares int64 against any
    float constant in float64, rounding the *values*.)"""
    if not (_is_float_bound(lo) or _is_float_bound(hi)):
        return False
    if block.zmin is None or block.zmax is None:
        return True
    return (
        abs(int(block.zmin)) > _FLOAT_EXACT_LIMIT
        or abs(int(block.zmax)) > _FLOAT_EXACT_LIMIT
    )


def _bounds_mask(
    values: NDArray[Any],
    lo: Optional[Any],
    hi: Optional[Any],
    lo_inclusive: bool,
    hi_inclusive: bool,
) -> NDArray[np.bool_]:
    """The baseline numpy evaluation of a range predicate (used on
    small domains: dictionary entries, run values, decoded rows)."""
    mask = np.ones(values.shape[0], dtype=bool)
    if lo is not None:
        mask &= values >= lo if lo_inclusive else values > lo
    if hi is not None:
        mask &= values <= hi if hi_inclusive else values < hi
    return mask


def _for_range_mask(
    block: CompressedBlock,
    lo: Optional[Any],
    hi: Optional[Any],
    lo_inclusive: bool,
    hi_inclusive: bool,
) -> NDArray[np.bool_]:
    """Range predicate as a pure integer compare on packed FOR words."""
    reference, offsets = for_parts(block)
    n = offsets.shape[0]
    L, U = int_bounds(lo, hi, lo_inclusive, hi_inclusive)
    if L is not None and U is not None and L > U:
        return np.zeros(n, dtype=bool)
    if block.zmax is not None:
        span = int(block.zmax) - reference
    else:
        span = int(offsets.max()) if n else 0
    mask: Optional[NDArray[np.bool_]] = None
    if L is not None and L > reference:
        lo_off = L - reference
        if lo_off > span:
            return np.zeros(n, dtype=bool)
        mask = offsets >= offsets.dtype.type(lo_off)
    if U is not None and U < reference + span:
        if U < reference:
            return np.zeros(n, dtype=bool)
        hi_mask = offsets <= offsets.dtype.type(U - reference)
        mask = hi_mask if mask is None else mask & hi_mask
    if mask is None:
        return np.ones(n, dtype=bool)
    return mask


def range_mask(
    block: CompressedBlock,
    lo: Optional[Any],
    hi: Optional[Any],
    lo_inclusive: bool = True,
    hi_inclusive: bool = True,
) -> Tuple[NDArray[np.bool_], bool]:
    """Selection mask of ``lo <(=) value <(=) hi`` over one block.

    Returns ``(mask, packed)`` where ``packed`` is True when the
    predicate was evaluated on the encoded representation without
    decoding the column (everything but ``delta_zlib`` and the rare FOR
    float-parity fallback).
    """
    if block.count == 0:
        return np.zeros(0, dtype=bool), True
    if block.scheme == "for" and not _for_needs_decode(block, lo, hi):
        return _for_range_mask(block, lo, hi, lo_inclusive, hi_inclusive), True
    if block.scheme == "dict":
        uniques, codes = dict_parts(block)
        umask = _bounds_mask(uniques, lo, hi, lo_inclusive, hi_inclusive)
        return umask[codes], True
    if block.scheme == "rle":
        run_values, run_lengths = rle_parts(block)
        rmask = _bounds_mask(run_values, lo, hi, lo_inclusive, hi_inclusive)
        return np.repeat(rmask, run_lengths), True
    if block.scheme == "plain":
        view = plain_view(block)
        return _bounds_mask(view, lo, hi, lo_inclusive, hi_inclusive), True
    values = decode(block)
    return _bounds_mask(values, lo, hi, lo_inclusive, hi_inclusive), False


def theta_mask(
    block: CompressedBlock, op: str, constant: Any
) -> Tuple[NDArray[np.bool_], bool]:
    """Selection mask of ``value <op> constant`` over one block.

    Every comparison reduces to a range probe on the packed words
    (``==`` is the degenerate range ``[c, c]``; ``!=`` its complement),
    so the packed fast paths cover all six operators.
    """
    if op == "==":
        return range_mask(block, constant, constant, True, True)
    if op == "!=":
        mask, packed = range_mask(block, constant, constant, True, True)
        return ~mask, packed
    if op == "<":
        return range_mask(block, None, constant, True, False)
    if op == "<=":
        return range_mask(block, None, constant, True, True)
    if op == ">":
        return range_mask(block, constant, None, False, True)
    if op == ">=":
        return range_mask(block, constant, None, True, True)
    raise CompressionError(f"unsupported theta operator {op!r}")


def take(block: CompressedBlock, idx: NDArray[Any]) -> NDArray[Any]:
    """Materialize only the rows at ``idx`` (block-local positions).

    This is the late-materialization gather: survivors of a packed
    predicate are decoded individually instead of round-tripping the
    whole block.
    """
    dtype = np.dtype(block.dtype)
    if idx.shape[0] == 0:
        return np.empty(0, dtype=dtype)
    if block.scheme == "for":
        reference, offsets = for_parts(block)
        picked = offsets[idx].astype(np.uint64) + np.uint64(
            reference & 0xFFFFFFFFFFFFFFFF
        )
        return picked.astype(dtype)
    if block.scheme == "dict":
        uniques, codes = dict_parts(block)
        out: NDArray[Any] = uniques[codes[idx]]
        return out.astype(dtype)
    if block.scheme == "rle":
        run_values, run_lengths = rle_parts(block)
        stops = np.cumsum(run_lengths)
        picked_rle: NDArray[Any] = run_values[np.searchsorted(stops, idx, side="right")]
        return picked_rle.astype(dtype)
    if block.scheme == "plain":
        view = plain_view(block)
        return view[idx].astype(dtype)
    return decode(block)[idx]


def scan_bytes(block: CompressedBlock, packed: bool) -> int:
    """Bytes a predicate evaluation actually moved over this block:
    the encoded payload for packed evaluation, the materialized array
    for a decode fallback."""
    return block.nbytes if packed else block.plain_nbytes


def materialize_bytes(idx_count: int, dtype: str) -> int:
    """Bytes a late-materialization gather of ``idx_count`` survivors
    produces."""
    return idx_count * np.dtype(dtype).itemsize


__all__ = [
    "ZONE_SKIP",
    "ZONE_FULL",
    "ZONE_PROBE",
    "zone_verdict",
    "block_zone_verdict",
    "range_mask",
    "theta_mask",
    "take",
    "scan_bytes",
    "materialize_bytes",
]
