"""Candidate-list select operators.

MonetDB's operator-at-a-time execution threads *candidate lists* (sorted
arrays of row ids) between operators: each select consumes the previous
operator's candidates and returns the surviving subset.  These functions are
the engine's scan-based selects; the imprints index in
:mod:`repro.core.imprints` produces the same candidate-list contract, so the
two are interchangeable in query plans (which is exactly how the paper swaps
a full scan for an index probe).

When a column carries a compressed execution mirror
(:attr:`~repro.engine.column.Column.packed`) and the select starts from the
full column (no candidate list), the predicate runs on the *encoded*
segments instead — zone-map pruning, then packed kernels, decoding nothing
that does not survive (see :mod:`repro.engine.kernels`).  The result is
bit-identical to the plain scan; the span reports ``encoded_bytes`` vs.
``materialized_bytes`` so ``EXPLAIN ANALYZE`` shows which bytes each
operator really moved.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

from ..obs import heat as _heat
from ..obs import resources
from ..obs.metrics import get_registry
from ..obs.trace import maybe_span
from . import parallel
from .column import Column
from .compressed import CompressedColumn, ScanStats

#: Comparison operators accepted by :func:`theta_select`.
_THETA_OPS: Dict[str, Callable[[NDArray[Any], object], NDArray[Any]]] = {
    "==": lambda v, c: v == c,
    "!=": lambda v, c: v != c,
    "<": lambda v, c: v < c,
    "<=": lambda v, c: v <= c,
    ">": lambda v, c: v > c,
    ">=": lambda v, c: v >= c,
}


def _as_candidates(mask: NDArray[Any], candidates: Optional[NDArray[Any]]) -> NDArray[Any]:
    """Turn a boolean mask (over values or candidates) into a candidate list."""
    hits = np.flatnonzero(mask)
    if candidates is None:
        return hits.astype(np.int64)
    return candidates[hits]


def _account_touched(column: Column, vals: NDArray[Any]) -> None:
    """Credit a scan's actual data volume to the active resource tracker.

    Post-candidate-list, so an imprint-filtered select reports the small
    read the index earned it, not the column size.  One thread-local
    read when no tracker is open.
    """
    tracker = resources.current()
    if tracker is not None:
        tracker.add_touched(
            rows=int(vals.shape[0]), nbytes=int(vals.nbytes)
        )
        # Plain scans materialize everything they touch.
        tracker.add_scan_bytes(materialized=int(vals.nbytes))
    heat = _heat.maybe_heat()
    if heat is not None:
        # An unsegmented plain scan: heat's whole-column pseudo-segment.
        heat.record_scan(
            column.name, probed=[(-1, 0, int(vals.nbytes))]
        )


def _numeric_bound(bound: object) -> bool:
    """Only numeric predicates may take the packed path — the zone-map
    algebra compares against ``zmin``/``zmax`` with Python operators, so
    exotic constants stay on the plain numpy scan."""
    return bound is None or isinstance(bound, (bool, int, float, np.number, np.bool_))


def _packed_for(
    column: Column, candidates: Optional[NDArray[Any]], *bounds: object
) -> Optional[CompressedColumn]:
    """The column's compressed mirror, when this select can use it."""
    if candidates is not None:
        return None
    if not all(_numeric_bound(b) for b in bounds):
        return None
    return column.packed


def _account_packed(packed: CompressedColumn, stats: ScanStats, span: Any) -> None:
    """Credit a packed select: probed rows and the bytes actually moved
    (encoded payloads for packed probes, decoded arrays for fallbacks).
    Zone-map skips and wholesale accepts cost zero bytes, same as the
    imprint accounting."""
    tracker = resources.current()
    touched = stats.encoded_bytes + stats.materialized_bytes
    if tracker is not None and stats.rows_in:
        tracker.add_touched(rows=int(stats.rows_in), nbytes=int(touched))
        tracker.add_scan_bytes(
            encoded=int(stats.encoded_bytes),
            materialized=int(stats.materialized_bytes),
        )
    saved = packed.plain_nbytes - touched
    if saved > 0:
        get_registry().counter("compression.materialized_bytes_saved").inc(saved)
    span.set(
        rows_in=packed.n_rows,
        rows_out=stats.rows_out,
        segments_skipped=stats.segments_skipped,
        segments_full=stats.segments_full,
        segments_probed=stats.segments_probed,
        encoded_bytes=stats.encoded_bytes,
        materialized_bytes=stats.materialized_bytes,
    )


def _morsel_mask(
    vals: NDArray[Any],
    kernel: Callable[[NDArray[Any]], NDArray[Any]],
    threads: Optional[int],
) -> NDArray[Any]:
    """Evaluate a boolean kernel over ``vals``, morsel-parallel when useful.

    Each morsel writes its disjoint slice of one preallocated mask, so the
    result is bit-identical to the serial evaluation whatever the worker
    interleaving.
    """
    n = vals.shape[0]
    n_threads = parallel.resolve_threads(threads)
    if n_threads <= 1 or n < 2 * parallel.MIN_PARALLEL_ROWS:
        return kernel(vals)
    mask = np.empty(n, dtype=bool)

    def scan(span: Tuple[int, int]) -> None:
        start, stop = span
        mask[start:stop] = kernel(vals[start:stop])

    parallel.run_tasks(scan, parallel.morsels(n), threads=n_threads)
    return mask


def theta_select(
    column: Column,
    op: str,
    constant: object,
    candidates: Optional[NDArray[Any]] = None,
    threads: Optional[int] = None,
) -> NDArray[Any]:
    """Rows where ``column <op> constant`` holds, as a sorted oid array.

    When ``candidates`` is given, only those rows are inspected and the
    result is a subset of them (preserving order).  ``threads`` fans the
    comparison out over morsels (``1`` = the exact serial path).
    """
    try:
        fn = _THETA_OPS[op]
    except KeyError:
        raise ValueError(f"unknown theta operator {op!r}") from None
    with maybe_span("select.theta", column=column.name, op=op) as span:
        packed = _packed_for(column, candidates, constant)
        if packed is not None:
            stats = ScanStats()
            result = packed.theta_select(op, constant, threads=threads, stats=stats)
            _account_packed(packed, stats, span)
            return result
        vals = column.values if candidates is None else column.take(candidates)
        _account_touched(column, vals)
        mask = _morsel_mask(vals, lambda part: fn(part, constant), threads)
        result = _as_candidates(mask, candidates)
        span.set(
            rows_in=int(vals.shape[0]),
            rows_out=int(result.shape[0]),
            encoded_bytes=0,
            materialized_bytes=int(vals.nbytes),
        )
    return result


def range_select(
    column: Column,
    lo: Optional[Any],
    hi: Optional[Any],
    lo_inclusive: bool = True,
    hi_inclusive: bool = True,
    candidates: Optional[NDArray[Any]] = None,
    threads: Optional[int] = None,
) -> NDArray[Any]:
    """Rows with ``lo <(=) column <(=) hi`` as a sorted oid array.

    Either bound may be ``None`` for a half-open range.  This is the scan
    equivalent of an imprints probe and is used both as the fallback path
    and as the exactness reference in tests.  ``threads`` splits the scan
    into morsels across the worker pool (``1`` = the exact serial path);
    the reassembled result is identical either way.
    """
    with maybe_span("select.range", column=column.name) as span:
        packed = _packed_for(column, candidates, lo, hi)
        if packed is not None:
            stats = ScanStats()
            result = packed.range_select(
                lo, hi, lo_inclusive, hi_inclusive, threads=threads, stats=stats
            )
            _account_packed(packed, stats, span)
            return result
        vals = column.values if candidates is None else column.take(candidates)
        _account_touched(column, vals)

        def kernel(part: NDArray[Any]) -> NDArray[Any]:
            mask = np.ones(part.shape[0], dtype=bool)
            if lo is not None:
                mask &= (part >= lo) if lo_inclusive else (part > lo)
            if hi is not None:
                mask &= (part <= hi) if hi_inclusive else (part < hi)
            return mask

        result = _as_candidates(_morsel_mask(vals, kernel, threads), candidates)
        span.set(
            rows_in=int(vals.shape[0]),
            rows_out=int(result.shape[0]),
            encoded_bytes=0,
            materialized_bytes=int(vals.nbytes),
        )
    return result


def mask_select(
    mask: NDArray[Any], candidates: Optional[NDArray[Any]] = None
) -> NDArray[Any]:
    """Candidate list from a caller-computed boolean mask.

    The mask is over the full column when ``candidates`` is ``None`` and
    over the candidate rows otherwise.
    """
    return _as_candidates(np.asarray(mask, dtype=bool), candidates)


def intersect_candidates(a: NDArray[Any], b: NDArray[Any]) -> NDArray[Any]:
    """Intersection of two sorted candidate lists (both remain sorted)."""
    return np.intersect1d(a, b, assume_unique=True)


def union_candidates(a: NDArray[Any], b: NDArray[Any]) -> NDArray[Any]:
    """Union of two sorted candidate lists."""
    return np.union1d(a, b)


def difference_candidates(a: NDArray[Any], b: NDArray[Any]) -> NDArray[Any]:
    """Candidates in ``a`` but not in ``b`` (both sorted unique)."""
    return np.setdiff1d(a, b, assume_unique=True)
