"""Morsel-driven parallel execution for the scan/probe hot path.

HyPer-style morsel-driven parallelism (Leis et al., SIGMOD 2014) splits a
column into fixed-size row ranges ("morsels") and lets a pool of workers
pull them off a shared queue.  The kernels this engine runs per morsel —
numpy comparisons, gathers, bitwise ops — all release the GIL, so plain
threads scale them across cores without any serialisation of the data.

Three pieces live here:

* a **shared, lazily created** :class:`~concurrent.futures.ThreadPoolExecutor`
  (one per process, sized to the machine; creating pools per query would
  dwarf the work being parallelised),
* :func:`morsels`, the splitter that aligns morsel boundaries to a
  requested granularity (imprint cache lines, segment rows), and
* :func:`run_tasks`, the scheduler: evaluate ``fn`` over a task list with
  at most ``threads`` workers, returning results **in task order** so that
  concatenated per-morsel outputs are bit-identical to a serial run.

``threads=1`` never touches the pool — it is the exact serial path.
"""

from __future__ import annotations

import contextvars
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..obs import queries as _queries
from ..obs import resources as _resources
from ..obs import trace as _trace
from ..obs.metrics import get_registry

T = TypeVar("T")
R = TypeVar("R")

#: Default morsel granularity in rows.  Large enough that per-task Python
#: overhead is noise next to the numpy kernel, small enough that a column
#: of a few hundred thousand rows still splits across every core.
MORSEL_ROWS = 64 * 1024

#: Below this many rows a scan is not worth fanning out at all.
MIN_PARALLEL_ROWS = 32 * 1024

_pool: Optional[ThreadPoolExecutor] = None
_pool_lock = threading.Lock()


def hardware_threads() -> int:
    """Usable hardware threads (affinity-aware where the OS exposes it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_threads() -> int:
    """The engine-wide default worker count.

    ``REPRO_THREADS`` overrides the hardware count, which is how the
    benches pin the serial baseline without code changes.
    """
    env = os.environ.get("REPRO_THREADS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return hardware_threads()


def resolve_threads(threads: Optional[int]) -> int:
    """Normalise a ``threads=`` knob: ``None``/``0`` mean the default."""
    if threads is None or threads <= 0:
        return default_threads()
    return max(1, int(threads))


def get_pool() -> ThreadPoolExecutor:
    """The process-wide worker pool, created on first parallel call."""
    global _pool
    if _pool is None:
        with _pool_lock:
            if _pool is None:
                # Sized above the core count so an explicit threads=N above
                # it (correctness sweeps, IO-ish workloads) still gets N
                # concurrent workers; idle threads cost nothing.
                _pool = ThreadPoolExecutor(
                    max_workers=max(8, 2 * hardware_threads()),
                    thread_name_prefix="repro-morsel",
                )
    return _pool


def morsels(
    n_rows: int, morsel_rows: int = MORSEL_ROWS, align: int = 1
) -> List[Tuple[int, int]]:
    """Split ``[0, n_rows)`` into ``(start, stop)`` morsels.

    ``align`` forces every boundary except the last onto a multiple (an
    imprint cache line, a segment border), so per-morsel index probes see
    whole units.
    """
    if n_rows <= 0:
        return []
    align = max(1, align)
    size = max(align, (morsel_rows // align) * align)
    return [(start, min(start + size, n_rows)) for start in range(0, n_rows, size)]


def run_tasks(
    fn: Callable[[T], R], tasks: Sequence[T], threads: Optional[int] = None
) -> List[R]:
    """Evaluate ``fn`` over ``tasks`` with at most ``threads`` workers.

    Results come back in task order whatever the completion order, so
    callers can concatenate per-morsel arrays and get exactly the serial
    answer.  With one worker (or one task) the pool is bypassed entirely.

    With tracing enabled each task gets its own ``parallel.task`` span,
    parented to the span that was open when ``run_tasks`` was called —
    worker threads do not inherit the caller's span stack, so the parent
    is handed over explicitly.  Tracing off adds one boolean check.

    Workers run inside a copy of the submitting thread's
    :mod:`contextvars` context, so the caller's
    :class:`~repro.obs.context.ObsContext` and active
    :class:`~repro.obs.queries.ActiveQuery` resolve identically on the
    workers: per-worker spans land in the submitting query's trace, and
    cooperative deadline checks (one per morsel, before each task) see
    the query's deadline.
    """
    tasks = list(tasks)
    n_workers = min(resolve_threads(threads), len(tasks))
    tracer = _trace.get_tracer()
    recording = tracer.enabled
    parent = tracer.current() if recording else None
    # Same hand-over as the span parent: worker threads have their own
    # (empty) tracker stacks, so the caller's active resource tracker is
    # captured here and credited explicitly from each worker.
    tracker = _resources.current()
    if recording and tasks:
        get_registry().counter("parallel.tasks").inc(len(tasks))

    def run_one(i: int) -> R:
        _queries.check_deadline()
        if recording:
            with tracer.span("parallel.task", parent=parent) as span:
                span.set(index=i)
                return fn(tasks[i])
        return fn(tasks[i])

    if n_workers <= 1:
        # Serial path: the tasks run on the caller's thread, whose CPU
        # the tracker already measures — adding it again would double
        # count, so no attribution here.
        return [run_one(i) for i in range(len(tasks))]

    results: List[R] = [None] * len(tasks)  # type: ignore[list-item]
    errors: List[BaseException] = []
    cursor = iter(range(len(tasks)))
    cursor_lock = threading.Lock()

    def worker() -> None:
        # Morsel-driven: each worker pulls the next unclaimed task until
        # the queue drains, so skewed task costs self-balance.  One CPU
        # reading per worker (not per task): thread_time is a syscall,
        # and the delta over the whole drain is the same sum.
        cpu0 = _resources.thread_cpu() if tracker is not None else 0.0
        # Contextvars propagate into the worker (we run inside a copy of
        # the caller's context), but the profiler samples *threads* — so
        # each worker also registers in the registry's thread map for
        # the duration of the drain.  Pool threads are reused across
        # queries, which makes the unbind mandatory.
        registry = _queries.get_queries()
        active = _queries.current_query()
        if active is not None:
            registry.bind_thread(active)
        try:
            _drain()
        finally:
            if active is not None:
                registry.unbind_thread()
            if tracker is not None:
                tracker.add_cpu(_resources.thread_cpu() - cpu0)

    def _drain() -> None:
        while True:
            with cursor_lock:
                if errors:
                    return
                try:
                    i = next(cursor)
                except StopIteration:
                    return
            try:
                results[i] = run_one(i)
            except BaseException as exc:
                # Deliberately broad, and baselined for repro-check's
                # crash-transparency rule: the exception (InjectedCrash
                # included) is stashed and re-raised on the *caller's*
                # thread below — a raise here would vanish into the pool.
                with cursor_lock:
                    errors.append(exc)
                return

    pool = get_pool()
    # Each worker enters its own copy of the caller's context (a single
    # contextvars.Context cannot be active on two threads at once).
    caller_ctx = contextvars.copy_context()
    futures = [
        pool.submit(caller_ctx.copy().run, worker) for _ in range(n_workers)
    ]
    for future in futures:
        future.result()
    if errors:
        raise errors[0]
    return results
