"""Command-line interface: the demo's console.

The VLDB demo drove everything through QGIS; a downstream user of this
library gets a CLI instead::

    repro-gis generate --points 100000 --out tiles/        # synthetic AHN2
    repro-gis info tiles/                                   # header summary
    repro-gis load tiles/ --db farm/                        # binary loader
    repro-gis load tiles/ --db farm/ --resume               # resume a crashed load
    repro-gis verify farm/ [--repair]                       # checksums + health
    repro-gis query farm/ --wkt 'POLYGON ((...))'           # spatial select
    repro-gis sql farm/ 'SELECT count(*) FROM points'       # ad-hoc SQL
    repro-gis sort tile.las sorted.las --curve hilbert      # lassort
    repro-gis index tiles/                                  # lasindex
    repro-gis render tiles/ out.ppm                         # figure 1 style
    repro-gis serve farm/ --port 8472                       # query daemon
    repro-gis serve-metrics farm/ --port 9464               # OpenMetrics endpoint
    repro-gis slowlog farm/slow-query.jsonl                 # slow-query records
    repro-gis profile farm/ --sql 'SELECT ...'              # CPU flame profile
    repro-gis heat farm/ [--hints]                          # workload heat map
    repro-gis check [--format json]                         # invariant linter

Every subcommand is a thin shell over the library; the functions return
exit codes and print plain text, so they stay unit-testable.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from pathlib import Path
from typing import List, Optional

import numpy as np


def _cmd_generate(args: argparse.Namespace) -> int:
    from .datasets.lidar import generate_points, make_scene, write_cloud_tiles
    from .gis.envelope import Box

    extent = Box(*args.extent)
    scene = make_scene(extent, seed=args.seed)
    cloud = generate_points(scene, args.points, seed=args.seed)
    paths = write_cloud_tiles(
        args.out, cloud, extent, args.tiles, args.tiles, compressed=args.laz
    )
    print(f"wrote {len(paths)} tiles ({args.points} points) to {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .las.reader import read_header

    directory = Path(args.tiles)
    paths = sorted(
        p for p in directory.iterdir() if p.suffix.lower() in (".las", ".laz")
    )
    if not paths:
        print(f"no LAS/LAZ files under {directory}", file=sys.stderr)
        return 1
    total = 0
    min_x = min_y = float("inf")
    max_x = max_y = float("-inf")
    for path in paths:
        header = read_header(path)
        total += header.n_points
        min_x = min(min_x, header.min_xyz[0])
        min_y = min(min_y, header.min_xyz[1])
        max_x = max(max_x, header.max_xyz[0])
        max_y = max(max_y, header.max_xyz[1])
        print(
            f"{path.name}: fmt={header.point_format} n={header.n_points} "
            f"bbox=({header.min_xyz[0]:.2f}, {header.min_xyz[1]:.2f}) - "
            f"({header.max_xyz[0]:.2f}, {header.max_xyz[1]:.2f})"
        )
    print(f"total: {len(paths)} files, {total} points")
    if args.wgs84:
        from .gis.crs import rd_to_wgs84

        lat_lo, lon_lo = rd_to_wgs84(min_x, min_y)
        lat_hi, lon_hi = rd_to_wgs84(max_x, max_y)
        print(
            f"WGS84 bounds (coords read as RD New): "
            f"({float(lat_lo):.5f}, {float(lon_lo):.5f}) - "
            f"({float(lat_hi):.5f}, {float(lon_hi):.5f})"
        )
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    from .las.ingest import ResumableIngest

    directory = Path(args.tiles)
    paths = sorted(
        p for p in directory.iterdir() if p.suffix.lower() in (".las", ".laz")
    )
    if not paths:
        print(f"no LAS/LAZ files under {directory}", file=sys.stderr)
        return 1
    ingest = ResumableIngest(
        args.db,
        table=args.table,
        checkpoint_every=args.checkpoint_every,
        retries=args.retries,
    )
    _db, stats = ingest.load(paths, resume=args.resume)
    extras = []
    if stats.n_skipped:
        extras.append(f"{stats.n_skipped} tiles already loaded (skipped)")
    if stats.n_rows_rolled_back:
        extras.append(f"{stats.n_rows_rolled_back} torn rows rolled back")
    print(
        f"loaded {stats.n_points} points from {stats.n_files} files in "
        f"{stats.seconds:.3f}s ({stats.points_per_second:,.0f} pts/s); "
        f"database saved to {args.db}"
        + ("".join(f"; {extra}" for extra in extras))
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Exit 0 iff the store verifies clean — the contract CI, the
    daemon's health probe and scripts rely on (locked by tests)."""
    import json

    from .api import PointCloudDB

    repaired: List[str] = []
    if args.repair:
        db = PointCloudDB.recover(args.db)
        for name, health in sorted(db.health.items()):
            for issue in health["issues"]:
                repaired.append(f"{name}: {issue}")
                if not args.json:
                    print(f"repaired {name}: {issue}")
        for path in db.manager.quarantined:
            repaired.append(f"quarantined imprint: {path}")
            if not args.json:
                print(f"quarantined imprint: {path}")
    else:
        db = PointCloudDB(directory=args.db)
    report = db.verify()
    if args.json:
        if args.repair:
            report["repaired"] = repaired
        print(json.dumps(report, indent=2))
        return 0 if report["ok"] else 1
    if "error" in report:
        print(f"error: {report['error']}", file=sys.stderr)
        return 1
    for name, entry in sorted(report["tables"].items()):
        status = "ok" if entry["ok"] else "CORRUPT"
        print(f"table {name}: {status}")
        for issue in entry["issues"]:
            print(f"  - {issue}")
    imprints = report["imprints"]
    print(f"imprints: {'ok' if imprints['ok'] else 'CORRUPT'}")
    for issue in imprints["issues"]:
        print(f"  - {issue}")
    print(f"verify: {'OK' if report['ok'] else 'FAILED'}")
    return 0 if report["ok"] else 1


def _cmd_compress(args: argparse.Namespace) -> int:
    from .api import PointCloudDB

    db = PointCloudDB.load(args.db)
    columns = args.columns.split(",") if args.columns else None
    names = [args.table] if args.table else None
    report = {}
    for name in names or db.db.table_names:
        report.update(db.compress(name, columns=columns, scheme=args.scheme))
    db.save()
    for table_name, per_column in sorted(report.items()):
        print(f"table {table_name}:")
        for column, entry in per_column.items():
            schemes = ",".join(
                f"{s}x{n}" for s, n in sorted(entry["schemes"].items())
            )
            nbytes = int(entry["nbytes"])
            plain = int(entry["plain_nbytes"])
            ratio = nbytes / plain if plain else 1.0
            print(
                f"  {column}: {schemes}  {nbytes:,} / {plain:,} bytes "
                f"({ratio:.2f}x)"
            )
    return 0


def _open_db(db_dir: str, threads: Optional[int] = None):
    from .api import PointCloudDB

    return PointCloudDB.load(db_dir, threads=threads)


def _cmd_query(args: argparse.Namespace) -> int:
    from .gis.wkt import loads

    from .obs.queries import QueryCancelled

    db = _open_db(args.db, threads=args.threads)
    geometry = loads(args.wkt)
    start = time.perf_counter()
    try:
        result = db.spatial_select(
            args.table,
            geometry,
            predicate=args.predicate,
            distance=args.distance,
            timeout_s=args.timeout,
        )
    except QueryCancelled as exc:
        print(f"cancelled: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    print(f"{len(result)} points in {elapsed * 1e3:.2f} ms")
    stats = result.stats
    selectivity = stats.filter_selectivity
    sel_text = (
        "-" if selectivity != selectivity  # NaN: empty table
        else f"{selectivity * 100:.2f}%"
    )
    print(
        f"filter: {stats.n_filter_candidates} candidates "
        f"({sel_text} of {stats.n_rows} rows); "
        f"segments: {stats.n_segments_skipped} zone-map skips, "
        f"{stats.n_segments_probed} probed; "
        f"refine: {stats.refine_stats.boundary_cells} boundary cells; "
        f"threads: {stats.n_threads}"
    )
    if args.show:
        table = db.table(args.table)
        for oid in result.oids[: args.show]:
            x, y, z = (
                table.column("x").values[oid],
                table.column("y").values[oid],
                table.column("z").values[oid],
            )
            print(f"  ({x:.2f}, {y:.2f}, {z:.2f})")
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    from .obs.queries import QueryCancelled

    db = _open_db(args.db, threads=args.threads)
    if args.explain:
        print(db.explain(args.query))
        return 0
    if args.analyze:
        print(db.explain_analyze(args.query))
        return 0
    start = time.perf_counter()
    try:
        result = db.sql(args.query, timeout_s=args.timeout)
    except QueryCancelled as exc:
        print(f"cancelled: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    print("  ".join(result.columns))
    for row in result.rows[: args.limit]:
        print("  ".join(str(v) for v in row))
    if len(result.rows) > args.limit:
        print(f"... {len(result.rows) - args.limit} more rows")
    print(f"({len(result.rows)} rows in {elapsed * 1e3:.2f} ms)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .obs.metrics import get_registry
    from .obs.trace import get_tracer, to_chrome, to_json

    if not args.sql and not args.wkt:
        print("trace: need --sql or --wkt", file=sys.stderr)
        return 1

    tracer = get_tracer()
    tracer.enable()
    db = _open_db(args.db, threads=args.threads)
    if args.sql:
        result = db.sql(args.sql)
        print(f"query returned {len(result.rows)} rows", file=sys.stderr)
    else:
        from .gis.wkt import loads

        geometry = loads(args.wkt)
        result = db.spatial_select(
            args.table, geometry, predicate=args.predicate, distance=args.distance
        )
        print(f"query returned {len(result)} points", file=sys.stderr)

    spans = (
        tracer.last_traces(args.last) if args.last is not None else tracer.spans()
    )
    exported = to_chrome(spans) if args.export == "chrome" else to_json(spans)
    if args.out:
        Path(args.out).write_text(exported)
        print(f"wrote {len(spans)} spans to {args.out}", file=sys.stderr)
    else:
        print(exported)
    if args.metrics:
        print(json.dumps(get_registry().snapshot(), indent=2), file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Sample a query under the profiler; export collapsed/speedscope."""
    import json

    from .obs.profiler import SamplingProfiler

    if not args.sql and not args.wkt:
        print("profile: need --sql or --wkt", file=sys.stderr)
        return 1

    db = _open_db(args.db, threads=args.threads)
    geometry = None
    if args.wkt:
        from .gis.wkt import loads

        geometry = loads(args.wkt)

    def run_once() -> int:
        if args.sql:
            return len(db.sql(args.sql).rows)
        result = db.spatial_select(
            args.table, geometry, predicate=args.predicate, distance=args.distance
        )
        return len(result)

    profiler = SamplingProfiler(rate_hz=args.rate)
    profiler.start()
    runs = 0
    rows = 0
    t0 = time.perf_counter()
    try:
        # Repeat until the sampling window is filled: a single small
        # query finishes in microseconds and would yield zero samples.
        while True:
            rows = run_once()
            runs += 1
            if time.perf_counter() - t0 >= args.duration:
                break
    finally:
        profiler.stop()
    elapsed = time.perf_counter() - t0
    profile = profiler.profile()
    print(
        f"profiled {runs} run(s) in {elapsed:.2f}s at {args.rate:g} Hz: "
        f"{profile.aggregate.samples} samples, last run {rows} rows",
        file=sys.stderr,
    )
    for frame, count in profile.hot_frames(args.top):
        share = count / max(1, profile.aggregate.samples)
        print(f"  {share:6.1%}  {count:>6}  {frame}", file=sys.stderr)
    if args.out:
        Path(args.out).write_text(
            json.dumps(profile.speedscope(name=f"repro-gis profile {args.db}"))
            + "\n"
        )
        print(f"wrote speedscope JSON to {args.out}", file=sys.stderr)
    if args.collapsed:
        Path(args.collapsed).write_text(profile.collapsed())
        print(f"wrote collapsed stacks to {args.collapsed}", file=sys.stderr)
    if not args.out and not args.collapsed:
        print(profile.collapsed(), end="")
    return 0


def _cmd_heat(args: argparse.Namespace) -> int:
    """Render hot-segment/hot-extent reports from a heat journal."""
    import json

    from .obs.heat import HEAT_JOURNAL_NAME, HeatMap, read_journal

    path = Path(args.journal)
    if path.is_dir():
        path = path / HEAT_JOURNAL_NAME
    if not path.exists():
        print(f"heat: no journal at {path}", file=sys.stderr)
        return 1
    records = read_journal(path)
    if not records:
        print(f"heat: {path} holds no intact windows", file=sys.stderr)
        return 1
    heat = HeatMap.from_journal(path)
    if args.hints:
        print(json.dumps(heat.hints(top=args.top), indent=2))
        return 0
    snapshot = heat.snapshot(top=args.top)
    if args.json:
        print(json.dumps(snapshot, indent=2))
        return 0
    print(
        f"heat journal {path}: {len(records)} window(s), "
        f"halflife {snapshot['halflife_s']:g}s, "
        f"tables: {', '.join(snapshot['tables']) or '(none)'}"
    )
    segments = snapshot["segments"]
    print(f"hot segments (top {len(segments)} of {snapshot['totals']['segments']}):")
    if segments:
        print(
            f"  {'table':<12} {'column':<16} {'seg':>5} {'probes':>8} "
            f"{'skips':>8} {'fulls':>8} {'bytes':>12}"
        )
        for row in segments:
            seg = "all" if row["segment"] == -1 else str(row["segment"])
            print(
                f"  {row['table']:<12} {row['column']:<16} {seg:>5} "
                f"{row['probes']:>8.1f} {row['skips']:>8.1f} "
                f"{row['fulls']:>8.1f} {row['bytes']:>12,.0f}"
            )
    extents = snapshot["extents"]
    print(f"hot extents (top {len(extents)} of {snapshot['totals']['extents']}):")
    for row in extents:
        extent = row.get("extent")
        where = (
            f"({extent[0]:.1f}, {extent[1]:.1f})–({extent[2]:.1f}, {extent[3]:.1f})"
            if extent
            else f"cell {tuple(row['cell'])}"
        )
        print(
            f"  {row['table']:<12} {where:<44} "
            f"{row['queries']:>8.1f} queries {row['bytes']:>12,.0f} bytes"
        )
    return 0


def _cmd_sort(args: argparse.Namespace) -> int:
    from .lastools.lassort import lassort

    n = lassort(args.input, args.output, curve=args.curve)
    print(f"rewrote {n} points in {args.curve} order to {args.output}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from .lastools.clip import LasClip

    clip = LasClip(args.tiles, use_index=True)
    count = clip.build_indexes(leaf_capacity=args.leaf_capacity)
    print(f"indexed {count} files (.lax sidecars written)")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from .las.binloader import read_point_file
    from .viz.render import render_pointcloud

    directory = Path(args.tiles)
    paths = sorted(
        p for p in directory.iterdir() if p.suffix.lower() in (".las", ".laz")
    )
    if not paths:
        print(f"no LAS/LAZ files under {directory}", file=sys.stderr)
        return 1
    pieces = {"x": [], "y": [], "z": [], "classification": []}
    for path in paths:
        _header, cols = read_point_file(path)
        for key in pieces:
            pieces[key].append(cols[key])
    columns = {key: np.concatenate(parts) for key, parts in pieces.items()}
    canvas = render_pointcloud(columns, width=args.width)
    canvas.write_ppm(args.output)
    print(f"rendered {columns['x'].shape[0]} points to {args.output}")
    return 0


def _cmd_elevation(args: argparse.Namespace) -> int:
    from .core.rasterize import chm, dsm, dtm, hillshade
    from .engine.durable import atomic_write_bytes
    from .gis.envelope import Box
    from .las.binloader import read_point_file
    from .viz.raster import Canvas

    directory = Path(args.tiles)
    paths = sorted(
        p for p in directory.iterdir() if p.suffix.lower() in (".las", ".laz")
    )
    if not paths:
        print(f"no LAS/LAZ files under {directory}", file=sys.stderr)
        return 1
    pieces = {"x": [], "y": [], "z": [], "classification": []}
    for path in paths:
        _header, cols = read_point_file(path)
        for key in pieces:
            pieces[key].append(cols[key])
    columns = {key: np.concatenate(parts) for key, parts in pieces.items()}
    extent = Box(
        columns["x"].min(),
        columns["y"].min(),
        columns["x"].max(),
        columns["y"].max(),
    )
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    grids = {
        "dsm": dsm(columns["x"], columns["y"], columns["z"], extent, args.cell),
        "dtm": dtm(
            columns["x"],
            columns["y"],
            columns["z"],
            columns["classification"],
            extent,
            args.cell,
        ),
        "chm": chm(
            columns["x"],
            columns["y"],
            columns["z"],
            columns["classification"],
            extent,
            args.cell,
        ),
    }
    for name, grid in grids.items():
        values = grid.values
        finite = np.isfinite(values)
        lo = values[finite].min() if finite.any() else 0.0
        hi = values[finite].max() if finite.any() else 1.0
        gray = np.zeros(values.shape, dtype=np.uint8)
        gray[finite] = (
            (values[finite] - lo) / max(hi - lo, 1e-9) * 255
        ).astype(np.uint8)
        path = out_dir / f"{name}.pgm"
        pgm_header = f"P5\n{gray.shape[1]} {gray.shape[0]}\n255\n".encode()
        atomic_write_bytes(path, pgm_header + gray[::-1].tobytes(), label="pgm")
        print(f"{name}: {path} ({gray.shape[1]}x{gray.shape[0]}, {lo:.1f}..{hi:.1f} m)")

    shade = hillshade(grids["dsm"])
    canvas = Canvas(extent, width=shade.shape[1], height=shade.shape[0])
    canvas.pixels[:] = (shade[::-1, :, None] * 255).astype(np.uint8)
    canvas.write_ppm(out_dir / "hillshade.ppm")
    print(f"hillshade: {out_dir / 'hillshade.ppm'}")
    return 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    from .obs.server import PortInUseError, TelemetryServer

    health = None
    if args.db:
        db = _open_db(args.db, threads=args.threads)

        def health():
            return {
                "tables": {
                    name: len(db.table(name)) for name in db.db.table_names
                }
            }

    server = TelemetryServer(host=args.host, port=args.port, health=health)
    try:
        server.start()
    except PortInUseError as exc:
        print(f"error: {exc.strerror}", file=sys.stderr)
        return 1
    print(
        f"serving OpenMetrics on {server.url}/metrics "
        f"(also /healthz, /debug/trace, /debug/queries)",
        flush=True,
    )
    try:
        if args.for_seconds is not None:
            time.sleep(args.for_seconds)
        else:
            while True:  # pragma: no cover - interactive serve loop
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs.context import default_context
    from .obs.server import PortInUseError
    from .serve import (
        QueryDaemon,
        QueryService,
        ServiceConfig,
        SnapshotManager,
        TenantBudget,
        parse_quota_spec,
    )

    default_budget = None
    if args.cpu_budget is not None or args.rows_budget is not None:
        default_budget = TenantBudget(
            cpu_seconds=args.cpu_budget, rows_touched=args.rows_budget
        )
    config = ServiceConfig(
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        queue_wait_s=args.queue_wait,
        retry_after_s=args.retry_after,
        default_timeout_s=args.default_timeout,
        max_timeout_s=args.max_timeout,
        drain_timeout_s=args.drain_timeout,
        quotas=parse_quota_spec(args.quota) if args.quota else {},
        default_budget=default_budget,
    )
    obs = default_context()
    # Serve mode runs the continuous-observability layer by default: the
    # low-rate sampling profiler (hot stacks for /debug/profile bursts,
    # slowlog records, flight dumps) and the workload heat map journalled
    # next to the store for `repro-gis heat` / the sharding planner.
    profiler = None
    if not args.no_profile:
        from .obs.profiler import get_profiler

        profiler = get_profiler(rate_hz=args.profile_rate)
        profiler.start()
    if not args.no_heat:
        from .obs.heat import enable_heat

        enable_heat(
            journal=Path(args.db) / "heat.jsonl",
            halflife_s=args.heat_halflife,
            flush_interval_s=args.heat_flush,
        )
    snapshots = SnapshotManager(
        directory=args.db, threads=args.threads, obs=obs
    )
    # Fail fast: a missing or unusable store should kill the start, not
    # the first request.
    snapshot = snapshots.open()
    service = QueryService(snapshots, config, obs=obs)
    daemon = QueryDaemon(
        service,
        host=args.host,
        port=args.port,
        reload_poll_s=args.reload_poll,
    )
    try:
        daemon.start()
    except PortInUseError as exc:
        print(f"error: {exc.strerror}", file=sys.stderr)
        return 1
    # SIGTERM: shed new work (503), drain in-flight queries, then fall
    # through to the flight recorder's hook (installed by main()).
    # signal.signal is main-thread-only; embedded callers (tests drive
    # main() from a worker thread) still get the daemon, minus signals.
    if threading.current_thread() is threading.main_thread():
        daemon.install_signal_handlers()
    print(
        f"serving queries on {daemon.url} "
        f"(POST /v1/query, POST /v1/sql; GET /metrics, /healthz, "
        f"/debug/queries, /debug/serve, /debug/profile, /debug/heat) — "
        f"generation {snapshot.generation}, {config.max_concurrency} slots + "
        f"{config.queue_depth} queued",
        flush=True,
    )
    try:
        if args.for_seconds is not None:
            # Stepped so the bounded-run path gets the same heat-flush
            # heartbeat as daemon.wait()'s poll loop.
            deadline = time.monotonic() + args.for_seconds
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                time.sleep(min(1.0, remaining))
                daemon.flush_heat()
        else:
            daemon.wait()  # pragma: no cover - interactive serve loop
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        daemon.drain_and_stop()
        if profiler is not None:
            profiler.stop()
        if not args.no_heat:
            from .obs.heat import disable_heat

            disable_heat()
    return 0


def _cmd_queries(args: argparse.Namespace) -> int:
    import json
    import urllib.error
    import urllib.request

    url = args.url if args.url else f"http://127.0.0.1:{args.port}"
    endpoint = url.rstrip("/") + "/debug/queries"
    try:
        with urllib.request.urlopen(endpoint, timeout=5.0) as response:
            snapshot = json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"error: cannot fetch {endpoint}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(snapshot, indent=2))
        return 0
    active = snapshot.get("active", [])
    recent = snapshot.get("recent", [])
    print(f"active ({len(active)}):")
    header = f"  {'id':<18} {'kind':<8} {'phase':<10} {'prog':>6} {'elapsed':>9}"
    if active:
        print(header)
    for query in active:
        print(
            f"  {query.get('query_id', '?'):<18}"
            f" {query.get('kind', '?'):<8}"
            f" {query.get('phase', '?'):<10}"
            f" {query.get('progress', 0.0) * 100:>5.1f}%"
            f" {query.get('elapsed_s', 0.0):>8.3f}s"
        )
    print(f"recent ({len(recent)}):")
    for query in recent:
        print(
            f"  {query.get('query_id', '?'):<18}"
            f" {query.get('kind', '?'):<8}"
            f" {query.get('status', '?'):<10}"
            f" {query.get('elapsed_s', 0.0):>8.3f}s"
            f"  {query.get('detail') or ''}"
        )
    return 0


def _cmd_slowlog(args: argparse.Namespace) -> int:
    import json

    from .obs.slowlog import format_record, read_records

    records = read_records(args.log)
    if args.last:
        records = records[-args.last :]
    for record in records:
        if args.json:
            print(json.dumps(record))
        else:
            print(format_record(record))
    print(f"({len(records)} slow queries)", file=sys.stderr)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .analysis.main import main as check_main

    return check_main(args.check_args)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument grammar (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-gis",
        description="GIS navigation boosted by column stores (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesise an AHN2-like tile set")
    p.add_argument("--points", type=int, default=100_000)
    p.add_argument("--tiles", type=int, default=4, help="tiles per axis")
    p.add_argument(
        "--extent",
        type=float,
        nargs=4,
        default=[85_000, 445_000, 87_000, 447_000],
        metavar=("XMIN", "YMIN", "XMAX", "YMAX"),
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--laz", action="store_true", help="write compressed tiles")
    p.add_argument("--out", required=True)
    p.set_defaults(fn=_cmd_generate)

    p = sub.add_parser("info", help="summarise a tile directory")
    p.add_argument("tiles")
    p.add_argument(
        "--wgs84",
        action="store_true",
        help="also print the WGS84 bounds (input read as RD New / EPSG:28992)",
    )
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("load", help="bulk-load tiles into a database")
    p.add_argument("tiles")
    p.add_argument("--db", required=True, help="database directory")
    p.add_argument("--table", default="points")
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted load from its journal "
        "(skips tiles already durable, rolls back torn tails)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="tiles between durable checkpoints (default 1)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=3,
        help="transient I/O error retries per tile (default 3)",
    )
    p.set_defaults(fn=_cmd_load)

    p = sub.add_parser(
        "verify", help="check a database's on-disk artifacts (checksums, counts)"
    )
    p.add_argument("db")
    p.add_argument(
        "--repair",
        action="store_true",
        help="roll back torn tails, rewrite repaired tables, quarantine "
        "corrupt imprints and compressed sidecars (re-encoding the "
        "latter from their source columns) before verifying",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable verify report (exit code is the "
        "same contract: 0 clean, 1 corrupt)",
    )
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser(
        "compress",
        help="build compressed execution mirrors (.colz sidecars) for a "
        "database's columns",
    )
    p.add_argument("db")
    p.add_argument("--table", default=None, help="one table (default: all)")
    p.add_argument(
        "--columns",
        default=None,
        help="comma-separated column subset (default: every column)",
    )
    p.add_argument(
        "--scheme",
        default="auto",
        choices=["auto", "rle", "dict", "for", "delta_zlib", "plain"],
        help="per-segment encoding (default: adaptive)",
    )
    p.set_defaults(fn=_cmd_compress)

    p = sub.add_parser("query", help="spatial selection on a saved database")
    p.add_argument("db")
    p.add_argument("--table", default="points")
    p.add_argument("--wkt", required=True)
    p.add_argument(
        "--predicate", default="contains", choices=["contains", "dwithin"]
    )
    p.add_argument("--distance", type=float, default=0.0)
    p.add_argument("--show", type=int, default=0, help="print first N hits")
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="cooperative deadline in seconds (cancel when exceeded)",
    )
    p.add_argument(
        "--threads",
        type=int,
        default=None,
        help="worker threads (default: all cores; 1 = serial)",
    )
    p.set_defaults(fn=_cmd_query)

    p = sub.add_parser("sql", help="run SQL on a saved database")
    p.add_argument("db")
    p.add_argument("query")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument(
        "--explain", action="store_true", help="print the plan, do not run"
    )
    p.add_argument(
        "--analyze",
        action="store_true",
        help="run the query under the tracer and print the operator tree",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="cooperative deadline in seconds (cancel when exceeded)",
    )
    p.add_argument(
        "--threads",
        type=int,
        default=None,
        help="worker threads (default: all cores; 1 = serial)",
    )
    p.set_defaults(fn=_cmd_sql)

    p = sub.add_parser(
        "trace", help="run a query with tracing on and export the spans"
    )
    p.add_argument("db")
    p.add_argument("--sql", help="SQL query to trace")
    p.add_argument("--wkt", help="WKT geometry for a spatial selection")
    p.add_argument("--table", default="points")
    p.add_argument(
        "--predicate", default="contains", choices=["contains", "dwithin"]
    )
    p.add_argument("--distance", type=float, default=0.0)
    p.add_argument(
        "--export",
        default="chrome",
        choices=["json", "chrome"],
        help="output format (chrome = chrome://tracing trace events)",
    )
    p.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="export only the last N traces (query trees)",
    )
    p.add_argument("--out", help="output file (default: stdout)")
    p.add_argument(
        "--metrics",
        action="store_true",
        help="also print the metrics registry snapshot to stderr",
    )
    p.add_argument(
        "--threads",
        type=int,
        default=None,
        help="worker threads (default: all cores; 1 = serial)",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "profile",
        help="sample a query under the CPU profiler and export "
        "collapsed-stack text / speedscope JSON",
    )
    p.add_argument("db")
    p.add_argument("--sql", help="SQL query to profile")
    p.add_argument("--wkt", help="WKT geometry for a spatial selection")
    p.add_argument("--table", default="points")
    p.add_argument(
        "--predicate", default="contains", choices=["contains", "dwithin"]
    )
    p.add_argument("--distance", type=float, default=0.0)
    p.add_argument(
        "--duration",
        type=float,
        default=1.0,
        metavar="S",
        help="repeat the query for at least S seconds of sampling "
        "(default 1.0)",
    )
    p.add_argument(
        "--rate",
        type=float,
        default=250.0,
        metavar="HZ",
        help="sampling rate (default 250)",
    )
    p.add_argument("--out", help="write speedscope JSON here")
    p.add_argument(
        "--collapsed",
        help="write FlameGraph collapsed-stack text here "
        "(default: stdout when --out is absent)",
    )
    p.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="hot frames printed to stderr (default 10)",
    )
    p.add_argument(
        "--threads",
        type=int,
        default=None,
        help="worker threads (default: all cores; 1 = serial)",
    )
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "heat",
        help="workload heat report from a heat.jsonl journal "
        "(hot segments, hot extents, partitioning hints)",
    )
    p.add_argument(
        "journal",
        help="heat journal file, or a database directory holding heat.jsonl",
    )
    p.add_argument(
        "--hints",
        action="store_true",
        help="emit ranked hot-extent partitioning hints as JSON",
    )
    p.add_argument(
        "--json", action="store_true", help="raw JSON snapshot instead of text"
    )
    p.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows per section (default 10)",
    )
    p.set_defaults(fn=_cmd_heat)

    p = sub.add_parser("sort", help="lassort: rewrite a LAS file in SFC order")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--curve", default="morton", choices=["morton", "hilbert"])
    p.set_defaults(fn=_cmd_sort)

    p = sub.add_parser("index", help="lasindex: build .lax quadtrees")
    p.add_argument("tiles")
    p.add_argument("--leaf-capacity", type=int, default=1000)
    p.set_defaults(fn=_cmd_index)

    p = sub.add_parser("render", help="render tiles to a PPM image")
    p.add_argument("tiles")
    p.add_argument("output")
    p.add_argument("--width", type=int, default=512)
    p.set_defaults(fn=_cmd_render)

    p = sub.add_parser(
        "elevation", help="derive DSM/DTM/CHM + hillshade from tiles"
    )
    p.add_argument("tiles")
    p.add_argument("--out", required=True, help="output directory")
    p.add_argument("--cell", type=float, default=5.0, help="cell size (m)")
    p.set_defaults(fn=_cmd_elevation)

    p = sub.add_parser(
        "serve-metrics",
        help="serve the metrics registry over HTTP "
        "(/metrics OpenMetrics, /healthz, /debug/trace, /debug/queries)",
    )
    p.add_argument(
        "db",
        nargs="?",
        default=None,
        help="optional database directory; loading it makes /healthz "
        "report per-table row counts",
    )
    p.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port (default: $REPRO_METRICS_PORT or 9464; 0 = any free)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--for-seconds",
        type=float,
        default=None,
        metavar="S",
        help="serve for S seconds then exit (default: until interrupted)",
    )
    p.add_argument(
        "--threads",
        type=int,
        default=None,
        help="worker threads for the loaded database",
    )
    p.set_defaults(fn=_cmd_serve_metrics)

    p = sub.add_parser(
        "serve",
        help="serve queries over HTTP (POST /v1/query, /v1/sql) with "
        "bounded admission, per-tenant quotas and graceful drain",
    )
    p.add_argument("db", help="database directory to serve")
    p.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port (default: 8472; 0 = any free port)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        help="requests executing at once (default 4)",
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="requests allowed to wait for a slot; beyond this they are "
        "shed with 429 (default 8)",
    )
    p.add_argument(
        "--queue-wait",
        type=float,
        default=30.0,
        metavar="S",
        help="longest a queued request waits before shedding (default 30)",
    )
    p.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="S",
        help="Retry-After hint on 429/503 responses (default 1)",
    )
    p.add_argument(
        "--default-timeout",
        type=float,
        default=None,
        metavar="S",
        help="deadline applied when a request names none",
    )
    p.add_argument(
        "--max-timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="ceiling on any request's deadline (default 60)",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="how long SIGTERM waits for in-flight queries (default 10)",
    )
    p.add_argument(
        "--quota",
        default=None,
        metavar="SPEC",
        help="per-tenant budgets as 'tenant=cpu_s:rows,...' "
        "(e.g. 'alice=1.5:100000,bob=2.0')",
    )
    p.add_argument(
        "--cpu-budget",
        type=float,
        default=None,
        metavar="S",
        help="default per-tenant CPU-seconds budget",
    )
    p.add_argument(
        "--rows-budget",
        type=int,
        default=None,
        metavar="N",
        help="default per-tenant rows-touched budget",
    )
    p.add_argument(
        "--reload-poll",
        type=float,
        default=None,
        metavar="S",
        help="poll the catalog generation every S seconds and republish "
        "the snapshot after an external writer's publish",
    )
    p.add_argument(
        "--for-seconds",
        type=float,
        default=None,
        metavar="S",
        help="serve for S seconds then drain and exit (default: until "
        "SIGTERM/interrupt)",
    )
    p.add_argument(
        "--threads",
        type=int,
        default=None,
        help="worker threads for query execution",
    )
    p.add_argument(
        "--no-profile",
        action="store_true",
        help="disable the always-on low-rate sampling profiler",
    )
    p.add_argument(
        "--profile-rate",
        type=float,
        default=19.0,
        metavar="HZ",
        help="always-on sampling rate (default 19)",
    )
    p.add_argument(
        "--no-heat",
        action="store_true",
        help="disable workload heat accounting and the heat.jsonl journal",
    )
    p.add_argument(
        "--heat-halflife",
        type=float,
        default=600.0,
        metavar="S",
        help="heat decay half-life in seconds (default 600)",
    )
    p.add_argument(
        "--heat-flush",
        type=float,
        default=30.0,
        metavar="S",
        help="heat journal flush interval in seconds (default 30)",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "queries",
        help="show in-flight and recent queries from a telemetry server",
    )
    p.add_argument(
        "--url",
        default=None,
        help="server base URL (default: http://127.0.0.1:<port>)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=9464,
        help="server port when --url is not given (default: 9464)",
    )
    p.add_argument(
        "--json", action="store_true", help="raw JSON snapshot instead of a table"
    )
    p.set_defaults(fn=_cmd_queries)

    p = sub.add_parser(
        "slowlog", help="pretty-print a slow-query JSONL log"
    )
    p.add_argument("log", help="slow-query .jsonl file")
    p.add_argument(
        "--last", type=int, default=None, metavar="N", help="only the last N"
    )
    p.add_argument(
        "--json", action="store_true", help="raw JSONL instead of trees"
    )
    p.set_defaults(fn=_cmd_slowlog)

    p = sub.add_parser(
        "check",
        help="repro-check: AST-based invariant linter (durable writes, "
        "crash transparency, lock discipline, struct formats, span "
        "discipline, metric-name registry)",
    )
    # The linter owns its own grammar (shared with `python -m
    # repro.analysis`); forward everything after `check` verbatim.
    p.add_argument("check_args", nargs=argparse.REMAINDER)
    p.set_defaults(fn=_cmd_check)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # Arm the crash flight recorder: an unhandled exception (anything the
    # handler below does not catch) or a SIGTERM leaves a post-mortem
    # JSON dump behind.  Idempotent across repeated main() calls.
    from .obs.flight import get_flight_recorder

    recorder = get_flight_recorder()
    recorder.install()
    recorder.note("cli.start", argv=list(argv))
    if argv[:1] == ["check"]:
        # Dispatch before argparse: REMAINDER mis-parses a remainder that
        # starts with an option (`check --format json`, bpo-17050), so the
        # linter gets the raw argv tail and applies its own grammar.
        from .analysis.main import main as check_main

        return check_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (ValueError, IOError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
